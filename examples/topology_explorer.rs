//! Topology explorer: build the paper's PCIe platforms, inspect the routes
//! traffic takes, and see how the congested multi-GPU placement (paper
//! Fig. 17) changes the picture.
//!
//! ```text
//! cargo run --release -p smart_infinity --example topology_explorer
//! ```

use fabric::{NodeKind, PlatformSpec, StorageKind};
use simkit::{FlowSpec, Simulation};
use smart_infinity::{Campaign, MachineSpec, MethodSpec, ModelSpec, RunSpec, TrainError};

// `?` spans both stacks: the raw simkit runs convert through
// `TrainError::from(SimError)`, the session runs return `TrainError` already.
fn main() -> Result<(), TrainError> {
    // ------------------------------------------------------------------
    // 1. Inspect the default Smart-Infinity platform topology.
    // ------------------------------------------------------------------
    let platform =
        PlatformSpec::default_smart_infinity(4, StorageKind::Csd).build().expect("platform");
    let topo = &platform.topology;
    println!("Default platform: {} nodes, {} PCIe links", topo.node_count(), topo.edge_count());
    for (kind, label) in [
        (NodeKind::Host, "host"),
        (NodeKind::Gpu, "GPU"),
        (NodeKind::Switch, "switch"),
        (NodeKind::SsdPort, "SSD"),
        (NodeKind::FpgaPort, "FPGA"),
    ] {
        println!("  {:<7}: {}", label, topo.nodes_of_kind(kind).len());
    }

    let dev = &platform.devices[0];
    let host_to_ssd = topo.route(platform.host, dev.ssd).expect("route");
    let p2p = topo.route(dev.ssd, dev.fpga.expect("CSD has an FPGA")).expect("route");
    println!(
        "\nRoute host -> CSD0 SSD crosses {} links (incl. the shared uplink):",
        host_to_ssd.len()
    );
    for edge in &host_to_ssd {
        println!("  - {:>6.1} GB/s", topo.edge_bandwidth(*edge) / 1e9);
    }
    println!("Route CSD0 SSD -> CSD0 FPGA crosses {} links (all private):", p2p.len());
    for edge in &p2p {
        println!("  - {:>6.1} GB/s", topo.edge_bandwidth(*edge) / 1e9);
    }

    // ------------------------------------------------------------------
    // 2. Show the aggregate-bandwidth effect directly on the simulator.
    // ------------------------------------------------------------------
    let mut sim = Simulation::new();
    let inst = topo.install(&mut sim);
    let mut host_flows = Vec::new();
    let mut p2p_flows = Vec::new();
    for d in &platform.devices {
        let to_host = inst.path(d.ssd, platform.host).expect("path");
        host_flows.push(sim.flow(FlowSpec::new(to_host, 8e9)));
        let internal = inst.path(d.ssd, d.fpga.expect("fpga")).expect("path");
        p2p_flows.push(sim.flow(FlowSpec::new(internal, 8e9)));
    }
    let tl = sim.run()?;
    let host_done = host_flows.iter().map(|&t| tl.finish_time(t)).fold(0.0, f64::max);
    let p2p_done = p2p_flows.iter().map(|&t| tl.finish_time(t)).fold(0.0, f64::max);
    println!("\nStreaming 8 GB from every SSD simultaneously:");
    println!("  to host memory (shared uplink): {host_done:.2} s");
    println!("  to the local FPGA (private P2P): {p2p_done:.2} s");

    // ------------------------------------------------------------------
    // 3. The congested multi-GPU placement of Fig. 17, as one spec-driven
    //    campaign: a (GPU count x method) grid run concurrently.
    // ------------------------------------------------------------------
    println!("\nCongested topology (GPUs behind the same expansion switch as the CSDs):");
    let specs: Vec<RunSpec> = (1..=3usize)
        .flat_map(|gpus| {
            [MethodSpec::baseline(), MethodSpec::smart_comp(0.01)].into_iter().map(move |m| {
                RunSpec::new(
                    ModelSpec::preset("GPT2-1.16B"),
                    MachineSpec::devices(10).with_num_gpus(gpus).congested(),
                    m,
                )
            })
        })
        .collect();
    let report = Campaign::new(specs).with_name("congested").run()?;
    for (i, pair) in report.runs.chunks(2).enumerate() {
        let (base, smart) = (&pair[0].report, &pair[1].report);
        println!(
            "  {} x A4000: baseline {:.2} s/iter, Smart-Infinity {:.2} s/iter ({:.2}x)",
            i + 1,
            base.total_s(),
            smart.total_s(),
            smart.speedup_over(base)
        );
    }
    println!("\nEven when GPU traffic shares the PCIe switch with the CSDs, the update phase");
    println!("still runs on the devices' private bandwidth, so the speedup persists (Fig. 17).");
    Ok(())
}
