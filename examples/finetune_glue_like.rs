//! Fine-tuning case study (paper Section VII-J / Table IV): train real
//! classifiers on the GLUE-like synthetic suite with and without SmartComp's
//! Top-K gradient compression, and report accuracy next to the iteration-time
//! speedup of the corresponding fine-tuned LLM. The speedup side is a
//! spec-driven `Campaign`: a (model x method) grid run concurrently.
//!
//! ```text
//! cargo run --release -p smart_infinity --example finetune_glue_like
//! ```

use smart_infinity::{Campaign, MachineSpec, MethodSpec, ModelSpec, RunSpec, TrainError};
use ztrain::realtrain::{train_classifier, Dataset, MlpModel, TrainConfig};

fn main() -> Result<(), TrainError> {
    let suite = Dataset::glue_like_suite(2024);
    let transfer_ratios = [0.10f64, 0.05, 0.02, 0.01];

    // Accuracy side: real optimisation runs with the SmartComp dataflow
    // (error feedback + Top-K + decompression before the update).
    println!("Fine-tuning accuracy on the GLUE-like suite (3 epochs, batch 4, Adam):");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "setting", suite[0].name, suite[1].name, suite[2].name, suite[3].name
    );
    let run_suite = |keep_ratio: Option<f64>| -> Vec<f64> {
        suite
            .iter()
            .map(|ds| {
                let model = MlpModel::new(ds.input_dim, 48, ds.num_classes);
                let config = TrainConfig { epochs: 3, keep_ratio, ..TrainConfig::default() };
                train_classifier(&model, ds, &config).test_accuracy * 100.0
            })
            .collect()
    };
    let print_row = |label: &str, accs: &[f64]| {
        println!(
            "{:<18} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            label, accs[0], accs[1], accs[2], accs[3]
        );
    };
    let baseline_acc = run_suite(None);
    print_row("Baseline / SU+O", &baseline_acc);
    for transfer in transfer_ratios {
        let accs = run_suite(Some(transfer / 2.0));
        print_row(&format!("SU+O+C ({:.0}%)", transfer * 100.0), &accs);
        let max_drop = baseline_acc.iter().zip(&accs).map(|(b, a)| b - a).fold(f64::MIN, f64::max);
        assert!(
            max_drop < 5.0,
            "compression at {transfer} should not cost more than a few accuracy points"
        );
    }

    // Speedup side: the timed model for the three fine-tuned LLMs of
    // Table IV, as one (model x method) campaign grid.
    let models = ["BERT-0.34B", "GPT2-0.77B", "GPT2-1.6B"];
    let methods = [
        MethodSpec::baseline(),
        MethodSpec::smart_update_optimized(),
        MethodSpec::smart_comp(0.01),
    ];
    let specs: Vec<RunSpec> = models
        .iter()
        .flat_map(|&model| {
            methods.iter().map(move |&method| {
                RunSpec::new(ModelSpec::preset(model), MachineSpec::devices(6), method)
            })
        })
        .collect();
    let report = Campaign::new(specs).with_name("finetune speedups").run()?;

    println!("\nIteration-time speedup while fine-tuning (6 storage devices):");
    println!("{:<12} {:>10} {:>12}", "model", "SU+O", "SU+O+C(2%)");
    for (i, model) in models.iter().enumerate() {
        let rows = &report.runs[3 * i..3 * i + 3];
        let base = &rows[0].report;
        println!(
            "{:<12} {:>9.2}x {:>11.2}x",
            model,
            rows[1].report.speedup_over(base),
            rows[2].report.speedup_over(base)
        );
    }
    println!("\nSmartUpdate itself is lossless (bit-identical update); only SmartComp trades");
    println!("a little gradient fidelity for less interconnect traffic — and the accuracy");
    println!("table above shows that trade is essentially free, as in the paper.");
    Ok(())
}
