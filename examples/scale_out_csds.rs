//! Scale-out study: how iteration time, speedup and cost efficiency evolve as
//! computational storage devices are added (paper Fig. 11 and Fig. 15).
//!
//! The sweep is expressed as a `Campaign` grid — one `RunSpec` per
//! (device count × method) point — and executed concurrently on `parcore`
//! workers; a 20-point study is one `run()` call.
//!
//! ```text
//! cargo run --release -p smart_infinity --example scale_out_csds [model-billions]
//! ```
//!
//! The optional argument picks an approximate GPT-2 model size in billions of
//! parameters (default 4.0).

use smart_infinity::{
    Campaign, CostModel, GpuSpec, MachineSpec, MethodSpec, ModelSpec, RunSpec, TrainError, Workload,
};

fn main() -> Result<(), TrainError> {
    let billions: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("model size must be a number (billions of parameters)"))
        .unwrap_or(4.0);
    let model_spec = ModelSpec::ScaledGpt2 { billions };
    let model = model_spec.resolve()?;
    let workload = Workload::paper_default(model.clone());
    println!(
        "Scale-out study for {} ({:.2}B parameters) on an RTX A5000 host\n",
        model.name(),
        model.num_params() as f64 / 1e9
    );

    // The whole study as one campaign: (1..=10 devices) x (BASE, SU+O+C).
    let device_counts: Vec<usize> = (1..=10).collect();
    let specs: Vec<RunSpec> = device_counts
        .iter()
        .flat_map(|&n| {
            let model_spec = &model_spec;
            [MethodSpec::baseline(), MethodSpec::smart_comp(0.01)]
                .into_iter()
                .map(move |m| RunSpec::new(model_spec.clone(), MachineSpec::devices(n), m))
        })
        .collect();
    let report = Campaign::new(specs).with_name("scale-out").run()?;
    println!(
        "(campaign: {} specs on {} worker(s), {} CPU(s) visible)\n",
        report.runs.len(),
        report.threads,
        report.num_cpus
    );

    let cost = CostModel::default();
    let gpu = GpuSpec::a5000();
    let flops = workload.training_flops();

    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "#devs", "BASE (s)", "Smart (s)", "speedup", "BASE GFLOPS/$", "Smart GFLOPS/$"
    );
    let mut crossover: Option<usize> = None;
    for (i, &n) in device_counts.iter().enumerate() {
        let base = &report.runs[2 * i].report;
        let smart = &report.runs[2 * i + 1].report;
        let base_eff =
            CostModel::gflops_per_dollar(flops / base.total_s(), cost.baseline_system_usd(&gpu, n));
        let smart_eff = CostModel::gflops_per_dollar(
            flops / smart.total_s(),
            cost.smart_infinity_system_usd(&gpu, n),
        );
        if crossover.is_none() && smart_eff > base_eff {
            crossover = Some(n);
        }
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>8.2}x {:>14.4} {:>14.4}",
            n,
            base.total_s(),
            smart.total_s(),
            smart.speedup_over(base),
            base_eff,
            smart_eff
        );
    }
    match crossover {
        Some(n) => println!(
            "\nSmart-Infinity becomes more cost-efficient than the RAID0 baseline from {n} device(s),"
        ),
        None => println!("\nSmart-Infinity never crossed the baseline's cost efficiency here,"),
    }
    println!("even though each SmartSSD costs ~6x a plain SSD of the same capacity —");
    println!("the baseline stops scaling once the shared PCIe interconnect saturates, while");
    println!("the aggregate CSD-internal bandwidth keeps growing with every added device.");
    Ok(())
}
