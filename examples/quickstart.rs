//! Quickstart: simulate one Smart-Infinity training iteration and verify the
//! functional near-storage update against the baseline.
//!
//! ```text
//! cargo run --release -p smart_infinity --example quickstart
//! ```

use smart_infinity::{
    Experiment, MachineConfig, Method, ModelConfig, Optimizer, SmartInfinityTrainer, Workload,
};
use tensorlib::FlatTensor;
use ztrain::StorageOffloadTrainer;

fn main() {
    // ------------------------------------------------------------------
    // 1. Timed view: how much faster is one iteration with 10 SmartSSDs?
    // ------------------------------------------------------------------
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    println!(
        "Model: {} ({:.1}B parameters), batch {} x seq {}",
        workload.model().name(),
        workload.model().num_params() as f64 / 1e9,
        workload.batch_size(),
        workload.seq_len()
    );

    let experiment = Experiment::new(MachineConfig::smart_infinity(10), workload);
    let reports = experiment.ladder().expect("simulation");
    println!("\nOne training iteration with 10 storage devices:");
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>9}",
        "method", "FW (s)", "BW+Grad (s)", "Update (s)", "Total (s)", "speedup"
    );
    for r in &reports {
        println!(
            "{:<12} {:>8.2} {:>12.2} {:>10.2} {:>10.2} {:>8.2}x",
            r.label,
            r.report.forward_s,
            r.report.backward_s,
            r.report.update_s,
            r.report.total_s(),
            r.speedup
        );
    }

    // ------------------------------------------------------------------
    // 2. Functional view: the near-storage update really computes the same
    //    parameters as the CPU baseline (SmartUpdate is accuracy-neutral).
    // ------------------------------------------------------------------
    let n = 100_000;
    let optimizer = Optimizer::adam_default();
    let initial = FlatTensor::randn(n, 0.02, 7);

    let mut baseline =
        StorageOffloadTrainer::new(&initial, optimizer, 4, 25_000).expect("baseline trainer");
    let mut smart =
        SmartInfinityTrainer::new(&initial, optimizer, 4, 25_000).expect("smart-infinity trainer");

    for step in 0..3u64 {
        let grads = FlatTensor::randn(n, 0.01, 1000 + step);
        baseline.train_step_with_grads(&grads).expect("baseline step");
        smart.train_step_with_grads(&grads).expect("smart step");
    }
    let identical = smart.params_fp16().as_slice() == baseline.params_fp16().as_slice();
    println!("\nFunctional check over {n} parameters and 3 steps:");
    println!("  SmartUpdate parameters identical to baseline: {identical}");
    let stats = smart.aggregate_stats();
    println!(
        "  CSD-internal P2P traffic: {:.1} MB read, {:.1} MB written (never crossed the host link)",
        stats.p2p_read_bytes as f64 / 1e6,
        stats.p2p_write_bytes as f64 / 1e6
    );
    assert!(identical, "SmartUpdate must be bit-identical to the baseline");

    // With SmartComp, only ~2% of the gradient volume crosses the interconnect.
    let traffic = smart_infinity::TrafficModel::new(
        Workload::paper_default(ModelConfig::gpt2_4b()),
        smart_infinity::OptimizerKind::Adam,
    );
    let reduction = traffic
        .reduction_over_baseline(smart_infinity::TrafficMethod::SmartComp { keep_ratio: 0.01 });
    println!("  Interconnect traffic reduction with SmartComp (2%): {reduction:.1}x");

    println!(
        "\nDone. See `cargo run -p bench --release --bin figures -- all` for every paper figure."
    );
    let _ = Method::ladder();
}
