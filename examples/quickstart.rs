//! Quickstart: every training configuration is data — a `RunSpec` — and one
//! spec drives both the timed view (how long does an iteration take?) and
//! the functional view (really move the bytes, really update the
//! parameters). Lists of specs run concurrently as a `Campaign`.
//!
//! ```text
//! cargo run --release -p smart_infinity --example quickstart
//! ```

use smart_infinity::{
    Campaign, CompressionSpec, FlatTensor, MachineSpec, MethodSpec, ModelConfig, ModelSpec,
    RunSpec, StepReport, TrainError, Trainer, Workload,
};

fn main() -> Result<(), TrainError> {
    // ------------------------------------------------------------------
    // 1. Timed view: the checked-in ladder campaign — six method specs on
    //    6 SmartSSDs — executed concurrently on parcore workers.
    // ------------------------------------------------------------------
    let ladder_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/ladder.json");
    let text = std::fs::read_to_string(ladder_path)
        .map_err(|e| TrainError::config(format!("cannot read {ladder_path}: {e}")))?;
    let campaign = Campaign::from_json(&text)?;
    let model = campaign.specs[0].model.resolve()?;
    let workload = Workload::paper_default(model);
    println!(
        "Model: {} ({:.1}B parameters), batch {} x seq {}",
        workload.model().name(),
        workload.model().num_params() as f64 / 1e9,
        workload.batch_size(),
        workload.seq_len()
    );

    let report = campaign.run()?;
    println!(
        "\nCampaign `{}`: {} specs on {} worker(s) ({} CPU(s) visible):",
        report.name.as_deref().unwrap_or("-"),
        report.runs.len(),
        report.threads,
        report.num_cpus
    );
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10} {:>9}",
        "method", "FW (s)", "BW+Grad (s)", "Update (s)", "Total (s)", "speedup"
    );
    for r in &report.runs {
        println!(
            "{:<12} {:>8.2} {:>12.2} {:>10.2} {:>10.2} {:>8.2}x",
            r.method,
            r.report.forward_s,
            r.report.backward_s,
            r.report.update_s,
            r.report.total_s(),
            r.speedup_over_first
        );
    }

    // The capability axes compose beyond the paper's ladder: the same
    // machine with the handler optimization turned *off* but compression
    // kept on — a configuration the old closed Method enum could not express.
    let su_c = RunSpec::new(
        campaign.specs[0].model.clone(),
        campaign.specs[0].machine.clone(),
        MethodSpec::smart_update().with_compression(CompressionSpec::top_k(0.01)),
    );
    let su_c_report = su_c.session()?.simulate_iteration()?;
    let su_c_label = su_c.method.to_string();
    println!(
        "{:<12} {:>8.2} {:>12.2} {:>10.2} {:>10.2}   (off-ladder)",
        su_c_label,
        su_c_report.forward_s,
        su_c_report.backward_s,
        su_c_report.update_s,
        su_c_report.total_s(),
    );

    // ------------------------------------------------------------------
    // 2. Functional view: the *same* capability axes now select a real
    //    trainer. One loop drives every substrate through `dyn Trainer`.
    // ------------------------------------------------------------------
    let n = 100_000;
    let steps = 3u64;
    let keep_ratio = 0.01;
    let initial = FlatTensor::randn(n, 0.02, 7);
    let small = ModelConfig::gpt2_0_34b();

    let methods = [
        MethodSpec::baseline(),
        MethodSpec::smart_update(),
        MethodSpec::smart_comp(keep_ratio),
        MethodSpec::pipelined(None),
    ];
    let mut trainers: Vec<Box<dyn Trainer>> = Vec::new();
    for method in methods {
        let spec = RunSpec::new(ModelSpec::preset(small.name()), MachineSpec::devices(4), method)
            .with_threads(4);
        trainers.push(spec.session()?.trainer(&initial)?);
    }

    let mut last_reports: Vec<StepReport> = vec![StepReport::default(); trainers.len()];
    for step in 0..steps {
        let grads = FlatTensor::randn(n, 0.01, 1000 + step);
        for (trainer, last) in trainers.iter_mut().zip(last_reports.iter_mut()) {
            *last = trainer.step(&grads)?;
        }
    }

    println!("\nFunctional check over {n} parameters and {steps} steps (4 devices):");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>10}",
        "method", "grad B/step", "storage rd B", "storage wr B", "kept"
    );
    for (method, report) in methods.iter().zip(&last_reports) {
        println!(
            "{:<12} {:>12} {:>14} {:>14} {:>10}",
            method.to_string(),
            report.gradient_bytes,
            report.storage_bytes_read,
            report.storage_bytes_written,
            report.compression_kept.map_or("dense".to_string(), |k| k.to_string()),
        );
    }

    // SmartUpdate is bit-identical to the baseline — checked through the
    // trait objects alone.
    let identical = trainers[1].params_fp16().as_slice() == trainers[0].params_fp16().as_slice();
    println!("  SmartUpdate parameters identical to baseline: {identical}");
    assert!(identical, "SmartUpdate must be bit-identical to the baseline");

    // The pipelined backend overlaps write → update → read-back across the
    // CSDs and is still bit-identical to the baseline; its StepReport breaks
    // the bytes down per stage.
    let pipelined_identical =
        trainers[3].params_fp16().as_slice() == trainers[0].params_fp16().as_slice();
    assert!(pipelined_identical, "the pipelined backend must be bit-identical too");
    let stages = last_reports[3].stages.expect("pipelined backend reports stage telemetry");
    println!(
        "  Pipelined backend identical to baseline: {pipelined_identical} \
         (lanes: {}, write/update/read-back: {}/{}/{} B)",
        stages.lanes, stages.write_bytes, stages.update_bytes, stages.read_back_bytes
    );

    // The per-step telemetry carries exactly what the per-engine accessors
    // used to report. Baseline (Adam): 16n bytes read and written per step on
    // the RAID0 array (`storage_bytes_read`/`storage_bytes_written`);
    // SmartUpdate: 16n read / 12n written of CSD-internal P2P traffic
    // (`aggregate_stats`), with the dense 4n gradient crossing the host link.
    let n64 = n as u64;
    assert_eq!(last_reports[0].storage_bytes_read, 16 * n64);
    assert_eq!(last_reports[0].storage_bytes_written, 16 * n64);
    assert_eq!(last_reports[1].storage_bytes_read, 16 * n64);
    assert_eq!(last_reports[1].storage_bytes_written, 12 * n64);
    assert_eq!(last_reports[1].gradient_bytes, 4 * n64);
    // SmartComp: the index+value stream replaces the dense gradient — the
    // value `last_step_gradient_bytes` used to estimate, now measured.
    assert_eq!(last_reports[2].gradient_bytes, (2.0 * keep_ratio * 4.0 * n as f64) as u64);
    println!(
        "  SmartComp interconnect gradient traffic: {} B/step vs {} B dense ({:.0}x less)",
        last_reports[2].gradient_bytes,
        last_reports[1].gradient_bytes,
        last_reports[1].gradient_bytes as f64 / last_reports[2].gradient_bytes as f64
    );

    println!(
        "\nDone. Try `cargo run -p bench --release --bin figures -- campaign specs/scaling.json`\n\
         or `-- all` for every paper figure."
    );
    Ok(())
}
