//! Property-based integration tests across crate boundaries: invariants of
//! the full compression → decompression → update pipeline, the partitioning
//! machinery, and the discrete-event timing model, for randomly generated
//! configurations.

use gradcomp::Compressor;
use optim::{HyperParams, Optimizer, OptimizerKind};
use proptest::prelude::*;
use smart_infinity::{MachineConfig, Method, ModelConfig, Session, Workload};
use tensorlib::FlatTensor;

fn arb_optimizer() -> impl Strategy<Value = OptimizerKind> {
    prop_oneof![
        Just(OptimizerKind::Adam),
        Just(OptimizerKind::AdamW),
        Just(OptimizerKind::SgdMomentum),
        Just(OptimizerKind::AdaGrad),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// SmartUpdate equals the baseline for any size, shard count, subgroup
    /// size and optimizer — the bit-equivalence claim as a property.
    #[test]
    fn smartupdate_matches_baseline_for_any_configuration(
        n in 64usize..3000,
        csds in 1usize..8,
        subgroup in 16usize..800,
        block in 16usize..800,
        kind in arb_optimizer(),
        seed in 0u64..1000,
    ) {
        let optimizer = Optimizer::new(kind, HyperParams::default());
        let initial = FlatTensor::randn(n, 0.05, seed);
        let grads = FlatTensor::randn(n, 0.01, seed + 1);

        // Both substrates behind the same Session front door / Trainer seam.
        let session = |method, devices, subgroup| {
            Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(devices),
                method,
            )
            .with_optimizer(optimizer)
            .with_subgroup_elems(subgroup)
            .build()
        };
        let mut baseline = session(Method::Baseline, 2, block).trainer(&initial).unwrap();
        let mut smart = session(Method::SmartUpdate, csds, subgroup).trainer(&initial).unwrap();
        let base_report = baseline.step(&grads).unwrap();
        let smart_report = smart.step(&grads).unwrap();
        let baseline_params = baseline.master_params().unwrap();
        let smart_params = smart.master_params().unwrap();
        prop_assert_eq!(baseline_params.as_slice(), smart_params.as_slice());
        // Dense gradients: the near-storage path crosses the host link once.
        prop_assert_eq!(smart_report.gradient_bytes, 4 * n as u64);
        prop_assert_eq!(base_report.gradient_bytes, 8 * n as u64);
    }

    /// The compression pipeline conserves "mass": transmitted + residual
    /// always reconstructs the corrected gradient, for any keep ratio.
    #[test]
    fn compression_pipeline_conserves_gradient_mass(
        n in 1usize..2000,
        keep in 0.001f64..1.0,
        seed in 0u64..1000,
    ) {
        let grads = FlatTensor::randn(n, 1.0, seed);
        let compressor = Compressor::top_k(keep);
        let mut feedback = gradcomp::ErrorFeedback::new(n);
        let corrected = feedback.apply(&grads);
        let compressed = compressor.compress(&corrected);
        feedback.update(&corrected, &compressed);
        let mut reconstructed = compressed.decompress();
        reconstructed.axpby(1.0, 1.0, feedback.residual());
        for (a, b) in reconstructed.as_slice().iter().zip(corrected.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()));
        }
        // The transferred volume never exceeds the dense gradient.
        prop_assert!(compressed.compressed_bytes() <= 2 * compressed.dense_bytes());
    }

    /// The CSD decompressor agrees with the reference scatter on any subgroup
    /// tiling of any compressed gradient.
    #[test]
    fn decompressor_subgroup_tiling_is_exact(
        n in 1usize..3000,
        keep in 0.01f64..0.5,
        subgroup in 1usize..512,
        seed in 0u64..1000,
    ) {
        let grads = FlatTensor::randn(n, 1.0, seed);
        let compressed = Compressor::top_k(keep).compress(&grads);
        let reference = compressed.decompress();
        let decompressor = csd::Decompressor::default();
        let mut stitched = vec![0.0f32; n];
        let mut offset = 0;
        while offset < n {
            let len = subgroup.min(n - offset);
            let mut buf = vec![0.0f32; len];
            decompressor.decompress_subgroup(&compressed, offset, &mut buf);
            stitched[offset..offset + len].copy_from_slice(&buf);
            offset += len;
        }
        prop_assert_eq!(stitched.as_slice(), reference.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Timed-model sanity for arbitrary model sizes and device counts:
    /// phases are positive, more CSDs never slow Smart-Infinity down, and the
    /// speedup over the baseline stays within a physically plausible band.
    #[test]
    fn timed_model_is_well_behaved(
        billions in 1.0f64..20.0,
        devices in 2usize..10,
    ) {
        let model = ModelConfig::gpt2_scaled(billions * 1e9);
        let session = |method, devices: usize| {
            Session::builder(model.clone(), MachineConfig::smart_infinity(devices), method).build()
        };
        let base = session(Method::Baseline, devices).simulate_iteration().unwrap();
        let smart =
            session(Method::SmartComp { keep_ratio: 0.01 }, devices).simulate_iteration().unwrap();
        prop_assert!(base.forward_s > 0.0 && base.backward_s > 0.0 && base.update_s > 0.0);
        prop_assert!(smart.forward_s > 0.0 && smart.backward_s > 0.0 && smart.update_s > 0.0);
        let speedup = smart.speedup_over(&base);
        prop_assert!(speedup > 0.8 && speedup < 4.0, "speedup {speedup:.2}");

        let more = session(Method::SmartComp { keep_ratio: 0.01 }, devices + 1)
            .simulate_iteration()
            .unwrap();
        prop_assert!(more.total_s() <= smart.total_s() * 1.02, "adding a CSD must not hurt");
    }

    /// Interconnect-traffic accounting is internally consistent for any
    /// optimizer and compression ratio.
    #[test]
    fn traffic_model_is_consistent(
        keep in 0.001f64..0.5,
        kind in arb_optimizer(),
    ) {
        use smart_infinity::{TrafficMethod, TrafficModel};
        let workload = Workload::paper_default(ModelConfig::gpt2_4b());
        let model = TrafficModel::new(workload, kind);
        let base = model.per_iteration(TrafficMethod::ZeroInfinity).total();
        let su = model.per_iteration(TrafficMethod::SmartUpdate).total();
        let comp = model.per_iteration(TrafficMethod::SmartComp { keep_ratio: keep }).total();
        prop_assert!(su < base);
        prop_assert!(comp <= su + 1e-6);
        prop_assert!(model.reduction_over_baseline(TrafficMethod::SmartUpdate) > 1.0);
    }
}
