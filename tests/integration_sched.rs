//! Scheduler-equivalence suite: pins every timed schedule bit-identical to
//! the checked-in golden timings captured from the hand-built schedule
//! builders before they were replaced by `Scheduler` implementations.
//!
//! The golden file (`tests/golden/timed_goldens.txt`) stores every `f64` of
//! every `IterationReport`/`PipelineTiming` as its exact IEEE-754 bit
//! pattern, so the comparison is bit-for-bit, not approximate. The grid
//! spans machine shapes (device counts, congested multi-GPU), models,
//! method axes (handler × compression × pipelining), optimizers, subgroup
//! capacities and fault effects — every knob that reaches the timed path.
//!
//! To re-bless after an *intentional* timing-model change:
//!
//! ```text
//! cargo test -p smart_infinity --test integration_sched -- --ignored bless
//! ```

use faultkit::TimedFaultEffects;
use llm::{ModelConfig, Workload};
use optim::OptimizerKind;
use smart_infinity::{HandlerMode, SmartInfinityEngine};
use std::path::PathBuf;
use ztrain::{BaselineEngine, MachineConfig};

/// One grid point: a label plus the named timing fields it produced.
type GoldenCase = (String, Vec<(&'static str, f64)>);

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/timed_goldens.txt")
}

fn optimizer_name(opt: OptimizerKind) -> &'static str {
    match opt {
        OptimizerKind::Adam => "adam",
        OptimizerKind::AdamW => "adamw",
        OptimizerKind::SgdMomentum => "sgd",
        OptimizerKind::AdaGrad => "adagrad",
    }
}

/// The smart-engine knobs of one grid point.
#[derive(Clone)]
struct SmartKnobs {
    handler: HandlerMode,
    keep: Option<f64>,
    pipelined: bool,
    subgroup: Option<usize>,
    optimizer: OptimizerKind,
    faults: Option<TimedFaultEffects>,
}

impl SmartKnobs {
    fn plain(handler: HandlerMode, keep: Option<f64>, pipelined: bool) -> Self {
        Self {
            handler,
            keep,
            pipelined,
            subgroup: None,
            optimizer: OptimizerKind::Adam,
            faults: None,
        }
    }

    fn label(&self) -> String {
        let handler = match self.handler {
            HandlerMode::Naive => "naive",
            HandlerMode::Optimized => "opt",
        };
        let keep = self.keep.map_or("dense".to_string(), |k| format!("keep{k}"));
        let sched = if self.pipelined { "pipe" } else { "serial" };
        let mut label = format!("{handler}-{keep}-{sched}-{}", optimizer_name(self.optimizer));
        if let Some(sub) = self.subgroup {
            label.push_str(&format!("-sub{sub}"));
        }
        if let Some(f) = &self.faults {
            if let Some((dev, factor)) = f.straggler {
                label.push_str(&format!("-strag{dev}x{factor}"));
            }
            if let Some(factor) = f.uplink_bandwidth_factor {
                label.push_str(&format!("-uplink{factor}"));
            }
        }
        label
    }

    fn run(&self, machine: &MachineConfig, workload: &Workload) -> Vec<(&'static str, f64)> {
        let mut engine =
            SmartInfinityEngine::new(machine.clone(), workload.clone(), self.optimizer)
                .with_handler(self.handler);
        if let Some(keep) = self.keep {
            engine = engine.with_compression(keep);
        }
        if self.pipelined {
            engine = engine.with_pipelining();
        }
        if let Some(sub) = self.subgroup {
            engine = engine.with_subgroup_elems(sub);
        }
        if let Some(faults) = &self.faults {
            engine = engine.with_fault_effects(*faults);
        }
        let timing = engine.simulate_iteration_stages().expect("grid case must simulate");
        vec![
            ("forward", timing.report.forward_s),
            ("backward", timing.report.backward_s),
            ("update", timing.report.update_s),
            ("uplink_write", timing.uplink_write_busy_s),
            ("uplink_readback", timing.uplink_readback_busy_s),
            ("overlap", timing.update_overlap_s),
        ]
    }
}

/// Runs the whole grid against the *current* engines. Every grid point is a
/// configuration the production front doors (session/experiment) can reach.
fn run_grid() -> Vec<GoldenCase> {
    let mut cases: Vec<GoldenCase> = Vec::new();
    let models = [("gpt2_0.34b", ModelConfig::gpt2_0_34b()), ("gpt2_4b", ModelConfig::gpt2_4b())];

    // --- Smart-Infinity engines: machines x models x method axes ----------
    let machines: [(&str, MachineConfig); 5] = [
        ("smart2", MachineConfig::smart_infinity(2)),
        ("smart3", MachineConfig::smart_infinity(3)),
        ("smart6", MachineConfig::smart_infinity(6)),
        ("smart10", MachineConfig::smart_infinity(10)),
        ("cong4x2", MachineConfig::congested_multi_gpu(4, 2)),
    ];
    let axes = [
        SmartKnobs::plain(HandlerMode::Optimized, None, false),
        SmartKnobs::plain(HandlerMode::Naive, None, false),
        SmartKnobs::plain(HandlerMode::Optimized, Some(0.02), false),
        SmartKnobs::plain(HandlerMode::Optimized, None, true),
        SmartKnobs::plain(HandlerMode::Optimized, Some(0.02), true),
        SmartKnobs::plain(HandlerMode::Naive, Some(0.05), true),
    ];
    for (mname, machine) in &machines {
        for (wname, model) in &models {
            let workload = Workload::paper_default(model.clone());
            for knobs in &axes {
                let label = format!("smart|{mname}|{wname}|{}", knobs.label());
                cases.push((label, knobs.run(machine, &workload)));
            }
        }
    }

    // Optimizer, subgroup-capacity and single-device extremes.
    let smart6 = MachineConfig::smart_infinity(6);
    let gpt2_4b = Workload::paper_default(ModelConfig::gpt2_4b());
    for opt in [OptimizerKind::SgdMomentum, OptimizerKind::AdaGrad] {
        let knobs =
            SmartKnobs { optimizer: opt, ..SmartKnobs::plain(HandlerMode::Optimized, None, false) };
        cases.push((
            format!("smart|smart6|gpt2_4b|{}", knobs.label()),
            knobs.run(&smart6, &gpt2_4b),
        ));
    }
    for (handler, keep, pipelined) in
        [(HandlerMode::Optimized, None, false), (HandlerMode::Optimized, Some(0.02), true)]
    {
        let knobs = SmartKnobs {
            subgroup: Some(25_000_000),
            ..SmartKnobs::plain(handler, keep, pipelined)
        };
        cases.push((
            format!("smart|smart6|gpt2_4b|{}", knobs.label()),
            knobs.run(&smart6, &gpt2_4b),
        ));
    }
    let smart1 = MachineConfig::smart_infinity(1);
    let small = Workload::paper_default(ModelConfig::gpt2_0_34b());
    for knobs in [
        SmartKnobs::plain(HandlerMode::Optimized, None, false),
        SmartKnobs::plain(HandlerMode::Optimized, None, true),
    ] {
        cases.push((
            format!("smart|smart1|gpt2_0.34b|{}", knobs.label()),
            knobs.run(&smart1, &small),
        ));
    }
    let bert = Workload::paper_default(ModelConfig::bert_0_34b());
    let knobs = SmartKnobs::plain(HandlerMode::Optimized, None, true);
    cases.push((format!("smart|smart6|bert_0.34b|{}", knobs.label()), knobs.run(&smart6, &bert)));

    // Fault effects reach the timed path through the same engines.
    let straggler = TimedFaultEffects { straggler: Some((0, 2.0)), ..TimedFaultEffects::default() };
    let derated =
        TimedFaultEffects { uplink_bandwidth_factor: Some(0.5), ..TimedFaultEffects::default() };
    for (faults, base) in [
        (straggler, SmartKnobs::plain(HandlerMode::Optimized, None, true)),
        (derated, SmartKnobs::plain(HandlerMode::Optimized, None, false)),
    ] {
        let knobs = SmartKnobs { faults: Some(faults), ..base };
        cases.push((
            format!("smart|smart6|gpt2_4b|{}", knobs.label()),
            knobs.run(&smart6, &gpt2_4b),
        ));
    }

    // --- Baseline engine: RAID0 machines x models x optimizers ------------
    let base_machines: [(&str, MachineConfig); 5] = [
        ("raid1", MachineConfig::baseline_raid0(1)),
        ("raid2", MachineConfig::baseline_raid0(2)),
        ("raid4", MachineConfig::baseline_raid0(4)),
        ("raid8", MachineConfig::baseline_raid0(8)),
        ("cong4x2-plain", {
            let mut m = MachineConfig::congested_multi_gpu(4, 2);
            m.storage = fabric::StorageKind::PlainSsd;
            m
        }),
    ];
    for (mname, machine) in &base_machines {
        for (wname, model) in &models {
            let workload = Workload::paper_default(model.clone());
            let report = BaselineEngine::new(machine.clone(), workload, OptimizerKind::Adam)
                .simulate_iteration()
                .expect("baseline grid case must simulate");
            cases.push((
                format!("base|{mname}|{wname}|adam"),
                vec![
                    ("forward", report.forward_s),
                    ("backward", report.backward_s),
                    ("update", report.update_s),
                ],
            ));
        }
    }
    for opt in [OptimizerKind::SgdMomentum, OptimizerKind::AdaGrad] {
        let report = BaselineEngine::new(MachineConfig::baseline_raid0(4), gpt2_4b.clone(), opt)
            .simulate_iteration()
            .expect("baseline grid case must simulate");
        cases.push((
            format!("base|raid4|gpt2_4b|{}", optimizer_name(opt)),
            vec![
                ("forward", report.forward_s),
                ("backward", report.backward_s),
                ("update", report.update_s),
            ],
        ));
    }
    let report =
        BaselineEngine::new(MachineConfig::baseline_raid0(4), gpt2_4b, OptimizerKind::Adam)
            .with_fault_effects(TimedFaultEffects {
                uplink_bandwidth_factor: Some(0.5),
                ..TimedFaultEffects::default()
            })
            .simulate_iteration()
            .expect("baseline grid case must simulate");
    cases.push((
        "base|raid4|gpt2_4b|adam-uplink0.5".to_string(),
        vec![
            ("forward", report.forward_s),
            ("backward", report.backward_s),
            ("update", report.update_s),
        ],
    ));
    cases
}

/// Renders the grid in the golden file's line format: one case per line,
/// every value as its exact 64-bit IEEE-754 pattern (plus the decimal value
/// as a human-readable comment field).
fn render_grid(cases: &[GoldenCase]) -> String {
    let mut out = String::new();
    out.push_str(
        "# Bit-exact timed-schedule goldens. One case per line:\n\
         #   label|field=<f64 bit pattern as hex>[,...]\n\
         # Captured from the hand-built schedule builders; the Scheduler\n\
         # implementations must reproduce every value bit-for-bit.\n",
    );
    for (label, fields) in cases {
        out.push_str(label);
        for (name, value) in fields {
            out.push_str(&format!("|{name}={:016x}", value.to_bits()));
        }
        out.push('\n');
    }
    out
}

/// Re-captures the golden file from the current engines. Run explicitly
/// (`-- --ignored bless`) only after an intentional timing-model change.
#[test]
#[ignore = "re-blesses the golden file; run only after an intentional timing change"]
fn bless_timed_goldens() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
    std::fs::write(&path, render_grid(&run_grid())).expect("write golden file");
}

/// Every timed report across the whole grid is bit-identical to the golden
/// values captured from the legacy hand-built schedules.
#[test]
fn timed_reports_are_bit_identical_to_checked_in_goldens() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing; run the bless test to create it");
    let fresh = render_grid(&run_grid());
    if golden == fresh {
        return;
    }
    let golden_lines: Vec<&str> = golden.lines().collect();
    let fresh_lines: Vec<&str> = fresh.lines().collect();
    for (i, fresh_line) in fresh_lines.iter().enumerate() {
        let golden_line = golden_lines.get(i).copied().unwrap_or("<missing>");
        assert_eq!(
            golden_line,
            *fresh_line,
            "timed schedule diverged from the golden capture at line {}",
            i + 1
        );
    }
    panic!(
        "golden file has {} lines but the grid produced {}",
        golden_lines.len(),
        fresh_lines.len()
    );
}
