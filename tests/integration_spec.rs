//! Integration suite for the spec-driven front door: `RunSpec` JSON round
//! trips, enum-vs-spec bit-equivalence across both stacks, centralized
//! `TrainError::Config` validation from the builder *and* the JSON path, and
//! the `Campaign` runner over the checked-in spec files.

use parcore::ParExecutor;
use proptest::prelude::*;
use smart_infinity::{
    Campaign, CompressionSpec, FlatTensor, HandlerMode, MachineSpec, Method, MethodSpec, ModelSpec,
    RunSpec, SelectionMethod, TrainError, WorkloadSpec,
};
use ztrain::SyntheticGradients;

fn ladder_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/ladder.json");
    std::fs::read_to_string(path).expect("specs/ladder.json is checked in")
}

fn spec_json(file: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/");
    std::fs::read_to_string(format!("{dir}{file}")).expect("spec file is checked in")
}

/// Builds a `MethodSpec` from sampled axes, constrained to coherent
/// combinations (incoherent ones are covered by the error tests).
fn method_from(
    axes: u8,
    keep_ratio: f64,
    selector: u8,
    sample_size: usize,
    seed: u64,
) -> MethodSpec {
    let mut method = match axes % 4 {
        0 => MethodSpec::baseline(),
        1 => MethodSpec::smart_update(),
        2 => MethodSpec::smart_update_optimized(),
        _ => MethodSpec::pipelined(None),
    };
    if method.in_storage_update && axes & 0x10 != 0 {
        let selection = match selector % 3 {
            0 => None,
            1 => Some(SelectionMethod::ThresholdTopK { sample_size }),
            _ => Some(SelectionMethod::RandomK { seed }),
        };
        let mut compression = CompressionSpec::top_k(keep_ratio);
        if let Some(selection) = selection {
            compression = compression.with_selection(selection);
        }
        method = method.with_compression(compression);
    }
    method
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `RunSpec` -> JSON -> `RunSpec` is the identity, for arbitrary knob
    /// combinations — including u64 selector seeds outside the exact-f64
    /// range, which the shim's lexical numbers preserve.
    #[test]
    fn run_spec_json_round_trip_is_identity(
        axes in 0u8..32,
        keep_ratio in 0.001f64..1.0,
        selector in 0u8..3,
        sample_size in 1usize..10_000,
        seed in proptest::arbitrary::any::<u64>(),
        preset in 0usize..20,
        devices in 1usize..12,
        gpu in 0u8..4,
        threads in 0usize..8,
        handler in 0u8..3,
        subgroup in 0usize..3,
        batch in 0usize..5,
    ) {
        let method = method_from(axes, keep_ratio, selector, sample_size, seed);
        let model = if preset % 5 == 0 {
            ModelSpec::ScaledGpt2 { billions: 0.5 + preset as f64 }
        } else {
            ModelSpec::preset(ModelSpec::preset_names()[preset])
        };
        let mut machine = MachineSpec::devices(devices);
        match gpu {
            0 => machine = machine.with_gpu("A100"),
            1 => machine = machine.with_num_gpus(2).congested(),
            _ => {}
        }
        let mut spec = RunSpec::new(model, machine, method);
        if threads > 0 {
            spec = spec.with_threads(threads);
        }
        match handler {
            0 => spec = spec.with_handler(HandlerMode::Naive),
            1 => spec = spec.with_handler(HandlerMode::Optimized),
            _ => {}
        }
        if subgroup > 0 {
            spec = spec.with_subgroup_elems(subgroup << 12);
        }
        if batch > 0 {
            spec = spec.with_workload(WorkloadSpec { batch_size: Some(batch * 4), seq_len: None });
        }
        let compact = RunSpec::from_json(&spec.to_json()).expect("compact round trip");
        prop_assert_eq!(&compact, &spec);
        let pretty = RunSpec::from_json(&spec.to_json_pretty()).expect("pretty round trip");
        prop_assert_eq!(&pretty, &spec);
    }

    /// Every `Method` variant, routed through its `MethodSpec` *and through
    /// JSON*, produces a bit-identical trainer and an identical timed
    /// iteration report.
    #[test]
    fn enum_and_spec_built_sessions_are_bit_identical(
        variant in 0usize..6,
        devices in 1usize..6,
        threads in 1usize..4,
    ) {
        let method = [
            Method::Baseline,
            Method::SmartUpdate,
            Method::SmartUpdateOptimized,
            Method::SmartComp { keep_ratio: 0.02 },
            Method::SmartInfinityPipelined { keep_ratio: None },
            Method::SmartInfinityPipelined { keep_ratio: Some(0.02) },
        ][variant];
        let model = smart_infinity::ModelConfig::gpt2_0_34b();
        let machine = smart_infinity::MachineConfig::smart_infinity(devices);

        // Enum-built: the compat path through Session::builder(.., Method).
        let enum_session = smart_infinity::Session::builder(model, machine, method)
            .with_threads(threads)
            .build();
        // Spec-built: the data path, round-tripped through JSON text.
        let spec = RunSpec::new(
            ModelSpec::preset("GPT2-0.34B"),
            MachineSpec::devices(devices),
            MethodSpec::from(method),
        )
        .with_threads(threads);
        let spec_session = RunSpec::from_json(&spec.to_json()).expect("round trip")
            .session().expect("valid spec");

        // Functional view: bit-identical parameters after 3 steps.
        let initial = FlatTensor::randn(1_200, 0.05, 11);
        let mut from_enum = enum_session.trainer(&initial).expect("enum trainer");
        let mut from_spec = spec_session.trainer(&initial).expect("spec trainer");
        let mut src_a = SyntheticGradients::new(1_200, 0.01, 23);
        let mut src_b = SyntheticGradients::new(1_200, 0.01, 23);
        for _ in 0..3 {
            let a = from_enum.step_from(&mut src_a).expect("step");
            let b = from_spec.step_from(&mut src_b).expect("step");
            prop_assert_eq!(a.gradient_bytes, b.gradient_bytes);
            prop_assert_eq!(a.compression_kept, b.compression_kept);
        }
        prop_assert_eq!(from_enum.params_fp16().as_slice(), from_spec.params_fp16().as_slice());
        let enum_master = from_enum.master_params().expect("params");
        let spec_master = from_spec.master_params().expect("params");
        prop_assert_eq!(enum_master.as_slice(), spec_master.as_slice());

        // Timed view: identical phase breakdowns.
        prop_assert_eq!(
            enum_session.simulate_iteration().expect("timed"),
            spec_session.simulate_iteration().expect("timed")
        );
    }
}

#[test]
fn invalid_specs_are_config_errors_from_both_builder_and_json_paths() {
    let base = RunSpec::new(
        ModelSpec::preset("GPT2-0.34B"),
        MachineSpec::devices(3),
        MethodSpec::smart_comp(0.01),
    );

    // Builder path: bad keep ratios.
    for bad in [0.0, -1.0, 1.0001, f64::INFINITY] {
        let spec = RunSpec { method: MethodSpec::smart_comp(bad), ..base.clone() };
        let err = spec.session().expect_err("bad keep ratio");
        assert!(matches!(err, TrainError::Config { .. }), "{bad}: {err}");
        assert!(err.to_string().contains("keep ratio"), "{err}");
    }
    // Builder path: zero subgroup.
    let err = base.clone().with_subgroup_elems(0).session().expect_err("zero subgroup");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");
    assert!(err.to_string().contains("subgroup"), "{err}");
    // Builder path: params < devices comes from the session's trainer call.
    let session = base.clone().session().expect("valid");
    let err = session.trainer(&FlatTensor::zeros(2)).expect_err("2 params on 3 devices");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");
    // Builder path: incoherent axes.
    let err = RunSpec {
        method: MethodSpec { overlap: false, ..MethodSpec::pipelined(None) },
        ..base.clone()
    }
    .session()
    .expect_err("pipelined without overlap");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");

    // JSON path: the same knobs through text — errors, not panics.
    let json_cases = [
        // keep_ratio out of range
        r#"{"model":"GPT2-0.34B","machine":{"devices":3},
            "method":{"offload":true,"in_storage_update":true,"overlap":true,
                      "pipelined":false,"compression":{"keep_ratio":0.0}}}"#,
        // zero subgroup
        r#"{"model":"GPT2-0.34B","machine":{"devices":3},"subgroup_elems":0,
            "method":{"offload":true,"in_storage_update":true,"overlap":true,
                      "pipelined":false}}"#,
        // zero devices
        r#"{"model":"GPT2-0.34B","machine":{"devices":0},
            "method":{"offload":true,"in_storage_update":false,"overlap":false,
                      "pipelined":false}}"#,
        // unknown model preset
        r#"{"model":"GPT9-999B","machine":{"devices":3},
            "method":{"offload":true,"in_storage_update":false,"overlap":false,
                      "pipelined":false}}"#,
    ];
    for json in json_cases {
        let spec = RunSpec::from_json(json).expect("parses fine; fails validation");
        let err = spec.session().expect_err("invalid spec");
        assert!(matches!(err, TrainError::Config { .. }), "{json}: {err}");
    }

    // JSON path: malformed documents and typos are Config errors too.
    let err = RunSpec::from_json("{not json").expect_err("parse error");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");
    let err = RunSpec::from_json(r#"{"model":"GPT2-0.34B","machine":{"devices":3},"methodd":{}}"#)
        .expect_err("typo'd field");
    assert!(err.to_string().contains("methodd"), "{err}");
}

#[test]
fn checked_in_ladder_campaign_runs_concurrently_on_parcore() {
    let campaign = Campaign::from_json(&ladder_json()).expect("ladder parses");
    assert!(campaign.specs.len() >= 4, "the acceptance bar: a campaign of >= 4 specs");
    let parallel = campaign.run_on(&ParExecutor::new(4)).expect("parallel run");
    let serial = campaign.run_on(&ParExecutor::serial()).expect("serial run");
    assert_eq!(parallel.threads, 4);
    assert_eq!(parallel.runs.len(), campaign.specs.len());
    // Concurrency changes wall-clock only, never results.
    assert_eq!(parallel.runs, serial.runs);
    // The ladder's physics still hold when driven from JSON: every
    // Smart-Infinity point beats BASE, compression beats its dense sibling.
    assert_eq!(parallel.runs[0].method, "BASE");
    assert!((parallel.runs[0].speedup_over_first - 1.0).abs() < 1e-12);
    for run in &parallel.runs[1..] {
        assert!(run.speedup_over_first > 1.0, "{}: {}", run.label, run.speedup_over_first);
    }
    let total = |label: &str| {
        parallel
            .runs
            .iter()
            .find(|r| r.method == label)
            .unwrap_or_else(|| panic!("{label} in ladder"))
            .report
            .total_s()
    };
    assert!(total("SU+O+C(2%)") < total("SU+O"));
    assert!(total("SU+O+P+C(2%)") < total("SU+O+P"));
    // The report's host facts are recorded for the perf-snapshot caveat.
    assert!(parallel.num_cpus >= 1);
    assert_eq!(parallel.parallel_valid, parallel.num_cpus > 1);
}

#[test]
fn every_checked_in_spec_file_parses_validates_and_runs() {
    for file in ["ladder.json", "scaling.json", "compression.json", "serve.json"] {
        let campaign = Campaign::from_json(&spec_json(file)).unwrap_or_else(|e| {
            panic!("{file}: {e}");
        });
        campaign.validate().unwrap_or_else(|e| panic!("{file}: {e}"));
        let report = campaign.run().unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(report.runs.len(), campaign.specs.len(), "{file}");
        for run in &report.runs {
            assert!(run.report.total_s() > 0.0, "{file}: {}", run.label);
        }
    }
    // compression.json exercises the off-ladder SU+C point and a threshold
    // selector; its dense SU+O row must beat the naive-handler SU+C row.
    let campaign = Campaign::from_json(&spec_json("compression.json")).expect("parses");
    let report = campaign.run().expect("runs");
    let by_name = |needle: &str| {
        report
            .runs
            .iter()
            .find(|r| r.label.contains(needle))
            .unwrap_or_else(|| panic!("{needle} in compression.json"))
            .report
            .total_s()
    };
    assert!(by_name("off-ladder") > by_name("2% transfer, threshold"));
    assert_eq!(
        campaign.specs.iter().filter(|s| s.method.to_string() == "SU+C(2%)").count(),
        1,
        "the off-ladder label renders"
    );
}

#[test]
fn campaign_reports_serialize_for_the_json_sink() {
    let campaign = Campaign::from_json(&ladder_json()).expect("ladder parses");
    let report = campaign.run_on(&ParExecutor::serial()).expect("runs");
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    assert!(json.contains("\"parallel_valid\""));
    assert!(json.contains("SU+O+P+C(2%)"));
    // The document is valid JSON in the shim's own parser.
    serde_json::parse(&json).expect("report JSON parses back");
}
