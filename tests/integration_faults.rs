//! Fault-injection integration tests across the whole stack, through the
//! [`Session`] front door:
//!
//! * an omitted or empty [`FaultSpec`] leaves every trainer and the timed
//!   engine bit-identical to the fault-free build, across devices × worker
//!   threads × execution modes (the "numerically invisible" baseline);
//! * the same `RunSpec` + `FaultSpec` seed reproduces the same fault events,
//!   the same recovery work and the same final parameters regardless of how
//!   many worker threads the execution backend uses;
//! * recovered transients, wear-outs and dropouts never change the numbers.

use proptest::prelude::*;
use smart_infinity::{
    FaultSpec, MachineConfig, Method, MethodSpec, ModelConfig, Session, SessionBuilder,
};
use tensorlib::FlatTensor;

const N: usize = 1500;

// Two builders on purpose: the functional trainers want a small subgroup so
// a 1500-element tensor spreads over several subgroups per shard, but the
// same override applied to the timed model of a 0.34B-parameter workload
// would explode it into millions of per-subgroup events.
fn builder(method: impl Into<MethodSpec>, devices: usize, threads: usize) -> SessionBuilder {
    timed_builder(method, devices, threads).with_subgroup_elems(300)
}

fn timed_builder(method: impl Into<MethodSpec>, devices: usize, threads: usize) -> SessionBuilder {
    Session::builder(ModelConfig::gpt2_0_34b(), MachineConfig::smart_infinity(devices), method)
        .with_threads(threads)
}

fn exec_modes() -> Vec<MethodSpec> {
    vec![
        MethodSpec::from(Method::Baseline),
        MethodSpec::from(Method::SmartUpdate),
        MethodSpec::from(Method::SmartComp { keep_ratio: 0.05 }),
        MethodSpec::pipelined(None),
        MethodSpec::pipelined(Some(0.05)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Satellite invariant: an empty fault plan is not merely "few faults" —
    /// it is bit-identical to never having had the fault axis at all, for
    /// every execution mode, device count and worker count.
    #[test]
    fn empty_fault_plans_are_bit_identical_to_no_fault_axis(
        devices in 1usize..6,
        threads in 1usize..5,
        mode in 0usize..5,
        seed in 0u64..1000,
    ) {
        let method = exec_modes().remove(mode);
        let initial = FlatTensor::randn(N, 0.05, seed);
        let grads = FlatTensor::randn(N, 0.01, seed + 1);

        let mut plain = builder(method, devices, threads).build().trainer(&initial).unwrap();
        let mut empty = builder(method, devices, threads)
            .with_faults(FaultSpec::empty(seed))
            .build()
            .trainer(&initial)
            .unwrap();

        for _ in 0..2 {
            let a = plain.step(&grads).unwrap();
            let b = empty.step(&grads).unwrap();
            prop_assert!(b.degraded.is_none(), "empty plan must not report degradation");
            prop_assert_eq!(a, b);
        }
        let plain_params = plain.master_params().unwrap();
        let empty_params = empty.master_params().unwrap();
        prop_assert_eq!(plain_params.as_slice(), empty_params.as_slice());
        prop_assert_eq!(plain.params_fp16().as_slice(), empty.params_fp16().as_slice());

        // The timed view too: an empty spec must not perturb the makespan.
        let timed_plain =
            timed_builder(method, devices, threads).build().simulate_iteration().unwrap();
        let timed_empty = timed_builder(method, devices, threads)
            .with_faults(FaultSpec::empty(seed))
            .build()
            .simulate_iteration()
            .unwrap();
        prop_assert_eq!(timed_plain, timed_empty);
    }

    /// Recovered faults are numerically invisible: a run peppered with
    /// transient storage faults (plus one wear-out and one dropout) produces
    /// bit-identical parameters to the fault-free run, in every mode.
    #[test]
    fn recovered_faults_never_change_the_numbers(
        mode in 0usize..5,
        seed in 0u64..1000,
    ) {
        let method = exec_modes().remove(mode);
        let initial = FlatTensor::randn(N, 0.05, seed);
        let grads = FlatTensor::randn(N, 0.01, seed + 1);
        let mut faults = FaultSpec::empty(seed);
        faults.transient_per_mille = Some(250);
        faults.ssd_wearout_step = Some(1);
        faults.csd_dropout_step = Some(2);

        let mut clean = builder(method, 3, 2).build().trainer(&initial).unwrap();
        let mut faulted =
            builder(method, 3, 2).with_faults(faults).build().trainer(&initial).unwrap();

        let mut degraded_steps = 0;
        for _ in 0..3 {
            let a = clean.step(&grads).unwrap();
            let b = faulted.step(&grads).unwrap();
            degraded_steps += usize::from(b.degraded.is_some());
            // Telemetry differs (the faulted run did recovery work), but the
            // numbers must not.
            prop_assert_eq!(a.step, b.step);
            prop_assert_eq!(a.gradient_bytes, b.gradient_bytes);
        }
        prop_assert!(degraded_steps > 0, "a 25% transient rate must fire within 3 steps");
        let clean_params = clean.master_params().unwrap();
        let faulted_params = faulted.master_params().unwrap();
        prop_assert_eq!(clean_params.as_slice(), faulted_params.as_slice());
        prop_assert_eq!(clean.params_fp16().as_slice(), faulted.params_fp16().as_slice());
    }
}

/// The same `RunSpec` + `FaultSpec` seed reproduces the same fault events,
/// the same recovery work and the same final parameters for every worker
/// count of the pipelined execution backend.
#[test]
fn seeded_faults_are_deterministic_across_worker_counts() {
    let initial = FlatTensor::randn(N, 0.05, 17);
    let grads = FlatTensor::randn(N, 0.01, 18);
    let mut faults = FaultSpec::empty(99);
    faults.transient_per_mille = Some(300);
    faults.ssd_wearout_step = Some(1);

    let run = |threads: usize| {
        let mut trainer = builder(MethodSpec::pipelined(Some(0.1)), 4, threads)
            .with_faults(faults.clone())
            .build()
            .trainer(&initial)
            .unwrap();
        let reports: Vec<_> = (0..3).map(|_| trainer.step(&grads).unwrap()).collect();
        (reports, trainer.master_params().unwrap())
    };

    let (reports_1, params_1) = run(1);
    assert!(
        reports_1.iter().any(|r| r.degraded.is_some()),
        "a 30% transient rate must fire within 3 steps"
    );
    for threads in [2, 4] {
        let (reports_n, params_n) = run(threads);
        for (a, b) in reports_1.iter().zip(&reports_n) {
            // Identical fault events and recovery work, not just identical
            // parameters — only the worker-count telemetry may differ.
            assert_eq!(a.degraded, b.degraded, "{threads} workers, step {}", a.step);
            assert_eq!(a.storage_bytes_read, b.storage_bytes_read, "{threads} workers");
            assert_eq!(a.storage_bytes_written, b.storage_bytes_written, "{threads} workers");
        }
        assert_eq!(params_1.as_slice(), params_n.as_slice(), "{threads} workers");
    }
}

/// Timed fault effects (a straggler CSD, a derated host uplink) slow the
/// simulated iteration down and do so deterministically.
#[test]
fn timed_fault_effects_slow_the_iteration_deterministically() {
    let mut faults = FaultSpec::empty(5);
    faults.straggler_factor = Some(3.0);
    faults.link_bandwidth_factor = Some(0.25);

    for method in [MethodSpec::from(Method::Baseline), MethodSpec::from(Method::SmartUpdate)] {
        let clean = timed_builder(method, 4, 1).build().simulate_iteration().unwrap();
        let degraded = timed_builder(method, 4, 1)
            .with_faults(faults.clone())
            .build()
            .simulate_iteration()
            .unwrap();
        let again = timed_builder(method, 4, 1)
            .with_faults(faults.clone())
            .build()
            .simulate_iteration()
            .unwrap();
        assert!(
            degraded.total_s() > clean.total_s(),
            "faults must cost time: {} vs {}",
            degraded.total_s(),
            clean.total_s()
        );
        assert_eq!(degraded, again, "the timed fault model is deterministic");
    }
}

/// Invalid fault specs are rejected up front with a configuration error,
/// like every other spec axis — not discovered mid-run.
#[test]
fn invalid_fault_specs_are_rejected_up_front() {
    let initial = FlatTensor::randn(64, 0.05, 1);
    let mut faults = FaultSpec::empty(1);
    faults.transient_per_mille = Some(1001);
    let err =
        builder(Method::Baseline, 1, 1).with_faults(faults).build().trainer(&initial).unwrap_err();
    assert!(err.to_string().contains("per_mille"), "{err}");
}
