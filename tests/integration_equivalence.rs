//! Numerical-equivalence integration tests: the paper's central correctness
//! claims, checked end to end across crates.
//!
//! * SmartUpdate is algorithmically identical to the baseline — the trained
//!   parameters are bit-for-bit equal regardless of how many CSDs, subgroups
//!   or blocks the work is split into (paper Section VII-J).
//! * SmartComp is lossy but bounded — with error feedback the sparsified
//!   trajectory stays close to the exact one, and the FPGA decompressor is
//!   exactly inverse to the GPU-side compressor's selection.

use gradcomp::Compressor;
use optim::{HyperParams, Optimizer, OptimizerKind};
use smart_infinity::{MachineConfig, Method, ModelConfig, Session, SmartInfinityTrainer};
use tensorlib::{Dtype, FlatTensor};
use ztrain::SyntheticGradients;

/// In-memory reference: plain optimizer steps with no offloading at all.
fn in_memory_reference(
    initial: &FlatTensor,
    optimizer: Optimizer,
    grads: &[FlatTensor],
) -> FlatTensor {
    let mut master = initial.clone();
    let mut aux = optimizer.init_aux(initial.len());
    for (i, g) in grads.iter().enumerate() {
        optimizer.step(master.as_mut_slice(), g, &mut aux, (i + 1) as u64);
    }
    master
}

fn gradient_stream(n: usize, steps: u64, seed: u64) -> Vec<FlatTensor> {
    (0..steps).map(|s| FlatTensor::randn(n, 0.01, seed + s)).collect()
}

#[test]
fn every_engine_produces_identical_parameters_for_every_optimizer() {
    let n = 12_000;
    let initial = FlatTensor::randn(n, 0.05, 11);
    let grads = gradient_stream(n, 3, 500);
    for kind in [
        OptimizerKind::Adam,
        OptimizerKind::AdamW,
        OptimizerKind::SgdMomentum,
        OptimizerKind::AdaGrad,
    ] {
        let optimizer = Optimizer::new(kind, HyperParams::default());
        let reference = in_memory_reference(&initial, optimizer, &grads);

        // Both substrates come out of the same Session front door; only the
        // Method (and the substrate geometry) differs.
        let session = |method, devices, subgroup| {
            Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(devices),
                method,
            )
            .with_optimizer(optimizer)
            .with_subgroup_elems(subgroup)
            .build()
        };
        let mut baseline =
            session(Method::Baseline, 3, 2_500).trainer(&initial).expect("baseline trainer");
        let mut smart =
            session(Method::SmartUpdate, 5, 1_111).trainer(&initial).expect("smart trainer");
        for g in &grads {
            baseline.step(g).expect("baseline step");
            smart.step(g).expect("smart step");
        }
        assert_eq!(
            baseline.master_params().expect("params").as_slice(),
            reference.as_slice(),
            "{kind:?}: baseline deviates from the in-memory reference"
        );
        assert_eq!(
            smart.master_params().expect("params").as_slice(),
            reference.as_slice(),
            "{kind:?}: SmartUpdate deviates from the in-memory reference"
        );
        assert_eq!(
            smart.params_fp16().as_slice(),
            baseline.params_fp16().as_slice(),
            "{kind:?}: FP16 working copies diverge"
        );
    }
}

#[test]
fn csd_count_and_subgroup_size_never_change_the_result() {
    let n = 9_001; // deliberately prime-ish so shards are uneven
    let initial = FlatTensor::randn(n, 0.05, 21);
    let grads = gradient_stream(n, 2, 900);
    let optimizer = Optimizer::adam_default();
    let mut reference: Option<FlatTensor> = None;
    for (csds, subgroup) in [(1usize, n), (2, 4_000), (3, 1_024), (7, 333), (10, 10_000)] {
        let mut trainer =
            SmartInfinityTrainer::new(&initial, optimizer, csds, subgroup).expect("trainer");
        for g in &grads {
            trainer.train_step_with_grads(g).expect("step");
        }
        let params = trainer.master_params().expect("params");
        match &reference {
            None => reference = Some(params),
            Some(r) => assert_eq!(
                r.as_slice(),
                params.as_slice(),
                "partitioning ({csds} CSDs, subgroup {subgroup}) changed the result"
            ),
        }
    }
}

#[test]
fn smartcomp_equals_training_on_decompressed_gradients() {
    // The timed path claims SmartComp = compress on GPU, decompress on FPGA,
    // then the ordinary update. The functional engines must therefore match a
    // reference that applies exactly the decompressed (sparsified+EF) gradients.
    let n = 6_000;
    let initial = FlatTensor::randn(n, 0.05, 31);
    let optimizer = Optimizer::adam_default();
    let keep_ratio = 0.05;

    let mut smart = SmartInfinityTrainer::new(&initial, optimizer, 1, 1_500)
        .expect("trainer")
        .with_compression(keep_ratio);

    // Reference: manual error feedback + Top-K + decompress + in-memory update.
    let compressor = Compressor::top_k(keep_ratio);
    let mut feedback = gradcomp::ErrorFeedback::new(n);
    let mut master = initial.clone();
    let mut aux = optimizer.init_aux(n);

    let grads = gradient_stream(n, 4, 77);
    for (i, g) in grads.iter().enumerate() {
        smart.train_step_with_grads(g).expect("step");

        let corrected = feedback.apply(g);
        let compressed = compressor.compress(&corrected);
        feedback.update(&corrected, &compressed);
        let effective = compressed.decompress();
        optimizer.step(master.as_mut_slice(), &effective, &mut aux, (i + 1) as u64);
    }
    assert_eq!(smart.master_params().expect("params").as_slice(), master.as_slice());
}

#[test]
fn compressed_training_tracks_exact_training_with_error_feedback() {
    let n = 4_096;
    let initial = FlatTensor::randn(n, 0.05, 41);
    let optimizer = Optimizer::adam_default();
    let mut exact = SmartInfinityTrainer::new(&initial, optimizer, 2, 1_000).expect("trainer");
    let mut compressed = SmartInfinityTrainer::new(&initial, optimizer, 2, 1_000)
        .expect("trainer")
        .with_compression(0.05);
    let mut src_a = SyntheticGradients::new(n, 0.01, 3);
    let mut src_b = SyntheticGradients::new(n, 0.01, 3);
    for _ in 0..10 {
        exact.train_step(&mut src_a).expect("step");
        compressed.train_step(&mut src_b).expect("step");
    }
    let a = exact.master_params().expect("params");
    let b = compressed.master_params().expect("params");
    let rmse = a.mse(&b).sqrt();
    let scale = a.l2_norm() as f64 / (n as f64).sqrt();
    assert!(rmse / scale < 0.35, "relative deviation too large: {:.3}", rmse / scale);
}

#[test]
fn fp16_working_copy_is_the_rounded_master_copy_everywhere() {
    let n = 2_000;
    let initial = FlatTensor::randn(n, 0.05, 55);
    let optimizer = Optimizer::adam_default();
    let mut smart = SmartInfinityTrainer::new(&initial, optimizer, 4, 499).expect("trainer");
    smart.train_step_with_grads(&FlatTensor::randn(n, 0.01, 56)).expect("step");
    let master = smart.master_params().expect("params");
    let expected = FlatTensor::from_bytes(&master.to_bytes(Dtype::F16), Dtype::F16);
    assert_eq!(smart.params_fp16().as_slice(), expected.as_slice());
}
