//! End-to-end determinism of the parallel execution backend: a full
//! Smart-Infinity training run on the threaded backend is bit-identical to
//! the serial baseline, which is the paper's accuracy-neutrality argument
//! (SmartUpdate changes *where and how fast* the update runs, never *what*
//! it computes).

use gradcomp::Compressor;
use optim::{HyperParams, Optimizer, OptimizerKind};
use parcore::ParExecutor;
use smart_infinity::{MachineConfig, Method, ModelConfig, Session, Trainer};
use tensorlib::FlatTensor;
use ztrain::SyntheticGradients;

/// Builds the functional trainer for `method` through the Session front door.
fn trainer_for(
    method: Method,
    devices: usize,
    subgroup: usize,
    threads: usize,
    optimizer: Optimizer,
    initial: &FlatTensor,
) -> Box<dyn Trainer> {
    Session::builder(ModelConfig::gpt2_0_34b(), MachineConfig::smart_infinity(devices), method)
        .with_optimizer(optimizer)
        .with_subgroup_elems(subgroup)
        .with_threads(threads)
        .build()
        .trainer(initial)
        .expect("trainer")
}

/// Thread counts exercised end-to-end: serial, two, a prime, and the
/// machine's actual parallelism.
fn thread_counts() -> Vec<usize> {
    let cpus = ParExecutor::current().num_threads();
    vec![1, 2, 7, cpus.max(2)]
}

#[test]
fn threaded_smart_infinity_matches_the_serial_baseline_bit_for_bit() {
    let n = 12_007;
    let optimizer = Optimizer::new(OptimizerKind::AdamW, HyperParams::default());
    let initial = FlatTensor::randn(n, 0.05, 1001);

    // Reference: the single-threaded ZeRO-Infinity-style baseline.
    let mut baseline = trainer_for(Method::Baseline, 2, 3000, 1, optimizer, &initial);
    let mut source = SyntheticGradients::new(n, 0.01, 2002);
    for _ in 0..3 {
        baseline.step_from(&mut source).unwrap();
    }
    let reference = baseline.master_params().unwrap();

    for threads in thread_counts() {
        let mut smart = trainer_for(Method::SmartUpdate, 3, 1100, threads, optimizer, &initial);
        let mut source = SyntheticGradients::new(n, 0.01, 2002);
        for _ in 0..3 {
            let report = smart.step_from(&mut source).unwrap();
            assert_eq!(report.threads, threads, "reported thread count");
        }
        assert_eq!(
            smart.master_params().unwrap().as_slice(),
            reference.as_slice(),
            "threads={threads}"
        );
        assert_eq!(
            smart.params_fp16().as_slice(),
            baseline.params_fp16().as_slice(),
            "fp16 threads={threads}"
        );
    }
}

#[test]
fn threaded_compressed_training_is_deterministic_across_thread_counts() {
    let n = 8009;
    let optimizer = Optimizer::adam_default();
    let initial = FlatTensor::randn(n, 0.05, 7);
    let run = |threads: usize| {
        let mut t = trainer_for(
            Method::SmartComp { keep_ratio: 0.02 },
            2,
            900,
            threads,
            optimizer,
            &initial,
        );
        let mut source = SyntheticGradients::new(n, 0.01, 8);
        for _ in 0..4 {
            t.step_from(&mut source).unwrap();
        }
        t.master_params().unwrap()
    };
    let serial = run(1);
    for threads in thread_counts().into_iter().skip(1) {
        assert_eq!(run(threads).as_slice(), serial.as_slice(), "threads={threads}");
    }
}

#[test]
fn parallel_top_k_selection_is_identical_inside_the_full_compression_pipeline() {
    // The GPU-side selection is the one lossy, order-sensitive kernel in the
    // pipeline; check it at a realistic gradient size through the public API.
    let grads = FlatTensor::randn(1 << 20, 0.01, 99);
    let compressor = Compressor::top_k(0.01);
    let serial = compressor.compress(&grads);
    for threads in thread_counts().into_iter().skip(1) {
        let pool = ParExecutor::new(threads);
        assert_eq!(compressor.compress_par(&grads, &pool), serial, "threads={threads}");
    }
    assert_eq!(serial.num_selected(), compressor.num_kept(1 << 20));
}
