//! Integration suite for `campaignd` ([`smart_infinity::CampaignService`]):
//! canonicalization hardening (two JSON encodings of the same spec hash to
//! one cache key; any semantic knob change moves it), cache-hit reports
//! bit-identical to fresh runs — including under a `faults` axis and across
//! both `parcore` execution modes — and the queue semantics (in-flight
//! coalescing, bounded-depth rejection, round-robin fairness) under real
//! concurrent clients.

use parcore::{ExecMode, ParExecutor};
use proptest::prelude::*;
use serde::Value;
use smart_infinity::{
    fnv1a, CampaignService, CompressionSpec, FaultSpec, JobId, JobStatus, MachineSpec, MethodSpec,
    ModelSpec, RunSpec, SelectionMethod, ServiceConfig, ServiceError, WorkloadSpec,
};

/// Builds a coherent `MethodSpec` from sampled axes (the invalid
/// combinations are covered by the submit-rejection tests).
fn method_from(
    axes: u8,
    keep_ratio: f64,
    selector: u8,
    sample_size: usize,
    seed: u64,
) -> MethodSpec {
    let mut method = match axes % 4 {
        0 => MethodSpec::baseline(),
        1 => MethodSpec::smart_update(),
        2 => MethodSpec::smart_update_optimized(),
        _ => MethodSpec::pipelined(None),
    };
    if method.in_storage_update && axes & 0x10 != 0 {
        let selection = match selector % 3 {
            0 => None,
            1 => Some(SelectionMethod::ThresholdTopK { sample_size }),
            _ => Some(SelectionMethod::RandomK { seed }),
        };
        let mut compression = CompressionSpec::top_k(keep_ratio);
        if let Some(selection) = selection {
            compression = compression.with_selection(selection);
        }
        method = method.with_compression(compression);
    }
    method
}

/// Recursively mangles a parsed JSON document without changing its meaning:
/// reverses the key order of every object and (optionally) drops explicit
/// `null` entries — exactly the degrees of freedom different encoders take.
fn mangle(value: &Value, drop_nulls: bool) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(|v| mangle(v, drop_nulls)).collect()),
        Value::Object(pairs) => Value::Object(
            pairs
                .iter()
                .rev()
                .filter(|(_, v)| !(drop_nulls && matches!(v, Value::Null)))
                .map(|(k, v)| (k.clone(), mangle(v, drop_nulls)))
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Canonicalization hardening: reordered keys, dropped explicit-null
    /// optionals and pretty-printed whitespace all canonicalize to the same
    /// text and FNV-1a cache key — while renaming only the label never moves
    /// the key, and flipping any semantic knob always does.
    #[test]
    fn json_encoding_freedom_never_moves_the_cache_key(
        axes in 0u8..32,
        keep_ratio in 0.001f64..1.0,
        selector in 0u8..3,
        sample_size in 1usize..10_000,
        seed in proptest::arbitrary::any::<u64>(),
        preset in 0usize..20,
        devices in 1usize..12,
        threads in 0usize..8,
        batch in 0usize..5,
        fault_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let method = method_from(axes, keep_ratio, selector, sample_size, seed);
        let mut spec = RunSpec::new(
            ModelSpec::preset(ModelSpec::preset_names()[preset]),
            MachineSpec::devices(devices),
            method,
        );
        if threads > 0 {
            spec = spec.with_threads(threads);
        }
        if batch > 0 {
            spec = spec.with_workload(WorkloadSpec { batch_size: Some(batch * 4), seq_len: None });
        }
        if axes & 0x8 != 0 {
            spec = spec.with_faults(FaultSpec::empty(fault_seed));
        }
        let canonical = spec.canonical_json();
        let key = spec.cache_key();
        prop_assert_eq!(fnv1a(canonical.as_bytes()), key);

        // Re-encode the same document every way an encoder legitimately may.
        let parsed = serde_json::parse(&spec.to_json()).expect("spec JSON parses");
        for drop_nulls in [false, true] {
            let mangled = mangle(&parsed, drop_nulls);
            for text in [
                serde_json::to_string(&mangled).expect("mangled serializes"),
                serde_json::to_string_pretty(&mangled).expect("mangled serializes"),
            ] {
                let reparsed = serde_json::parse(&text).expect("mangled JSON parses");
                prop_assert_eq!(
                    smart_infinity::canonical_json(&reparsed),
                    canonical.clone(),
                    "drop_nulls={} text={}", drop_nulls, text
                );
                // ... and the typed path agrees with the textual one.
                let respec = RunSpec::from_json(&text).expect("mangled spec loads");
                prop_assert_eq!(respec.cache_key(), key);
            }
        }

        // Presentation never participates in the key.
        prop_assert_eq!(spec.clone().with_name("renamed").cache_key(), key);

        // Every semantic knob does.
        let mut devices_changed = spec.clone();
        devices_changed.machine.devices = devices + 1;
        prop_assert!(devices_changed.cache_key() != key, "device count must move the key");
        let threads_changed = spec.clone().with_threads(threads + 9);
        prop_assert!(threads_changed.cache_key() != key, "thread count must move the key");
        let faults_changed = spec.clone().with_faults(FaultSpec {
            straggler_factor: Some(2.5),
            ..FaultSpec::empty(fault_seed)
        });
        prop_assert!(faults_changed.cache_key() != key, "fault axis must move the key");
        if let Some(compression) = spec.method.compression {
            let mut ratio_changed = spec.clone();
            ratio_changed.method.compression =
                Some(CompressionSpec { keep_ratio: compression.keep_ratio / 2.0, ..compression });
            prop_assert!(ratio_changed.cache_key() != key, "keep ratio must move the key");
        }
    }
}

/// A cache-hit `RunReport` is bit-identical to a fresh, service-free run of
/// the same spec — including under an active `faults` axis — whichever
/// execution mode and worker count dispatched the original run.
#[test]
fn cache_hits_are_bit_identical_to_fresh_runs_across_modes_and_faults() {
    let plain = RunSpec::new(
        ModelSpec::preset("GPT2-0.34B"),
        MachineSpec::devices(4),
        MethodSpec::smart_update_optimized(),
    );
    let faulty = plain.clone().with_faults(FaultSpec {
        transient_per_mille: Some(150),
        straggler_factor: Some(1.5),
        ..FaultSpec::empty(2024)
    });
    for spec in [plain, faulty] {
        let fresh = spec.session().expect("valid spec").simulate_iteration().expect("fresh run");
        for mode in [ExecMode::WorkStealing, ExecMode::Deterministic] {
            for workers in [1usize, 3] {
                let pool = ParExecutor::new(workers).with_mode(mode);
                let service = CampaignService::default();
                let id = service.submit(0, &spec).expect("submit");
                let first = service.await_result(id, &pool).expect("first run");
                assert!(!first.telemetry.cache_hit);
                let hit_id = service.submit(1, &spec).expect("resubmit");
                let hit = service.await_result(hit_id, &pool).expect("cache hit");
                assert!(hit.telemetry.cache_hit, "mode={mode:?} workers={workers}");
                assert_eq!(service.executions(), 1);
                for report in [&first.report.report, &hit.report.report] {
                    // Bit-identical, not approximately equal.
                    assert_eq!(report.forward_s.to_bits(), fresh.forward_s.to_bits());
                    assert_eq!(report.backward_s.to_bits(), fresh.backward_s.to_bits());
                    assert_eq!(report.update_s.to_bits(), fresh.update_s.to_bits());
                }
                assert_eq!(first.report, hit.report, "the whole RunReport is shared");
            }
        }
    }
}

/// Many concurrent clients hammering one overlapping spec list: each unique
/// spec executes exactly once, nobody starves, and every coalesced/cached
/// answer carries the same payload.
#[test]
fn concurrent_clients_get_exactly_one_execution_per_unique_spec() {
    let specs: Vec<RunSpec> = [
        MethodSpec::baseline(),
        MethodSpec::smart_update(),
        MethodSpec::smart_update_optimized(),
        MethodSpec::smart_comp(0.01),
    ]
    .into_iter()
    .map(|m| RunSpec::new(ModelSpec::preset("GPT2-0.34B"), MachineSpec::devices(3), m))
    .collect();
    let service = CampaignService::new(ServiceConfig::new(64, 2));
    let pool = ParExecutor::new(2);
    let clients = 6;
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = &service;
            let specs = &specs;
            let pool = &pool;
            scope.spawn(move || {
                // Rotated start offsets make the overlap in-flight, not only
                // cached; two passes make the second all-cache.
                for pass in 0..2 {
                    let ids: Vec<JobId> = (0..specs.len())
                        .map(|k| {
                            let spec = &specs[(client + k + pass) % specs.len()];
                            service.submit(client, spec).expect("submit")
                        })
                        .collect();
                    for id in ids {
                        service.await_result(id, pool).expect("await");
                    }
                }
            });
        }
    });
    assert_eq!(service.executions(), specs.len() as u64, "one execution per unique spec, ever");
    let report = service.report();
    assert_eq!(report.submitted, (clients * specs.len() * 2) as u64);
    assert_eq!(report.cache_hits + report.coalesced + specs.len() as u64, report.submitted);
    assert_eq!(report.failed, 0);
    assert_eq!(report.rejected, 0);
    for (client, stats) in report.clients.iter().enumerate() {
        assert_eq!(
            stats.completed,
            (specs.len() * 2) as u64,
            "client {client} must complete every job (no starvation)"
        );
    }
}

/// The bounded queue rejects explicitly (never blocks, never drops silently),
/// and round-robin admission with a tiny batch keeps a one-spec client ahead
/// of a flooding one.
#[test]
fn bounded_queue_and_fairness_under_flood() {
    let service = CampaignService::new(ServiceConfig::new(3, 1));
    let pool = ParExecutor::serial();
    let spec = |devices| {
        RunSpec::new(
            ModelSpec::preset("GPT2-0.34B"),
            MachineSpec::devices(devices),
            MethodSpec::baseline(),
        )
    };
    // Client 0 floods until the queue bound trips.
    let mut accepted = 0;
    let mut rejected = 0;
    for devices in 1..=6 {
        match service.submit(0, &spec(devices)) {
            Ok(_) => accepted += 1,
            Err(ServiceError::QueueFull { queued, depth }) => {
                assert_eq!((queued, depth), (3, 3));
                rejected += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!((accepted, rejected), (3, 3));
    // The bound applies to every client's *new* unique work...
    let err = service.submit(1, &spec(7)).expect_err("queue still full");
    assert!(matches!(err, ServiceError::QueueFull { .. }), "{err}");
    // ... but one dispatch cycle makes room, and round-robin admission then
    // takes client 1's item on the following cycle — not after client 0's
    // whole remaining backlog.
    service.tick(&pool);
    let late = service.submit(1, &spec(8)).expect("room after one cycle");
    service.tick(&pool); // the cursor is past client 0: this admits client 1
    match service.poll(late).expect("poll") {
        JobStatus::Done(_) => {}
        other => panic!("client 1 must not wait out client 0's whole backlog, got {other:?}"),
    }
    service.drain(&pool);
    let report = service.report();
    assert_eq!(report.rejected, 4);
    assert_eq!(report.clients[0].rejected, 3);
    assert_eq!(report.clients[1].rejected, 1);
    assert_eq!(service.executions(), 4, "3 admitted floods + client 1's item");
    assert!(report.clients[1].max_queue_wait_s <= report.queue_wait.max_s);
}

/// Submitting an invalid spec fails fast with `ServiceError::Invalid` and
/// never occupies the queue; awaiting a foreign handle is `UnknownJob`.
#[test]
fn service_errors_are_typed_and_queue_neutral() {
    let service = CampaignService::default();
    let pool = ParExecutor::serial();
    let invalid = RunSpec::new(
        ModelSpec::preset("GPT2-0.34B"),
        MachineSpec::devices(2),
        MethodSpec { overlap: true, ..MethodSpec::baseline() },
    );
    let err = service.submit(0, &invalid).expect_err("incoherent axes");
    assert!(matches!(err, ServiceError::Invalid(_)), "{err}");
    assert!(std::error::Error::source(&err).is_some(), "Invalid keeps its source chain");
    assert_eq!(service.report().submitted, 0);
    assert_eq!(service.report().in_flight, 0);
    // A handle issued by a *different* service is foreign here.
    let other = CampaignService::default();
    let valid = RunSpec::new(
        ModelSpec::preset("GPT2-0.34B"),
        MachineSpec::devices(2),
        MethodSpec::baseline(),
    );
    let foreign = other.submit(0, &valid).expect("valid elsewhere");
    let err = service.await_result(foreign, &pool).expect_err("no jobs exist here");
    assert!(matches!(err, ServiceError::UnknownJob(_)), "{err}");
    assert!(err.to_string().contains("job-"), "{err}");
    let _ = other.drain(&pool);
}
