//! End-to-end integration: the full Smart-Infinity stack — model zoo,
//! machine configuration, timed engines, functional engines and real
//! gradients — working together through the public API.

use smart_infinity::{
    Experiment, HandlerMode, MachineConfig, Method, ModelConfig, Optimizer, OptimizerKind,
    SmartInfinityEngine, SmartInfinityTrainer, Workload,
};
use ztrain::realtrain::{Dataset, MlpGradientSource, MlpModel};
use ztrain::{BaselineEngine, StorageOffloadTrainer};

#[test]
fn full_ladder_reproduces_the_headline_speedups() {
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let experiment = Experiment::new(MachineConfig::smart_infinity(10), workload);
    let reports = experiment.ladder().expect("simulation");
    assert_eq!(reports.len(), 4);
    // BASE, SU, SU+O, SU+O+C in increasing speedup order.
    for pair in reports.windows(2) {
        assert!(
            pair[1].speedup >= pair[0].speedup,
            "{} ({:.2}x) should not be slower than {} ({:.2}x)",
            pair[1].label,
            pair[1].speedup,
            pair[0].label,
            pair[0].speedup
        );
    }
    let final_speedup = reports.last().unwrap().speedup;
    assert!(
        final_speedup > 1.5 && final_speedup < 3.0,
        "SU+O+C speedup at 10 CSDs: {final_speedup:.2}"
    );
}

#[test]
fn breakdown_phases_follow_the_paper_shape() {
    // Baseline: update dominates. Smart-Infinity: it no longer does.
    let workload = Workload::paper_default(ModelConfig::gpt2_8_4b());
    let base = BaselineEngine::new(
        MachineConfig::baseline_raid0(6),
        workload.clone(),
        OptimizerKind::Adam,
    )
    .simulate_iteration()
    .expect("simulation");
    assert!(base.update_fraction() > 0.6, "baseline update fraction {:.2}", base.update_fraction());

    let smart =
        SmartInfinityEngine::new(MachineConfig::smart_infinity(10), workload, OptimizerKind::Adam)
            .with_compression(0.01)
            .simulate_iteration()
            .expect("simulation");
    assert!(smart.update_fraction() < base.update_fraction());
    assert!(smart.total_s() < base.total_s());
}

#[test]
fn handler_modes_and_compression_compose_through_the_builder() {
    let workload = Workload::paper_default(ModelConfig::bert_4b());
    let engine =
        SmartInfinityEngine::new(MachineConfig::smart_infinity(6), workload, OptimizerKind::AdamW)
            .with_handler(HandlerMode::Naive)
            .with_compression(0.05)
            .with_subgroup_elems(50_000_000);
    assert_eq!(engine.handler(), HandlerMode::Naive);
    assert_eq!(engine.keep_ratio(), Some(0.05));
    let report = engine.simulate_iteration().expect("simulation");
    assert!(report.total_s() > 0.0);
}

#[test]
fn training_a_real_model_through_the_offload_engines_learns() {
    // Drive both functional engines with genuine MLP gradients and verify the
    // loss-bearing classifier actually improves.
    let dataset = Dataset::gaussian_blobs("e2e", 200, 12, 3, 0.35, 99);
    let model = MlpModel::new(12, 16, 3);
    let initial = model.init_params(1);
    let optimizer = Optimizer::adam_default();

    let accuracy_before = model.accuracy(&initial, &dataset.test_x, &dataset.test_y);

    let mut smart = SmartInfinityTrainer::new(&initial, optimizer, 3, 200).expect("trainer");
    let mut baseline = StorageOffloadTrainer::new(&initial, optimizer, 2, 300).expect("trainer");
    let mut source_a = MlpGradientSource::new(model, dataset.clone(), 16, 5);
    let mut source_b = MlpGradientSource::new(model, dataset.clone(), 16, 5);
    for _ in 0..150 {
        smart.train_step(&mut source_a).expect("step");
        baseline.train_step(&mut source_b).expect("step");
    }
    let smart_params = smart.master_params().expect("params");
    let baseline_params = baseline.master_params().expect("params");
    // Identical gradient streams -> identical trained parameters.
    assert_eq!(smart_params.as_slice(), baseline_params.as_slice());

    let accuracy_after = model.accuracy(&smart_params, &dataset.test_x, &dataset.test_y);
    assert!(
        accuracy_after > accuracy_before + 0.2,
        "training through the CSD path must actually learn: {accuracy_before:.2} -> {accuracy_after:.2}"
    );
    assert!(accuracy_after > 0.85, "final accuracy {accuracy_after:.2}");

    // The near-storage update generated internal traffic but the gradients it
    // consumed came from the host side exactly once per step.
    let stats = smart.aggregate_stats();
    assert_eq!(stats.elements_updated, 150 * initial.len() as u64);
}

#[test]
fn other_optimizers_and_models_run_through_the_same_api() {
    for optimizer in [OptimizerKind::SgdMomentum, OptimizerKind::AdaGrad] {
        let experiment = Experiment::new(
            MachineConfig::smart_infinity(6),
            Workload::paper_default(ModelConfig::bloom_3b()),
        )
        .with_optimizer(optimizer);
        let base = experiment.run(Method::Baseline).expect("simulation");
        let smart = experiment.run(Method::SmartUpdateOptimized).expect("simulation");
        assert!(
            smart.speedup_over(&base) > 1.2,
            "{optimizer:?}: speedup {:.2}",
            smart.speedup_over(&base)
        );
    }
}

#[test]
fn congested_multi_gpu_topology_is_supported_end_to_end() {
    let experiment = Experiment::new(
        MachineConfig::congested_multi_gpu(10, 3),
        Workload::paper_default(ModelConfig::gpt2_1_16b()),
    );
    let base = experiment.run(Method::Baseline).expect("simulation");
    let smart = experiment.run(Method::SmartComp { keep_ratio: 0.01 }).expect("simulation");
    let speedup = smart.speedup_over(&base);
    assert!(speedup > 1.3, "congested-topology speedup {speedup:.2}");
    // Multi-GPU tensor parallelism shortens forward compute vs a single GPU.
    let single = Experiment::new(
        MachineConfig::congested_multi_gpu(10, 1),
        Workload::paper_default(ModelConfig::gpt2_1_16b()),
    )
    .run(Method::Baseline)
    .expect("simulation");
    assert!(base.forward_s < single.forward_s);
}
