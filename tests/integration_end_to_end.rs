//! End-to-end integration: the full Smart-Infinity stack — model zoo,
//! machine configuration, timed engines, functional engines and real
//! gradients — working together through the public API.

use smart_infinity::{
    HandlerMode, MachineConfig, Method, ModelConfig, OptimizerKind, Session, SmartInfinityEngine,
    Workload,
};
use ztrain::realtrain::{Dataset, MlpGradientSource, MlpModel};
use ztrain::BaselineEngine;

#[test]
fn full_ladder_reproduces_the_headline_speedups() {
    let session = Session::builder(
        ModelConfig::gpt2_4b(),
        MachineConfig::smart_infinity(10),
        Method::Baseline,
    )
    .build();
    let reports = session.experiment().expect("experiment").ladder().expect("simulation");
    assert_eq!(reports.len(), 4);
    // BASE, SU, SU+O, SU+O+C in increasing speedup order.
    for pair in reports.windows(2) {
        assert!(
            pair[1].speedup >= pair[0].speedup,
            "{} ({:.2}x) should not be slower than {} ({:.2}x)",
            pair[1].label,
            pair[1].speedup,
            pair[0].label,
            pair[0].speedup
        );
    }
    let final_speedup = reports.last().unwrap().speedup;
    assert!(
        final_speedup > 1.5 && final_speedup < 3.0,
        "SU+O+C speedup at 10 CSDs: {final_speedup:.2}"
    );
}

#[test]
fn breakdown_phases_follow_the_paper_shape() {
    // Baseline: update dominates. Smart-Infinity: it no longer does.
    let workload = Workload::paper_default(ModelConfig::gpt2_8_4b());
    let base = BaselineEngine::new(
        MachineConfig::baseline_raid0(6),
        workload.clone(),
        OptimizerKind::Adam,
    )
    .simulate_iteration()
    .expect("simulation");
    assert!(base.update_fraction() > 0.6, "baseline update fraction {:.2}", base.update_fraction());

    let smart =
        SmartInfinityEngine::new(MachineConfig::smart_infinity(10), workload, OptimizerKind::Adam)
            .with_compression(0.01)
            .simulate_iteration()
            .expect("simulation");
    assert!(smart.update_fraction() < base.update_fraction());
    assert!(smart.total_s() < base.total_s());
}

#[test]
fn handler_modes_and_compression_compose_through_the_builder() {
    let workload = Workload::paper_default(ModelConfig::bert_4b());
    let engine =
        SmartInfinityEngine::new(MachineConfig::smart_infinity(6), workload, OptimizerKind::AdamW)
            .with_handler(HandlerMode::Naive)
            .with_compression(0.05)
            .with_subgroup_elems(50_000_000);
    assert_eq!(engine.handler(), HandlerMode::Naive);
    assert_eq!(engine.keep_ratio(), Some(0.05));
    let report = engine.simulate_iteration().expect("simulation");
    assert!(report.total_s() > 0.0);
}

#[test]
fn training_a_real_model_through_the_offload_engines_learns() {
    // Drive both functional substrates, behind one `dyn Trainer` seam, with
    // genuine MLP gradients and verify the classifier actually improves.
    let dataset = Dataset::gaussian_blobs("e2e", 200, 12, 3, 0.35, 99);
    let model = MlpModel::new(12, 16, 3);
    let initial = model.init_params(1);

    let accuracy_before = model.accuracy(&initial, &dataset.test_x, &dataset.test_y);

    let session = |method, devices, subgroup| {
        Session::builder(ModelConfig::gpt2_0_34b(), MachineConfig::smart_infinity(devices), method)
            .with_subgroup_elems(subgroup)
            .build()
    };
    let mut smart = session(Method::SmartUpdate, 3, 200).trainer(&initial).expect("trainer");
    let mut baseline = session(Method::Baseline, 2, 300).trainer(&initial).expect("trainer");
    let mut source_a = MlpGradientSource::new(model, dataset.clone(), 16, 5);
    let mut source_b = MlpGradientSource::new(model, dataset.clone(), 16, 5);
    let mut smart_p2p_written = 0u64;
    for _ in 0..150 {
        let report = smart.step_from(&mut source_a).expect("step");
        smart_p2p_written += report.storage_bytes_written;
        baseline.step_from(&mut source_b).expect("step");
    }
    let smart_params = smart.master_params().expect("params");
    let baseline_params = baseline.master_params().expect("params");
    // Identical gradient streams -> identical trained parameters.
    assert_eq!(smart_params.as_slice(), baseline_params.as_slice());

    let accuracy_after = model.accuracy(&smart_params, &dataset.test_x, &dataset.test_y);
    assert!(
        accuracy_after > accuracy_before + 0.2,
        "training through the CSD path must actually learn: {accuracy_before:.2} -> {accuracy_after:.2}"
    );
    assert!(accuracy_after > 0.85, "final accuracy {accuracy_after:.2}");
    assert_eq!(smart.steps_completed(), 150);
    // Real device telemetry: the near-storage path wrote back exactly the
    // Adam state volume (master + 2 aux = 12 B/param) for every parameter of
    // every step — i.e. each element really was updated once per step.
    assert_eq!(smart_p2p_written, 150 * 12 * initial.len() as u64);
}

#[test]
fn other_optimizers_and_models_run_through_the_same_api() {
    for optimizer in [OptimizerKind::SgdMomentum, OptimizerKind::AdaGrad] {
        let session = |method| {
            Session::builder(ModelConfig::bloom_3b(), MachineConfig::smart_infinity(6), method)
                .with_optimizer(smart_infinity::Optimizer::new(optimizer, Default::default()))
                .build()
        };
        let base = session(Method::Baseline).simulate_iteration().expect("simulation");
        let smart = session(Method::SmartUpdateOptimized).simulate_iteration().expect("simulation");
        assert!(
            smart.speedup_over(&base) > 1.2,
            "{optimizer:?}: speedup {:.2}",
            smart.speedup_over(&base)
        );
    }
}

#[test]
fn congested_multi_gpu_topology_is_supported_end_to_end() {
    let session = |gpus, method| {
        Session::builder(
            ModelConfig::gpt2_1_16b(),
            MachineConfig::congested_multi_gpu(10, gpus),
            method,
        )
        .build()
    };
    let base = session(3, Method::Baseline).simulate_iteration().expect("simulation");
    let smart = session(3, Method::SmartComp { keep_ratio: 0.01 })
        .simulate_iteration()
        .expect("simulation");
    let speedup = smart.speedup_over(&base);
    assert!(speedup > 1.3, "congested-topology speedup {speedup:.2}");
    // Multi-GPU tensor parallelism shortens forward compute vs a single GPU.
    let single = session(1, Method::Baseline).simulate_iteration().expect("simulation");
    assert!(base.forward_s < single.forward_s);
}
