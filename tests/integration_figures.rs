//! Figure-shape integration tests: every qualitative claim of the paper's
//! evaluation section, checked against the timed model through the public API.
//! (The `bench` crate regenerates the full tables; these tests pin the shapes
//! so refactoring cannot silently break them.)

use smart_infinity::{
    CostModel, GpuSpec, IterationReport, MachineConfig, Method, ModelConfig, Optimizer,
    OptimizerKind, Session, TrafficMethod, TrafficModel, Workload,
};
use ztrain::BaselineEngine;

/// One timed iteration through the Session front door.
fn simulate(model: ModelConfig, machine: MachineConfig, method: Method) -> IterationReport {
    Session::builder(model, machine, method).build().simulate_iteration().expect("simulation")
}

fn baseline_total(n_ssds: usize, model: ModelConfig) -> f64 {
    BaselineEngine::new(
        MachineConfig::baseline_raid0(n_ssds),
        Workload::paper_default(model),
        OptimizerKind::Adam,
    )
    .simulate_iteration()
    .expect("simulation")
    .total_s()
}

/// Fig. 3(a): the update phase dominates baseline training across model sizes.
#[test]
fn fig3a_update_dominates_for_all_model_sizes() {
    for model in [ModelConfig::gpt2_2_5b(), ModelConfig::gpt2_8_3b(), ModelConfig::gpt2_20_5b()] {
        let report = BaselineEngine::new(
            MachineConfig::baseline_raid0(1),
            Workload::paper_default(model.clone()),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .expect("simulation");
        assert!(
            report.update_fraction() > 0.6,
            "{}: update fraction {:.2}",
            model.name(),
            report.update_fraction()
        );
    }
}

/// Fig. 3(b): RAID0 scaling saturates after roughly four SSDs.
#[test]
fn fig3b_raid0_saturates() {
    let t1 = baseline_total(1, ModelConfig::gpt2_4b());
    let t4 = baseline_total(4, ModelConfig::gpt2_4b());
    let t10 = baseline_total(10, ModelConfig::gpt2_4b());
    assert!(t1 / t4 > 1.7, "1 -> 4 SSDs should help: {:.2}", t1 / t4);
    assert!(t4 / t10 < 1.1, "4 -> 10 SSDs should not: {:.2}", t4 / t10);
}

/// Table I: interconnect traffic drops from 16M to 3M (SmartUpdate) and to
/// ~1.04M (SmartComp at 2%).
#[test]
fn tab1_traffic_reductions() {
    let model =
        TrafficModel::new(Workload::paper_default(ModelConfig::gpt2_4b()), OptimizerKind::Adam);
    let m = |method| {
        model.per_iteration(method).total()
            / Workload::paper_default(ModelConfig::gpt2_4b()).model_bytes_fp16() as f64
    };
    assert!((m(TrafficMethod::ZeroInfinity) - 16.0).abs() < 1e-9);
    assert!((m(TrafficMethod::SmartUpdate) - 3.0).abs() < 1e-9);
    assert!((m(TrafficMethod::SmartComp { keep_ratio: 0.01 }) - 1.04).abs() < 1e-9);
}

/// Fig. 9 / Fig. 10: speedups are stable across model sizes and grow with the
/// number of CSDs.
#[test]
fn fig9_and_fig10_speedups_hold_across_scales() {
    for model in [ModelConfig::gpt2_4b(), ModelConfig::gpt2_16_6b(), ModelConfig::gpt2_33b()] {
        let mut speedups = Vec::new();
        for n in [6usize, 10] {
            let machine = MachineConfig::smart_infinity(n);
            let base = simulate(model.clone(), machine.clone(), Method::Baseline);
            let smart = simulate(model.clone(), machine, Method::SmartComp { keep_ratio: 0.01 });
            speedups.push(smart.speedup_over(&base));
        }
        assert!(
            speedups[0] > 1.3 && speedups[0] < 2.2,
            "{} at 6 CSDs: {:.2}",
            model.name(),
            speedups[0]
        );
        assert!(
            speedups[1] > speedups[0],
            "{}: more CSDs must help ({:.2} vs {:.2})",
            model.name(),
            speedups[1],
            speedups[0]
        );
    }
}

/// Fig. 11: the A100 sees larger speedups than the A5000 because compute
/// shrinks while the transfer bottleneck stays.
#[test]
fn fig11_faster_gpu_increases_the_speedup() {
    let speedup_for = |gpu: GpuSpec| {
        let machine = MachineConfig::smart_infinity(10).with_gpu(gpu);
        let base = simulate(ModelConfig::gpt2_4b(), machine.clone(), Method::Baseline);
        let smart =
            simulate(ModelConfig::gpt2_4b(), machine, Method::SmartComp { keep_ratio: 0.01 });
        smart.speedup_over(&base)
    };
    let a5000 = speedup_for(GpuSpec::a5000());
    let a100 = speedup_for(GpuSpec::a100());
    assert!(a100 > a5000, "A100 {a100:.2} should exceed A5000 {a5000:.2}");
    assert!(a100 < 3.2, "A100 speedup {a100:.2} out of band");
}

/// Fig. 12: SGD and AdaGrad carry 3/4 of Adam's optimizer state, so the
/// speedup is slightly lower but still substantial.
#[test]
fn fig12_other_optimizers_still_speed_up() {
    let speedup_for = |optimizer| {
        let session = |method| {
            Session::builder(ModelConfig::gpt2_4b(), MachineConfig::smart_infinity(10), method)
                .with_optimizer(Optimizer::new(optimizer, Default::default()))
                .build()
        };
        let base = session(Method::Baseline).simulate_iteration().expect("simulation");
        let smart = session(Method::SmartUpdateOptimized).simulate_iteration().expect("simulation");
        smart.speedup_over(&base)
    };
    let adam = speedup_for(OptimizerKind::Adam);
    let sgd = speedup_for(OptimizerKind::SgdMomentum);
    let adagrad = speedup_for(OptimizerKind::AdaGrad);
    assert!(sgd > 1.4 && adagrad > 1.4);
    assert!(sgd <= adam && adagrad <= adam, "smaller state -> no larger speedup");
}

/// Fig. 13: BLOOM and ViT behave like the GPT-2/BERT workloads.
#[test]
fn fig13_other_model_families_speed_up() {
    for model in [
        ModelConfig::bloom_3b(),
        ModelConfig::bloom_7_1b(),
        ModelConfig::vit_0_30b(),
        ModelConfig::vit_0_63b(),
    ] {
        let machine = MachineConfig::smart_infinity(10);
        let base = simulate(model.clone(), machine.clone(), Method::Baseline);
        let smart = simulate(model.clone(), machine, Method::SmartComp { keep_ratio: 0.01 });
        let speedup = smart.speedup_over(&base);
        assert!(speedup > 1.3 && speedup < 3.0, "{}: {:.2}", model.name(), speedup);
    }
}

/// Fig. 14: the FPGA kernels outpace the SSD, so they never become the bottleneck.
#[test]
fn fig14_kernels_keep_up_with_the_ssd() {
    let updater = csd::Updater::default();
    let decompressor = csd::Decompressor::default();
    let ssd = ssd::BandwidthProfile::smartssd_nvme();
    assert!(updater.throughput_bytes_per_sec(OptimizerKind::Adam) > 2.0 * ssd.read_bytes_per_sec);
    assert!(decompressor.throughput_bytes_per_sec(0.01) > ssd.read_bytes_per_sec);
}

/// Fig. 15: Smart-Infinity's GFLOPS/$ overtakes the baseline once enough
/// devices are installed, despite the 6x device-price premium.
#[test]
fn fig15_cost_efficiency_crossover() {
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let cost = CostModel::default();
    let gpu = GpuSpec::a5000();
    let flops = workload.training_flops();
    let efficiency = |n: usize, method: Method| {
        let t =
            simulate(ModelConfig::gpt2_4b(), MachineConfig::smart_infinity(n), method).total_s();
        let system = match method {
            Method::Baseline => cost.baseline_system_usd(&gpu, n),
            _ => cost.smart_infinity_system_usd(&gpu, n),
        };
        CostModel::gflops_per_dollar(flops / t, system)
    };
    assert!(
        efficiency(1, Method::Baseline) > efficiency(1, Method::SmartComp { keep_ratio: 0.01 })
    );
    assert!(
        efficiency(10, Method::SmartComp { keep_ratio: 0.01 }) > efficiency(10, Method::Baseline)
    );
}

/// Fig. 16: stronger compression monotonically reduces the iteration time,
/// with diminishing returns.
#[test]
fn fig16_compression_ratio_sensitivity() {
    let mut last = f64::INFINITY;
    for transfer in [0.10f64, 0.05, 0.02, 0.01] {
        let t = simulate(
            ModelConfig::gpt2_4b(),
            MachineConfig::smart_infinity(10),
            Method::SmartComp { keep_ratio: transfer / 2.0 },
        )
        .total_s();
        assert!(t <= last * 1.001, "time must not increase as compression strengthens");
        last = t;
    }
}

/// Fig. 17: the congested multi-GPU topology reduces but does not eliminate
/// the speedup.
#[test]
fn fig17_congested_topology_shape() {
    let default_machine = MachineConfig::smart_infinity(10);
    let congested_machine = MachineConfig::congested_multi_gpu(10, 3);
    let speedup = |machine: &MachineConfig| {
        let base = simulate(ModelConfig::gpt2_1_16b(), machine.clone(), Method::Baseline);
        let smart = simulate(
            ModelConfig::gpt2_1_16b(),
            machine.clone(),
            Method::SmartComp { keep_ratio: 0.01 },
        );
        smart.speedup_over(&base)
    };
    let default_speedup = speedup(&default_machine);
    let congested_speedup = speedup(&congested_machine);
    assert!(default_speedup > 1.3, "default-topology speedup {default_speedup:.2}");
    assert!(
        congested_speedup > 1.3 && congested_speedup < 2.6,
        "congested speedup {congested_speedup:.2} out of band"
    );
    // The congested placement routes GPU traffic over the shared switch, so
    // its backward (grad-offload) phase is relatively more expensive than in
    // the default topology with the same per-GPU traffic.
    let default_base = simulate(ModelConfig::gpt2_1_16b(), default_machine, Method::Baseline);
    let congested_base = simulate(ModelConfig::gpt2_1_16b(), congested_machine, Method::Baseline);
    assert!(
        congested_base.backward_s / congested_base.forward_s
            > default_base.backward_s / default_base.forward_s
    );
}
