//! Integration tests of the unified training API: the `Trainer` trait seam,
//! the `Session` front door, `StepReport` telemetry, and the workspace-level
//! `TrainError` with its cross-layer conversions and source chains.

use csd::CsdError;
use simkit::SimError;
use smart_infinity::{
    FlatTensor, MachineConfig, Method, ModelConfig, Session, SmartInfinityTrainer, StepReport,
    TrainError, Trainer,
};
use ssd::SsdError;
use std::error::Error;
use ztrain::{StorageOffloadTrainer, SyntheticGradients};

fn session(method: Method, devices: usize) -> Session {
    Session::builder(ModelConfig::gpt2_0_34b(), MachineConfig::smart_infinity(devices), method)
        .build()
}

/// The acceptance seam: a single `dyn Trainer` loop drives the baseline and
/// SmartUpdate substrates and they produce bit-identical parameters, with
/// StepReports carrying the byte accounting the old accessors reported.
#[test]
fn dyn_trainer_dispatch_is_equivalent_across_substrates() {
    let n = 10_000;
    let steps = 4u64;
    let initial = FlatTensor::randn(n, 0.05, 42);

    let mut trainers: Vec<Box<dyn Trainer>> = vec![
        session(Method::Baseline, 3).trainer(&initial).expect("baseline trainer"),
        session(Method::SmartUpdate, 3).trainer(&initial).expect("smart trainer"),
    ];
    let mut last = vec![StepReport::default(); trainers.len()];
    for step in 0..steps {
        let grads = FlatTensor::randn(n, 0.01, 300 + step);
        for (trainer, report) in trainers.iter_mut().zip(last.iter_mut()) {
            *report = trainer.step(&grads).expect("step");
        }
    }
    // Bit-identical training through the trait objects alone.
    let baseline_master = trainers[0].master_params().expect("params");
    let smart_master = trainers[1].master_params().expect("params");
    assert_eq!(baseline_master.as_slice(), smart_master.as_slice());
    assert_eq!(trainers[0].params_fp16().as_slice(), trainers[1].params_fp16().as_slice());
    for trainer in &trainers {
        assert_eq!(trainer.steps_completed(), steps);
        assert_eq!(trainer.num_params(), n);
    }
    // Byte counters match the pre-redesign per-engine accounting (Adam):
    // baseline RAID0 moves 16n in each direction per step, the CSD path moves
    // 16n/12n of internal P2P traffic and the dense 4n gradient downstream.
    let n64 = n as u64;
    assert_eq!(last[0].storage_bytes_read, 16 * n64);
    assert_eq!(last[0].storage_bytes_written, 16 * n64);
    assert_eq!(last[0].gradient_bytes, 8 * n64);
    assert_eq!(last[1].storage_bytes_read, 16 * n64);
    assert_eq!(last[1].storage_bytes_written, 12 * n64);
    assert_eq!(last[1].gradient_bytes, 4 * n64);
    assert!(last.iter().all(|r| r.compression_kept.is_none()));
    assert_eq!(last[0].step, steps);
}

/// The StepReport of the concrete trainers agrees with the cumulative
/// accessors that predate it (`storage_bytes_*`, `aggregate_stats`).
#[test]
fn step_reports_sum_to_the_cumulative_accessors() {
    let n = 6_000;
    let initial = FlatTensor::randn(n, 0.05, 5);
    let optimizer = smart_infinity::Optimizer::adam_default();

    let mut baseline = StorageOffloadTrainer::new(&initial, optimizer, 2, 1_500).expect("trainer");
    let setup = baseline.storage_bytes_written();
    let mut read_sum = 0;
    let mut write_sum = 0;
    for step in 0..3u64 {
        let report =
            baseline.train_step_with_grads(&FlatTensor::randn(n, 0.01, step)).expect("step");
        read_sum += report.storage_bytes_read;
        write_sum += report.storage_bytes_written;
    }
    assert_eq!(read_sum, baseline.storage_bytes_read());
    assert_eq!(write_sum, baseline.storage_bytes_written() - setup);

    let mut smart = SmartInfinityTrainer::new(&initial, optimizer, 3, 1_000).expect("trainer");
    let mut read_sum = 0;
    let mut write_sum = 0;
    for step in 0..3u64 {
        let report = smart.train_step_with_grads(&FlatTensor::randn(n, 0.01, step)).expect("step");
        read_sum += report.storage_bytes_read;
        write_sum += report.storage_bytes_written;
        assert_eq!(report.threads, 1);
    }
    let stats = smart.aggregate_stats();
    assert_eq!(read_sum, stats.p2p_read_bytes);
    assert_eq!(write_sum, stats.p2p_write_bytes);
}

/// SmartComp through the session: the keep count matches the compressor's
/// contract and the gradient stream is 8 bytes per kept element.
#[test]
fn compressed_step_reports_account_for_the_topk_stream() {
    let n = 8_000;
    let keep_ratio = 0.05;
    let initial = FlatTensor::randn(n, 0.05, 9);
    let mut trainer =
        session(Method::SmartComp { keep_ratio }, 4).trainer(&initial).expect("trainer");
    let mut source = SyntheticGradients::new(n, 0.01, 11);
    let report = trainer.step_from(&mut source).expect("step");
    // 4 even shards of 2000 elements, 5% kept each.
    let kept = report.compression_kept.expect("SmartComp reports a keep count");
    assert_eq!(kept, 4 * 100);
    assert_eq!(report.gradient_bytes, 8 * kept);
    assert!(report.is_compressed());
    assert_eq!(
        report.storage_bytes_total(),
        report.storage_bytes_read + report.storage_bytes_written
    );
}

/// Thread-count telemetry flows through the session into the report, and the
/// threaded result stays bit-identical.
#[test]
fn threads_knob_is_reported_and_never_changes_results() {
    let n = 5_000;
    let initial = FlatTensor::randn(n, 0.05, 21);
    let grads = FlatTensor::randn(n, 0.01, 22);
    let run = |threads: usize| {
        let mut trainer = Session::builder(
            ModelConfig::gpt2_0_34b(),
            MachineConfig::smart_infinity(2),
            Method::SmartUpdate,
        )
        .with_threads(threads)
        .build()
        .trainer(&initial)
        .expect("trainer");
        let report = trainer.step(&grads).expect("step");
        assert_eq!(report.threads, threads.max(1));
        trainer.master_params().expect("params")
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        assert_eq!(run(threads).as_slice(), serial.as_slice(), "threads={threads}");
    }
}

/// Every substrate error converts into `TrainError` and the `source()` chain
/// walks back to the layer that actually failed.
#[test]
fn train_error_conversions_and_source_round_trips() {
    // ssd -> TrainError
    let ssd = SsdError::UnknownRegion { device: "ssd0".into(), region: "grad".into() };
    let e: TrainError = ssd.clone().into();
    assert!(e.to_string().contains("storage error"));
    assert_eq!(e.source().and_then(|s| s.downcast_ref::<SsdError>()), Some(&ssd));

    // csd (wrapping ssd) -> TrainError: a two-hop chain.
    let e: TrainError = CsdError::from(ssd.clone()).into();
    let csd_layer = e.source().expect("device layer");
    assert!(csd_layer.downcast_ref::<CsdError>().is_some());
    let ssd_layer = csd_layer.source().expect("storage layer");
    assert_eq!(ssd_layer.downcast_ref::<SsdError>(), Some(&ssd));
    assert!(ssd_layer.source().is_none());

    // simkit -> TrainError
    let sim = SimError::InvalidParameter { message: "negative bytes".into() };
    let e: TrainError = sim.clone().into();
    assert!(e.to_string().contains("simulation error"));
    assert_eq!(e.source().and_then(|s| s.downcast_ref::<SimError>()), Some(&sim));

    // Config errors originate at the unified layer and have no source.
    let e = session(Method::SmartComp { keep_ratio: 2.0 }, 2)
        .trainer(&FlatTensor::zeros(16))
        .expect_err("invalid keep ratio");
    assert!(matches!(e, TrainError::Config { .. }));
    assert!(e.source().is_none());
}

/// The `?` operator really crosses the layer boundaries: one function body
/// mixes functional-storage and timed-simulation fallible calls.
#[test]
fn question_mark_spans_the_functional_and_timed_stacks() {
    fn both_views() -> Result<(f64, u64), TrainError> {
        let s = Session::builder(
            ModelConfig::gpt2_0_34b(),
            MachineConfig::smart_infinity(2),
            Method::SmartUpdate,
        )
        .build();
        let timed = s.simulate_iteration()?; // SimError -> TrainError
        let initial = FlatTensor::randn(512, 0.05, 3);
        let mut trainer = s.trainer(&initial)?; // CsdError -> TrainError
        let report = trainer.step(&FlatTensor::randn(512, 0.01, 4))?;
        Ok((timed.total_s(), report.gradient_bytes))
    }
    let (total_s, gradient_bytes) = both_views().expect("both views");
    assert!(total_s > 0.0);
    assert_eq!(gradient_bytes, 4 * 512);
}

/// `step_from` (the GradientSource entry point on the trait) matches `step`
/// fed with the same synthetic stream.
#[test]
fn step_from_equals_step_with_explicit_gradients() {
    let n = 2_000;
    let initial = FlatTensor::randn(n, 0.05, 31);
    let mut via_source = session(Method::Baseline, 2).trainer(&initial).expect("trainer");
    let mut via_grads = session(Method::Baseline, 2).trainer(&initial).expect("trainer");
    let mut source = SyntheticGradients::new(n, 0.01, 77);
    let mut mirror = SyntheticGradients::new(n, 0.01, 77);
    use ztrain::GradientSource;
    for step in 1..=3u64 {
        via_source.step_from(&mut source).expect("step");
        let grads = mirror.gradients(step, via_grads.params_fp16());
        via_grads.step(&grads).expect("step");
    }
    assert_eq!(via_source.params_fp16().as_slice(), via_grads.params_fp16().as_slice());
}
