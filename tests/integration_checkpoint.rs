//! Checkpoint/restore integration tests through the [`Trainer`] seam and the
//! resumable [`Campaign`] runner:
//!
//! * checkpoint → JSON → restore → continue is bit-identical to an
//!   uninterrupted run for every checkpointable trainer, including the
//!   error-feedback residual state of the compression pipeline;
//! * a checkpoint taken mid-run under fault injection still resumes to the
//!   same final parameters (recovery is numerically invisible);
//! * a campaign halted mid-flight and resumed from its serialized checkpoint
//!   reports bit-identically to one uninterrupted run.

use parcore::ParExecutor;
use smart_infinity::{
    Campaign, CampaignProgress, FaultSpec, MachineConfig, MachineSpec, Method, MethodSpec,
    ModelConfig, ModelSpec, RunSpec, Session, SessionBuilder, TrainerCheckpoint,
};
use tensorlib::FlatTensor;

const N: usize = 2000;

fn builder(method: impl Into<MethodSpec>, devices: usize) -> SessionBuilder {
    Session::builder(ModelConfig::gpt2_0_34b(), MachineConfig::smart_infinity(devices), method)
        .with_threads(2)
        .with_subgroup_elems(400)
}

/// Every checkpointable execution mode: checkpoint after 2 of 5 steps, push
/// the state through its JSON wire format into a *fresh* trainer, finish the
/// remaining 3 steps, and compare against the uninterrupted 5-step run.
#[test]
fn checkpoint_roundtrip_resumes_bit_identically_in_every_mode() {
    let initial = FlatTensor::randn(N, 0.05, 31);
    let grads: Vec<FlatTensor> = (0..5).map(|s| FlatTensor::randn(N, 0.01, 40 + s)).collect();

    let modes: Vec<(MethodSpec, bool)> = vec![
        (MethodSpec::from(Method::Baseline), false),
        (MethodSpec::from(Method::SmartUpdate), false),
        (MethodSpec::from(Method::SmartComp { keep_ratio: 0.1 }), true),
        (MethodSpec::pipelined(None), false),
        (MethodSpec::pipelined(Some(0.1)), true),
    ];
    for (method, compressed) in modes {
        let label = method.to_string();

        let mut straight = builder(method, 3).build().trainer(&initial).unwrap();
        for g in &grads {
            straight.step(g).unwrap();
        }

        let mut first = builder(method, 3).build().trainer(&initial).unwrap();
        for g in &grads[..2] {
            first.step(g).unwrap();
        }
        let checkpoint = first.checkpoint().unwrap();
        assert_eq!(checkpoint.step, 2, "{label}");
        assert_eq!(
            !checkpoint.residual_bits.is_empty(),
            compressed,
            "{label}: compression implies serialized error-feedback residuals"
        );
        drop(first);

        // Through the wire format, into a trainer that never saw steps 0-1.
        let json = checkpoint.to_json().unwrap();
        let restored_ckpt = TrainerCheckpoint::from_json(&json).unwrap();
        assert_eq!(restored_ckpt, checkpoint, "{label}");
        let mut resumed = builder(method, 3).build().trainer(&initial).unwrap();
        resumed.restore(&restored_ckpt).unwrap();
        assert_eq!(resumed.steps_completed(), 2, "{label}");
        for g in &grads[2..] {
            resumed.step(g).unwrap();
        }

        assert_eq!(
            straight.master_params().unwrap().as_slice(),
            resumed.master_params().unwrap().as_slice(),
            "{label}: master params diverged after restore"
        );
        assert_eq!(
            straight.params_fp16().as_slice(),
            resumed.params_fp16().as_slice(),
            "{label}: fp16 working copy diverged after restore"
        );
        assert_eq!(straight.steps_completed(), resumed.steps_completed(), "{label}");
    }
}

/// Checkpoints taken while fault injection is live are maintenance traffic:
/// they must succeed despite transient faults, and the resumed run still
/// converges to the same parameters as the uninterrupted faulted run.
#[test]
fn checkpoint_restore_under_fault_injection_matches_the_straight_run() {
    let initial = FlatTensor::randn(N, 0.05, 51);
    let grads: Vec<FlatTensor> = (0..4).map(|s| FlatTensor::randn(N, 0.01, 60 + s)).collect();
    let mut faults = FaultSpec::empty(13);
    faults.transient_per_mille = Some(250);

    let session = || builder(MethodSpec::pipelined(Some(0.1)), 3).with_faults(faults.clone());

    let mut straight = session().build().trainer(&initial).unwrap();
    for g in &grads {
        straight.step(g).unwrap();
    }

    let mut first = session().build().trainer(&initial).unwrap();
    let mut fired = false;
    for g in &grads[..2] {
        fired |= first.step(g).unwrap().degraded.is_some();
    }
    assert!(fired, "a 25% transient rate must fire within 2 steps");
    let checkpoint = first.checkpoint().unwrap();
    let mut resumed = session().build().trainer(&initial).unwrap();
    resumed.restore(&checkpoint).unwrap();
    for g in &grads[2..] {
        resumed.step(g).unwrap();
    }

    // The resumed trainer replays a fresh fault schedule, so its telemetry
    // may differ — but recovery is numerically invisible, so the parameters
    // may not.
    assert_eq!(
        straight.master_params().unwrap().as_slice(),
        resumed.master_params().unwrap().as_slice()
    );
    assert_eq!(straight.params_fp16().as_slice(), resumed.params_fp16().as_slice());
}

/// A campaign killed mid-flight resumes from its serialized checkpoint and
/// finishes with a report bit-identical to one uninterrupted run — the
/// headless kill/resume flow CI drives through the `figures` binary.
#[test]
fn halted_campaign_resumes_bit_identically_through_json() {
    let mut faults = FaultSpec::empty(3);
    faults.straggler_factor = Some(2.0);
    let specs: Vec<RunSpec> = [
        MethodSpec::baseline(),
        MethodSpec::from(Method::SmartUpdate),
        MethodSpec::from(Method::SmartComp { keep_ratio: 0.01 }),
    ]
    .into_iter()
    .map(|method| {
        let mut spec =
            RunSpec::new(ModelSpec::preset("GPT2-0.34B"), MachineSpec::devices(4), method);
        spec.faults = Some(faults.clone());
        spec
    })
    .collect();
    let campaign = Campaign::new(specs).with_name("kill-resume");
    let pool = ParExecutor::serial();

    let straight = campaign.run_on(&pool).unwrap();

    let halted = match campaign.run_resumable(&pool, None, Some(1)).unwrap() {
        CampaignProgress::Halted(ckpt) => ckpt,
        CampaignProgress::Complete(_) => panic!("halt_after=1 of 3 must halt"),
    };
    assert_eq!(halted.completed.len(), 1);

    // Kill the process: all that survives is the serialized checkpoint.
    let json = serde_json::to_string(&halted).unwrap();
    let revived = serde_json::from_str(&json).unwrap();
    let finished = match campaign.run_resumable(&pool, Some(revived), None).unwrap() {
        CampaignProgress::Complete(report) => report,
        CampaignProgress::Halted(_) => panic!("no halt limit on the resume leg"),
    };
    assert_eq!(finished.runs, straight.runs);
}
