//! Workspace-wiring smoke test: the crate graph assembles end to end.
//!
//! This suite is intentionally tiny — it exists so that a broken manifest,
//! a broken re-export or a broken platform constructor fails fast with an
//! obvious message, before the heavier integration suites run.

use llm::{ModelConfig, Workload};
use optim::OptimizerKind;
use ztrain::{BaselineEngine, MachineConfig, TimedPlatform};

/// A `TimedPlatform` can be built from a preset machine and driven directly:
/// one flow into storage, one update on the device, a finite makespan.
#[test]
fn timed_platform_builds_and_runs_one_round_trip() {
    let machine = MachineConfig::smart_infinity(2);
    let mut platform = TimedPlatform::new(&machine);
    assert_eq!(platform.num_devices(), 2);
    assert_eq!(platform.num_gpus(), 1);

    let phase = platform.add_phase("smoke");
    let offload = platform.host_to_ssd(0, 1e9, &[], phase);
    let update = platform.fpga_update(0, 1e9, &[offload], phase);
    let timeline = platform.run().expect("smoke simulation");
    let makespan = timeline.makespan();
    assert!(makespan.is_finite() && makespan > 0.0, "makespan {makespan}");
    assert!(timeline.finish_time(update) <= makespan + 1e-12);
    assert!(timeline.finish_time(offload) < timeline.finish_time(update));
}

/// One baseline iteration through the public engine API produces a finite,
/// internally consistent phase breakdown.
#[test]
fn baseline_iteration_has_a_finite_makespan() {
    let report = BaselineEngine::new(
        MachineConfig::baseline_raid0(2),
        Workload::paper_default(ModelConfig::gpt2_0_34b()),
        OptimizerKind::Adam,
    )
    .simulate_iteration()
    .expect("baseline simulation");
    assert!(report.total_s().is_finite() && report.total_s() > 0.0);
    assert!(report.forward_s > 0.0 && report.backward_s > 0.0 && report.update_s > 0.0);
    let sum = report.forward_s + report.backward_s + report.update_s;
    assert!((sum - report.total_s()).abs() < 1e-6 * sum.max(1.0));
}

/// The `smart_infinity` crate re-exports the workspace's user-facing types
/// from their canonical home crates (one home per type, re-exported by path).
#[test]
fn canonical_reexports_point_at_the_home_crates() {
    // If any of these stopped being re-exports of the same type, the
    // assignments below would fail to compile.
    let gpu: smart_infinity::GpuSpec = llm::GpuSpec::a5000();
    let hp: smart_infinity::HyperParams = optim::HyperParams::default();
    let machine: smart_infinity::MachineConfig = ztrain::MachineConfig::smart_infinity(2);
    let err: smart_infinity::TrainError = ztrain::TrainError::config("same type");
    let report: smart_infinity::StepReport = ztrain::StepReport::default();
    assert!(gpu.effective_flops > 0.0);
    assert!(hp.lr > 0.0);
    assert_eq!(machine.num_devices, 2);
    assert!(err.to_string().contains("same type"));
    assert_eq!(report.step, 0);
}

/// The Session front door assembles end to end: one `Method` produces both a
/// timed iteration report and a live functional trainer.
#[test]
fn session_builds_both_views_from_one_method() {
    use smart_infinity::{FlatTensor, Method, Session, Trainer};
    let session = Session::builder(
        llm::ModelConfig::gpt2_0_34b(),
        MachineConfig::smart_infinity(2),
        Method::SmartUpdate,
    )
    .build();
    let timed = session.simulate_iteration().expect("timed view");
    assert!(timed.total_s() > 0.0);
    let initial = FlatTensor::randn(256, 0.02, 1);
    let mut trainer: Box<dyn Trainer> = session.trainer(&initial).expect("functional view");
    let report = trainer.step(&FlatTensor::randn(256, 0.01, 2)).expect("step");
    assert_eq!(report.step, 1);
    assert_eq!(trainer.num_params(), 256);
}
