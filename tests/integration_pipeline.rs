//! Integration suite of the pipelined fabric execution backend: the pipeline
//! is bit-identical to the serial Smart-Infinity trainer for every device and
//! thread count (property-tested), its `StepReport` carries per-stage overlap
//! telemetry, the timed view charges stage bytes over the fabric links, and
//! the hardening sweep's error paths (compression representation errors,
//! session knob validation, exact sampled Top-K) hold end to end.

use gradcomp::{CompressError, CompressedGradient, Compressor};
use optim::{HyperParams, Optimizer, OptimizerKind};
use proptest::prelude::*;
use smart_infinity::{
    FlatTensor, MachineConfig, Method, ModelConfig, Session, SmartInfinityEngine,
    SmartInfinityTrainer, TrainError,
};
use std::error::Error;
use ztrain::{PipelinedTrainer, SyntheticGradients};

fn pipelined_session(devices: usize, threads: usize, keep_ratio: Option<f64>) -> Session {
    Session::builder(
        ModelConfig::gpt2_0_34b(),
        MachineConfig::smart_infinity(devices),
        Method::SmartInfinityPipelined { keep_ratio },
    )
    .with_threads(threads)
    .build()
}

/// The acceptance criterion: a `Session` with `Method::SmartInfinityPipelined`
/// produces parameters bit-identical to the serial Smart-Infinity trainer,
/// while the step reports carry per-stage overlap telemetry.
#[test]
fn pipelined_session_is_bit_identical_to_the_serial_trainer() {
    let n = 10_000;
    let steps = 4u64;
    let initial = FlatTensor::randn(n, 0.05, 42);
    for keep_ratio in [None, Some(0.02)] {
        let mut serial =
            SmartInfinityTrainer::new(&initial, Optimizer::adam_default(), 3, 1200).unwrap();
        if let Some(k) = keep_ratio {
            serial = serial.with_compression(k);
        }
        let mut pipelined = pipelined_session(3, 4, keep_ratio).trainer(&initial).expect("trainer");
        let mut src_a = SyntheticGradients::new(n, 0.01, 300);
        let mut src_b = SyntheticGradients::new(n, 0.01, 300);
        let mut last = ztrain::StepReport::default();
        for _ in 0..steps {
            serial.train_step(&mut src_a).unwrap();
            last = pipelined.step_from(&mut src_b).unwrap();
        }
        assert_eq!(
            serial.master_params().unwrap().as_slice(),
            pipelined.master_params().unwrap().as_slice(),
            "keep_ratio={keep_ratio:?}"
        );
        assert_eq!(serial.params_fp16().as_slice(), pipelined.params_fp16().as_slice());
        assert_eq!(pipelined.steps_completed(), steps);

        // Per-stage overlap telemetry: write/update/read-back bytes are split
        // out and consistent with the flat counters.
        let stages = last.stages.expect("pipelined backend reports stages");
        assert!(last.is_pipelined());
        assert!(stages.is_overlapped(), "4 threads over 3 lanes must overlap");
        assert_eq!(stages.lanes, 3);
        assert_eq!(stages.write_bytes, last.gradient_bytes);
        assert_eq!(stages.update_bytes, last.storage_bytes_total());
        assert_eq!(stages.read_back_bytes, 2 * n as u64);
        match keep_ratio {
            None => assert_eq!(stages.write_bytes, 4 * n as u64),
            Some(_) => {
                let kept = last.compression_kept.expect("keep count");
                assert_eq!(stages.write_bytes, 8 * kept);
            }
        }
    }
}

/// The timed view of the pipelined method charges each stage's bytes over the
/// installed fabric links: the update stage overlaps the backward offload and
/// the shared uplink shows stage-level occupancy in both directions.
#[test]
fn timed_pipeline_charges_stage_bytes_over_fabric_links() {
    let machine = MachineConfig::smart_infinity(6);
    let workload = smart_infinity::Workload::paper_default(ModelConfig::gpt2_4b());
    let serial = SmartInfinityEngine::new(machine.clone(), workload.clone(), OptimizerKind::Adam)
        .simulate_iteration_stages()
        .unwrap();
    let pipelined = SmartInfinityEngine::new(machine, workload, OptimizerKind::Adam)
        .with_pipelining()
        .simulate_iteration_stages()
        .unwrap();
    assert_eq!(serial.update_overlap_s, 0.0, "serial schedule has no overlap");
    assert!(pipelined.update_overlap_s > 0.0, "pipelined schedule overlaps: {pipelined:?}");
    assert!(pipelined.report.total_s() < serial.report.total_s());
    // Both directions of the shared uplink saw stage traffic.
    assert!(pipelined.uplink_write_busy_s > 0.0);
    assert!(pipelined.uplink_readback_busy_s > 0.0);
    // The session front door reaches the same timed path (different model,
    // so only a sanity bound here).
    let via_session = pipelined_session(6, 1, None).simulate_iteration().unwrap();
    assert!(via_session.total_s() > 0.0);
}

/// Compression representation errors surface as values through the whole
/// `CompressError` → `CsdError` → `TrainError` chain instead of aborting.
#[test]
fn oversized_compression_errors_chain_to_train_error() {
    let compressor = Compressor::top_k(0.01);
    // The guard itself (no 16 GiB allocation needed to test the chain).
    let e = CompressedGradient::try_new(vec![], vec![], u32::MAX as usize + 1).unwrap_err();
    assert_eq!(e, CompressError::IndexSpaceExceeded { original_len: u32::MAX as usize + 1 });
    let train: TrainError = e.into();
    assert!(matches!(train, TrainError::Device(_)), "{train}");
    let device = train.source().expect("device layer");
    let origin = device.source().expect("compression layer");
    assert!(origin.downcast_ref::<CompressError>().is_some());
    // Normal-sized gradients take the fallible path without loss.
    let grads = FlatTensor::randn(4096, 0.01, 5);
    assert_eq!(compressor.try_compress(&grads).unwrap(), compressor.compress(&grads));
}

/// The session rejects the degenerate knobs of the hardening sweep as
/// `TrainError::Config` for the pipelined method too.
#[test]
fn pipelined_session_validates_degenerate_knobs() {
    let s = pipelined_session(3, 2, None);
    let err = s.trainer(&FlatTensor::zeros(2)).expect_err("fewer params than devices");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");
    let s = Session::builder(
        ModelConfig::gpt2_0_34b(),
        MachineConfig::smart_infinity(2),
        Method::SmartInfinityPipelined { keep_ratio: None },
    )
    .with_subgroup_elems(0)
    .build();
    let err = s.trainer(&FlatTensor::zeros(64)).expect_err("zero subgroup capacity");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");
    let err = s.simulate_iteration().expect_err("zero subgroup capacity");
    assert!(matches!(err, TrainError::Config { .. }), "{err}");
}

proptest! {
    /// Property: the pipelined backend is bit-identical to the serial
    /// Smart-Infinity trainer across device counts (1/2/7), thread counts,
    /// subgroup capacities and compression settings.
    #[test]
    fn pipeline_equals_serial_bit_for_bit(
        seed in 0u64..1_000,
        devices_idx in 0usize..3,
        threads in 1usize..5,
        subgroup in 64usize..800,
        compress in proptest::bool::ANY,
    ) {
        let devices = [1usize, 2, 7][devices_idx];
        let n = 2_003; // prime: ragged shards and subgroups
        let optimizer = Optimizer::new(OptimizerKind::Adam, HyperParams::default());
        let initial = FlatTensor::randn(n, 0.05, seed);

        let mut serial = SmartInfinityTrainer::new(&initial, optimizer, devices, subgroup).unwrap();
        let mut pipelined = PipelinedTrainer::new(&initial, optimizer, devices, subgroup).unwrap();
        if compress {
            serial = serial.with_compression(0.05);
            pipelined = pipelined.with_compression(0.05).unwrap();
        }
        pipelined = pipelined.with_threads(threads);

        let mut src_a = SyntheticGradients::new(n, 0.01, seed.wrapping_add(77));
        let mut src_b = SyntheticGradients::new(n, 0.01, seed.wrapping_add(77));
        for _ in 0..2 {
            let a = serial.train_step(&mut src_a).unwrap();
            let b = ztrain::Trainer::step_from(&mut pipelined, &mut src_b).unwrap();
            // Identical interconnect and storage accounting per step.
            prop_assert_eq!(a.gradient_bytes, b.gradient_bytes);
            prop_assert_eq!(a.storage_bytes_read, b.storage_bytes_read);
            prop_assert_eq!(a.storage_bytes_written, b.storage_bytes_written);
            prop_assert_eq!(a.compression_kept, b.compression_kept);
        }
        let serial_master = serial.master_params().unwrap();
        let pipelined_master = pipelined.master_params().unwrap();
        prop_assert_eq!(serial_master.as_slice(), pipelined_master.as_slice());
        prop_assert_eq!(serial.params_fp16().as_slice(), pipelined.params_fp16().as_slice());
    }

    /// Property: the fixed sampled Top-K tail keeps exactly `k` elements and
    /// matches the exact selection even on adversarial (tie-heavy, spiked)
    /// magnitude distributions.
    #[test]
    fn sampled_top_k_tail_is_exact(
        base in proptest::collection::vec(-2.0f32..2.0, 50..400),
        spikes in proptest::collection::vec(0usize..400, 0..8),
        ratio in 0.01f64..0.5,
        sample_size in 1usize..128,
    ) {
        // Quantise for ties, then plant large-magnitude spikes anywhere —
        // including past where the old early-exit stopped scanning.
        let mut values: Vec<f32> = base.iter().map(|v| (v * 8.0).round() / 8.0).collect();
        let n = values.len();
        for (j, s) in spikes.iter().enumerate() {
            values[s % n] = 50.0 + j as f32;
        }
        let grads = FlatTensor::from_vec(values);
        let accelerated = Compressor::threshold_top_k(ratio, sample_size).compress(&grads);
        let exact = Compressor::top_k(ratio).compress(&grads);
        prop_assert_eq!(accelerated.num_selected(), Compressor::top_k(ratio).num_kept(n));
        prop_assert_eq!(accelerated, exact);
    }
}
