//! Gradient selection strategies: exact Top-K, threshold-estimated Top-K and
//! Random-K.

use crate::compressed::CompressedGradient;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// How the kept coordinates are selected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// Exact Top-K by magnitude (full sort / selection). This is what the
    /// paper's GPU-side compressor does (Section IV-C).
    TopK,
    /// Top-K with a magnitude threshold estimated from a strided sample.
    /// Cheaper than the exact selection, used as an ablation of the GPU-side
    /// cost; the number of kept elements can deviate slightly from the target.
    ThresholdTopK {
        /// Number of elements sampled to estimate the threshold.
        sample_size: usize,
    },
    /// Uniformly random selection with a deterministic seed (baseline from the
    /// sparsification literature; much worse for accuracy at the same ratio).
    RandomK {
        /// Seed for the deterministic pseudo-random selection.
        seed: u64,
    },
}

/// A gradient compressor: a selection method plus the fraction of elements kept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Compressor {
    keep_ratio: f64,
    method: SelectionMethod,
}

impl Compressor {
    /// Exact Top-K keeping `keep_ratio` of the elements (e.g. `0.01` keeps the
    /// top 1% by magnitude, which the paper reports as "2% compression"
    /// because every kept element carries an index and a value).
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn top_k(keep_ratio: f64) -> Self {
        Self::new(keep_ratio, SelectionMethod::TopK)
    }

    /// Threshold-estimating Top-K (see [`SelectionMethod::ThresholdTopK`]).
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]` or `sample_size` is zero.
    pub fn threshold_top_k(keep_ratio: f64, sample_size: usize) -> Self {
        assert!(sample_size > 0, "sample size must be positive");
        Self::new(keep_ratio, SelectionMethod::ThresholdTopK { sample_size })
    }

    /// Random-K selection with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn random_k(keep_ratio: f64, seed: u64) -> Self {
        Self::new(keep_ratio, SelectionMethod::RandomK { seed })
    }

    /// Creates a compressor with an explicit method.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn new(keep_ratio: f64, method: SelectionMethod) -> Self {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep ratio must be in (0, 1], got {keep_ratio}"
        );
        Self { keep_ratio, method }
    }

    /// Fraction of elements kept.
    pub fn keep_ratio(&self) -> f64 {
        self.keep_ratio
    }

    /// The selection method.
    pub fn method(&self) -> SelectionMethod {
        self.method
    }

    /// Fraction of the dense volume actually transferred (index + value per
    /// kept element → twice the keep ratio, capped at 1).
    pub fn transfer_ratio(&self) -> f64 {
        (2.0 * self.keep_ratio).min(1.0)
    }

    /// Number of elements kept for a gradient of length `n` (at least 1 for a
    /// non-empty gradient).
    pub fn num_kept(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((n as f64 * self.keep_ratio).round() as usize).clamp(1, n)
        }
    }

    /// Compresses a dense gradient.
    pub fn compress(&self, grads: &FlatTensor) -> CompressedGradient {
        let n = grads.len();
        let k = self.num_kept(n);
        if n == 0 {
            return CompressedGradient::default();
        }
        let selected: Vec<u32> = match self.method {
            SelectionMethod::TopK => exact_top_k(grads.as_slice(), k),
            SelectionMethod::ThresholdTopK { sample_size } => {
                threshold_top_k(grads.as_slice(), k, sample_size)
            }
            SelectionMethod::RandomK { seed } => random_k(n, k, seed),
        };
        let values = selected.iter().map(|&i| grads.as_slice()[i as usize]).collect();
        CompressedGradient::new(selected, values, n)
    }
}

/// Exact Top-K selection by magnitude; ties broken by index for determinism.
fn exact_top_k(grads: &[f32], k: usize) -> Vec<u32> {
    let mut indices: Vec<u32> = (0..grads.len() as u32).collect();
    // Partial selection: the k largest magnitudes first.
    indices.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
        let ma = grads[a as usize].abs();
        let mb = grads[b as usize].abs();
        mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut top: Vec<u32> = indices[..k].to_vec();
    top.sort_unstable();
    top
}

/// Threshold-based approximate Top-K: estimate the k-th magnitude from a
/// strided sample, then take everything above the threshold (capped at k).
fn threshold_top_k(grads: &[f32], k: usize, sample_size: usize) -> Vec<u32> {
    let n = grads.len();
    let stride = (n / sample_size.min(n)).max(1);
    let mut sample: Vec<f32> = grads.iter().step_by(stride).map(|v| v.abs()).collect();
    sample.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let target_rank = ((k as f64 / n as f64) * sample.len() as f64).round() as usize;
    let threshold = sample[target_rank.min(sample.len() - 1)];
    let mut selected: Vec<u32> = Vec::with_capacity(k * 2);
    for (i, v) in grads.iter().enumerate() {
        if v.abs() >= threshold {
            selected.push(i as u32);
            if selected.len() >= k.saturating_mul(2).max(16) {
                break; // never allow the estimate to blow up the transfer
            }
        }
    }
    if selected.is_empty() {
        selected = exact_top_k(grads, k.min(n));
    }
    selected
}

/// Deterministic pseudo-random selection of k distinct indices.
fn random_k(n: usize, k: usize, seed: u64) -> Vec<u32> {
    // SplitMix64-based index shuffle: pick k distinct pseudo-random positions.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert((next() % n as u64) as u32);
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn top_k_keeps_the_largest_magnitudes() {
        let grads = FlatTensor::from_vec(vec![0.1, -5.0, 0.2, 3.0, -0.05, 4.0]);
        let c = Compressor::top_k(0.5).compress(&grads);
        assert_eq!(c.indices(), &[1, 3, 5]);
        assert_eq!(c.values(), &[-5.0, 3.0, 4.0]);
    }

    #[test]
    fn keep_ratio_of_one_keeps_everything() {
        let grads = FlatTensor::from_vec(vec![1.0, 2.0, 3.0]);
        let c = Compressor::top_k(1.0).compress(&grads);
        assert_eq!(c.num_selected(), 3);
        assert_eq!(c.decompress(), grads);
        assert_eq!(Compressor::top_k(1.0).transfer_ratio(), 1.0);
    }

    #[test]
    fn at_least_one_element_is_always_kept() {
        let grads = FlatTensor::from_vec(vec![1.0, 2.0, 3.0]);
        let c = Compressor::top_k(0.0001).compress(&grads);
        assert_eq!(c.num_selected(), 1);
        assert_eq!(c.indices(), &[2]);
    }

    #[test]
    fn default_paper_ratio_transfers_two_percent() {
        let c = Compressor::top_k(0.01);
        assert!((c.transfer_ratio() - 0.02).abs() < 1e-12);
        assert_eq!(c.num_kept(10_000), 100);
        assert_eq!(c.keep_ratio(), 0.01);
        assert_eq!(c.method(), SelectionMethod::TopK);
    }

    #[test]
    fn empty_gradient_compresses_to_empty() {
        let c = Compressor::top_k(0.1).compress(&FlatTensor::zeros(0));
        assert_eq!(c.num_selected(), 0);
        assert_eq!(Compressor::top_k(0.1).num_kept(0), 0);
    }

    #[test]
    fn random_k_is_deterministic_and_distinct() {
        let grads = FlatTensor::randn(1000, 1.0, 7);
        let a = Compressor::random_k(0.1, 99).compress(&grads);
        let b = Compressor::random_k(0.1, 99).compress(&grads);
        let c = Compressor::random_k(0.1, 100).compress(&grads);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_selected(), 100);
        let mut sorted = a.indices().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "indices must be distinct");
    }

    #[test]
    fn threshold_top_k_approximates_exact_selection() {
        let grads = FlatTensor::randn(10_000, 1.0, 3);
        let exact = Compressor::top_k(0.01).compress(&grads);
        let approx = Compressor::threshold_top_k(0.01, 512).compress(&grads);
        // The approximate selection keeps a similar number of elements...
        let ratio = approx.num_selected() as f64 / exact.num_selected() as f64;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
        // ...and its smallest kept magnitude is not far below the exact threshold.
        let exact_min = exact.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        let approx_min = approx.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        assert!(approx_min >= exact_min * 0.5, "{approx_min} vs {exact_min}");
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn zero_ratio_panics() {
        Compressor::top_k(0.0);
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn ratio_above_one_panics() {
        Compressor::top_k(1.5);
    }

    proptest! {
        /// Top-K selection keeps exactly k elements and every kept magnitude is
        /// at least as large as every dropped magnitude.
        #[test]
        fn top_k_is_a_valid_selection(
            values in proptest::collection::vec(-100.0f32..100.0, 1..300),
            ratio in 0.01f64..1.0,
        ) {
            let grads = FlatTensor::from_vec(values.clone());
            let compressor = Compressor::top_k(ratio);
            let c = compressor.compress(&grads);
            prop_assert_eq!(c.num_selected(), compressor.num_kept(values.len()));
            let kept: std::collections::HashSet<u32> = c.indices().iter().copied().collect();
            let min_kept = c.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
            for (i, v) in values.iter().enumerate() {
                if !kept.contains(&(i as u32)) {
                    prop_assert!(v.abs() <= min_kept + 1e-6);
                }
            }
        }

        /// Decompressed Top-K error is never larger than dropping everything.
        #[test]
        fn top_k_reduces_error_vs_zero(
            values in proptest::collection::vec(-10.0f32..10.0, 2..200),
        ) {
            let grads = FlatTensor::from_vec(values);
            let c = Compressor::top_k(0.25).compress(&grads);
            let approx = c.decompress();
            let err = approx.mse(&grads);
            let zero_err = FlatTensor::zeros(grads.len()).mse(&grads);
            prop_assert!(err <= zero_err + 1e-12);
        }
    }
}
