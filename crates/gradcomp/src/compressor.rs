//! Gradient selection strategies: exact Top-K, threshold-accelerated Top-K
//! and Random-K, each with a shard-parallel exact Top-K variant that is
//! bit-identical to the serial selection.

use crate::compressed::{CompressError, CompressedGradient};
use parcore::ParExecutor;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// How the kept coordinates are selected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// Exact Top-K by magnitude (full sort / selection). This is what the
    /// paper's GPU-side compressor does (Section IV-C).
    TopK,
    /// Exact Top-K accelerated by a magnitude threshold estimated from a
    /// strided sample: the estimate prunes the candidate set before the final
    /// selection, so the result keeps **exactly `k` elements and is
    /// bit-identical to [`SelectionMethod::TopK`]** — a mis-estimated
    /// threshold only costs an extra pass, never a wrong selection.
    ThresholdTopK {
        /// Number of elements sampled to estimate the threshold.
        sample_size: usize,
    },
    /// Uniformly random selection with a deterministic seed (baseline from the
    /// sparsification literature; much worse for accuracy at the same ratio).
    RandomK {
        /// Seed for the deterministic pseudo-random selection.
        seed: u64,
    },
}

/// Whether `keep_ratio` is a valid Top-K keep fraction: in `(0, 1]` (NaN is
/// rejected). This is the single source of truth for the validity rule —
/// [`Compressor::new`] panics on it, and front-ends that prefer an error over
/// a panic (e.g. `smart_infinity::Session`) check it before constructing a
/// compressor.
pub fn valid_keep_ratio(keep_ratio: f64) -> bool {
    keep_ratio > 0.0 && keep_ratio <= 1.0
}

/// A gradient compressor: a selection method plus the fraction of elements kept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Compressor {
    keep_ratio: f64,
    method: SelectionMethod,
}

impl Compressor {
    /// Exact Top-K keeping `keep_ratio` of the elements (e.g. `0.01` keeps the
    /// top 1% by magnitude, which the paper reports as "2% compression"
    /// because every kept element carries an index and a value).
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn top_k(keep_ratio: f64) -> Self {
        Self::new(keep_ratio, SelectionMethod::TopK)
    }

    /// Threshold-estimating Top-K (see [`SelectionMethod::ThresholdTopK`]).
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]` or `sample_size` is zero.
    pub fn threshold_top_k(keep_ratio: f64, sample_size: usize) -> Self {
        assert!(sample_size > 0, "sample size must be positive");
        Self::new(keep_ratio, SelectionMethod::ThresholdTopK { sample_size })
    }

    /// Random-K selection with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn random_k(keep_ratio: f64, seed: u64) -> Self {
        Self::new(keep_ratio, SelectionMethod::RandomK { seed })
    }

    /// Creates a compressor with an explicit method.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn new(keep_ratio: f64, method: SelectionMethod) -> Self {
        assert!(valid_keep_ratio(keep_ratio), "keep ratio must be in (0, 1], got {keep_ratio}");
        Self { keep_ratio, method }
    }

    /// Fraction of elements kept.
    pub fn keep_ratio(&self) -> f64 {
        self.keep_ratio
    }

    /// The selection method.
    pub fn method(&self) -> SelectionMethod {
        self.method
    }

    /// Fraction of the dense volume actually transferred (index + value per
    /// kept element → twice the keep ratio, capped at 1).
    pub fn transfer_ratio(&self) -> f64 {
        (2.0 * self.keep_ratio).min(1.0)
    }

    /// Number of elements kept for a gradient of length `n` (at least 1 for a
    /// non-empty gradient).
    pub fn num_kept(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((n as f64 * self.keep_ratio).round() as usize).clamp(1, n)
        }
    }

    /// Compresses a dense gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient is longer than `u32::MAX` elements (the index
    /// stream is u32 on the wire); [`Compressor::try_compress`] surfaces the
    /// same condition as an error.
    pub fn compress(&self, grads: &FlatTensor) -> CompressedGradient {
        self.compress_par_chunked(grads, &ParExecutor::serial(), 1)
    }

    /// Fallible [`Compressor::compress`]: oversized gradients error instead
    /// of aborting.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::IndexSpaceExceeded`] if the gradient is
    /// longer than `u32::MAX` elements.
    pub fn try_compress(&self, grads: &FlatTensor) -> Result<CompressedGradient, CompressError> {
        self.try_compress_par_chunked(grads, &ParExecutor::serial(), 1)
    }

    /// Compresses a dense gradient, running the exact Top-K selection in
    /// parallel on `pool` (one chunk per worker; gradients too small to
    /// amortise the thread spawns run inline, see
    /// [`ParExecutor::workers_for`]). Bit-identical to
    /// [`Compressor::compress`]; the threshold and random selections are
    /// sequential scans and run serially regardless of the executor.
    ///
    /// # Panics
    ///
    /// Panics if the gradient is longer than `u32::MAX` elements; see
    /// [`Compressor::try_compress_par`].
    pub fn compress_par(&self, grads: &FlatTensor, pool: &ParExecutor) -> CompressedGradient {
        self.compress_par_chunked(grads, pool, pool.workers_for(grads.len()))
    }

    /// Fallible [`Compressor::compress_par`].
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::IndexSpaceExceeded`] if the gradient is
    /// longer than `u32::MAX` elements.
    pub fn try_compress_par(
        &self,
        grads: &FlatTensor,
        pool: &ParExecutor,
    ) -> Result<CompressedGradient, CompressError> {
        self.try_compress_par_chunked(grads, pool, pool.workers_for(grads.len()))
    }

    /// Compresses with an explicit Top-K chunk count (independent of the
    /// executor's worker count). Bit-identical to [`Compressor::compress`]
    /// for every `(pool, num_chunks)` combination.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is zero or the gradient is longer than
    /// `u32::MAX` elements.
    pub fn compress_par_chunked(
        &self,
        grads: &FlatTensor,
        pool: &ParExecutor,
        num_chunks: usize,
    ) -> CompressedGradient {
        self.try_compress_par_chunked(grads, pool, num_chunks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Compressor::compress_par_chunked`]: the length guard runs
    /// *before* any index is narrowed to u32, so the selection can never
    /// silently truncate an offset on a >4-billion-element shard.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::IndexSpaceExceeded`] if the gradient is
    /// longer than `u32::MAX` elements.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is zero.
    pub fn try_compress_par_chunked(
        &self,
        grads: &FlatTensor,
        pool: &ParExecutor,
        num_chunks: usize,
    ) -> Result<CompressedGradient, CompressError> {
        assert!(num_chunks > 0, "chunk count must be positive");
        let n = grads.len();
        if n > u32::MAX as usize {
            return Err(CompressError::IndexSpaceExceeded { original_len: n });
        }
        let k = self.num_kept(n);
        if n == 0 {
            return Ok(CompressedGradient::default());
        }
        let selected: Vec<u32> = match self.method {
            SelectionMethod::TopK if num_chunks > 1 => {
                par_exact_top_k(grads.as_slice(), k, pool, num_chunks)
            }
            SelectionMethod::TopK => exact_top_k(grads.as_slice(), k),
            SelectionMethod::ThresholdTopK { sample_size } => {
                threshold_top_k(grads.as_slice(), k, sample_size)
            }
            SelectionMethod::RandomK { seed } => random_k(n, k, seed),
        };
        let values = selected.iter().map(|&i| grads.as_slice()[i as usize]).collect();
        CompressedGradient::try_new(selected, values, n)
    }
}

/// The total order used by every Top-K selection: descending magnitude,
/// ties broken by ascending index. `total_cmp` keeps the order total even
/// for NaN magnitudes (they sort above infinity, i.e. are selected first) —
/// a partial comparator would cycle on NaN-bearing gradients and make the
/// serial and parallel selections diverge. Under a total order the top-k
/// *set* is unique, which is what makes the parallel selection bit-identical.
fn magnitude_order(grads: &[f32], a: u32, b: u32) -> std::cmp::Ordering {
    let ma = grads[a as usize].abs();
    let mb = grads[b as usize].abs();
    mb.total_cmp(&ma).then(a.cmp(&b))
}

/// Exact Top-K selection by magnitude; ties broken by index for determinism.
fn exact_top_k(grads: &[f32], k: usize) -> Vec<u32> {
    let mut indices: Vec<u32> = (0..grads.len() as u32).collect();
    // Partial selection: the k largest magnitudes first.
    indices.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| magnitude_order(grads, a, b));
    let mut top: Vec<u32> = indices[..k].to_vec();
    top.sort_unstable();
    top
}

/// Shard-parallel exact Top-K: each chunk runs `select_nth_unstable` over its
/// own index range, then the per-chunk candidates are merged with one final
/// selection over at most `num_chunks · k` survivors.
///
/// Because [`magnitude_order`] is a total order, the global top-k set is
/// unique and every global winner necessarily wins within its own chunk, so
/// the merged result is **bit-identical** to [`exact_top_k`] for every chunk
/// count (the property tests assert this).
fn par_exact_top_k(grads: &[f32], k: usize, pool: &ParExecutor, num_chunks: usize) -> Vec<u32> {
    let ranges = parcore::chunk_bounds(grads.len(), num_chunks);
    let candidates: Vec<Vec<u32>> = pool.map(ranges, |_, range| {
        let mut local: Vec<u32> = (range.start as u32..range.end as u32).collect();
        if local.len() > k {
            local
                .select_nth_unstable_by(k.saturating_sub(1), |&a, &b| magnitude_order(grads, a, b));
            local.truncate(k);
        }
        local
    });
    let mut merged: Vec<u32> = candidates.into_iter().flatten().collect();
    if merged.len() > k {
        merged.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| magnitude_order(grads, a, b));
        merged.truncate(k);
    }
    merged.sort_unstable();
    merged
}

/// Threshold-accelerated exact Top-K: estimate the k-th magnitude from a
/// strided sample, collect every element at or above the estimate, and finish
/// with an exact selection over the (usually small) candidate set.
///
/// The previous version stopped scanning after `max(2k, 16)` accepted
/// elements and returned whatever had been collected, which over-selected
/// (up to 2k elements) and — worse — selected by *index* order rather than
/// magnitude on adversarial distributions: a too-low threshold estimate made
/// it keep the first 2k above-threshold coordinates and drop the true top
/// magnitudes sitting at higher indices, while a too-high estimate silently
/// under-selected. Both tails are now exact:
///
/// * If at least `k` candidates pass the estimate, the true top-k set passes
///   too (each of its magnitudes is ≥ the k-th largest ≥ the threshold), so
///   an exact selection *within the candidates* equals the global
///   [`exact_top_k`]. NaNs never compare below a threshold and are always
///   kept as candidates, matching their position in [`magnitude_order`].
/// * If fewer than `k` candidates pass (overestimated threshold), fall back
///   to the global exact selection.
///
/// Either way the result keeps exactly `k` elements and is bit-identical to
/// [`SelectionMethod::TopK`]; the sample only buys the cheap common case.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be a candidate, so !(x < t) is intended
fn threshold_top_k(grads: &[f32], k: usize, sample_size: usize) -> Vec<u32> {
    let n = grads.len();
    let stride = (n / sample_size.min(n)).max(1);
    let mut sample: Vec<f32> = grads.iter().step_by(stride).map(|v| v.abs()).collect();
    sample.sort_unstable_by(|a, b| b.total_cmp(a));
    let target_rank = ((k as f64 / n as f64) * sample.len() as f64).round() as usize;
    let threshold = sample[target_rank.min(sample.len() - 1)];
    let mut candidates: Vec<u32> = Vec::with_capacity(k.saturating_mul(2).max(16));
    // SIMD-accelerated `!(|v| < t)` scan; NaN magnitudes (and a NaN
    // threshold) land in the candidate set on every kernel path.
    crate::simd::filter_not_less(
        tensorlib::KernelPath::active(),
        grads,
        threshold,
        &mut candidates,
    );
    if candidates.len() < k {
        return exact_top_k(grads, k);
    }
    if candidates.len() > k {
        candidates.select_nth_unstable_by(k - 1, |&a, &b| magnitude_order(grads, a, b));
        candidates.truncate(k);
    }
    candidates.sort_unstable();
    candidates
}

/// Deterministic pseudo-random selection of k distinct indices.
fn random_k(n: usize, k: usize, seed: u64) -> Vec<u32> {
    // SplitMix64-based index shuffle: pick k distinct pseudo-random positions.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert((next() % n as u64) as u32);
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn top_k_keeps_the_largest_magnitudes() {
        let grads = FlatTensor::from_vec(vec![0.1, -5.0, 0.2, 3.0, -0.05, 4.0]);
        let c = Compressor::top_k(0.5).compress(&grads);
        assert_eq!(c.indices(), &[1, 3, 5]);
        assert_eq!(c.values(), &[-5.0, 3.0, 4.0]);
    }

    #[test]
    fn keep_ratio_of_one_keeps_everything() {
        let grads = FlatTensor::from_vec(vec![1.0, 2.0, 3.0]);
        let c = Compressor::top_k(1.0).compress(&grads);
        assert_eq!(c.num_selected(), 3);
        assert_eq!(c.decompress(), grads);
        assert_eq!(Compressor::top_k(1.0).transfer_ratio(), 1.0);
    }

    #[test]
    fn at_least_one_element_is_always_kept() {
        let grads = FlatTensor::from_vec(vec![1.0, 2.0, 3.0]);
        let c = Compressor::top_k(0.0001).compress(&grads);
        assert_eq!(c.num_selected(), 1);
        assert_eq!(c.indices(), &[2]);
    }

    #[test]
    fn default_paper_ratio_transfers_two_percent() {
        let c = Compressor::top_k(0.01);
        assert!((c.transfer_ratio() - 0.02).abs() < 1e-12);
        assert_eq!(c.num_kept(10_000), 100);
        assert_eq!(c.keep_ratio(), 0.01);
        assert_eq!(c.method(), SelectionMethod::TopK);
    }

    #[test]
    fn empty_gradient_compresses_to_empty() {
        let c = Compressor::top_k(0.1).compress(&FlatTensor::zeros(0));
        assert_eq!(c.num_selected(), 0);
        assert_eq!(Compressor::top_k(0.1).num_kept(0), 0);
    }

    #[test]
    fn random_k_is_deterministic_and_distinct() {
        let grads = FlatTensor::randn(1000, 1.0, 7);
        let a = Compressor::random_k(0.1, 99).compress(&grads);
        let b = Compressor::random_k(0.1, 99).compress(&grads);
        let c = Compressor::random_k(0.1, 100).compress(&grads);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_selected(), 100);
        let mut sorted = a.indices().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "indices must be distinct");
    }

    #[test]
    fn threshold_top_k_equals_exact_selection() {
        let grads = FlatTensor::randn(10_000, 1.0, 3);
        let exact = Compressor::top_k(0.01).compress(&grads);
        let accelerated = Compressor::threshold_top_k(0.01, 512).compress(&grads);
        assert_eq!(accelerated, exact);
    }

    #[test]
    fn threshold_top_k_is_exact_on_adversarial_magnitude_distributions() {
        // Adversarial for the old early-exit: the sample sees only the sea of
        // large-but-not-largest magnitudes at low indices, so the estimated
        // threshold is low and the scan used to stop before ever reaching the
        // true top magnitudes parked at the highest indices.
        let n = 4096;
        let mut values = vec![1.0f32; n];
        for (j, v) in values.iter_mut().rev().take(8).enumerate() {
            *v = 100.0 + j as f32;
        }
        let grads = FlatTensor::from_vec(values);
        for (ratio, sample) in [(0.001, 16), (0.002, 64), (0.01, 4), (0.25, 7)] {
            let compressor = Compressor::threshold_top_k(ratio, sample);
            let exact = Compressor::top_k(ratio).compress(&grads);
            let accelerated = compressor.compress(&grads);
            assert_eq!(accelerated, exact, "ratio={ratio} sample={sample}");
            assert_eq!(accelerated.num_selected(), compressor.num_kept(n));
        }
        // The 8 planted spikes must always survive a selection of k >= 8.
        let c = Compressor::threshold_top_k(0.002, 64).compress(&grads);
        for spike in (n - 8)..n {
            assert!(c.indices().contains(&(spike as u32)), "spike {spike} dropped");
        }
    }

    #[test]
    fn threshold_top_k_keeps_nan_magnitudes_like_exact_top_k() {
        let mut values: Vec<f32> = (0..2048).map(|i| ((i as f32) * 0.31).cos()).collect();
        values[7] = f32::NAN;
        values[2000] = -f32::NAN;
        let grads = FlatTensor::from_vec(values);
        let exact = Compressor::top_k(0.01).compress(&grads);
        let accelerated = Compressor::threshold_top_k(0.01, 32).compress(&grads);
        assert_eq!(accelerated.indices(), exact.indices());
        assert!(accelerated.indices().contains(&7));
        assert!(accelerated.indices().contains(&2000));
    }

    #[test]
    fn parallel_top_k_is_bit_identical_to_serial() {
        let grads = FlatTensor::randn(100_003, 1.0, 42); // prime length, ragged chunks
        let cpus = ParExecutor::current().num_threads();
        for ratio in [0.001, 0.01, 0.2, 1.0] {
            let compressor = Compressor::top_k(ratio);
            let serial = compressor.compress(&grads);
            for chunks in [1usize, 2, 7, cpus.max(2)] {
                for threads in [1usize, 2, 4] {
                    let pool = ParExecutor::new(threads);
                    let par = compressor.compress_par_chunked(&grads, &pool, chunks);
                    assert_eq!(par, serial, "ratio={ratio} chunks={chunks} threads={threads}");
                }
            }
            let pool = ParExecutor::new(4);
            assert_eq!(
                compressor.compress_par(&grads, &pool),
                serial,
                "compress_par ratio={ratio}"
            );
        }
    }

    #[test]
    fn nan_gradients_select_deterministically_and_identically_in_parallel() {
        // NaNs sort above every finite magnitude under total_cmp, so they are
        // selected first — and crucially the order stays total, so serial and
        // parallel agree even on poisoned gradients (post-overflow steps).
        let mut values: Vec<f32> = (0..997).map(|i| ((i as f32) * 0.17).sin()).collect();
        values[13] = f32::NAN;
        values[500] = -f32::NAN;
        values[900] = f32::INFINITY;
        let grads = FlatTensor::from_vec(values);
        let compressor = Compressor::top_k(0.01); // k = 10
        let serial = compressor.compress(&grads);
        assert!(serial.indices().contains(&13));
        assert!(serial.indices().contains(&500));
        assert!(serial.indices().contains(&900));
        for chunks in [2usize, 7, 16] {
            for threads in [2usize, 4] {
                let par =
                    compressor.compress_par_chunked(&grads, &ParExecutor::new(threads), chunks);
                assert_eq!(par.indices(), serial.indices(), "chunks={chunks} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_top_k_breaks_magnitude_ties_by_index_like_serial() {
        // All-equal magnitudes: the selection must be the lowest k indices in
        // both the serial and every parallel configuration.
        let grads = FlatTensor::full(1000, 3.0);
        let compressor = Compressor::top_k(0.05);
        let serial = compressor.compress(&grads);
        let expected: Vec<u32> = (0..50).collect();
        assert_eq!(serial.indices(), expected.as_slice());
        for chunks in [2usize, 7, 16] {
            let par = compressor.compress_par_chunked(&grads, &ParExecutor::new(4), chunks);
            assert_eq!(par, serial, "chunks={chunks}");
        }
    }

    #[test]
    fn threshold_top_k_handles_k_at_least_n() {
        // keep_ratio 1.0 → k == n: every element is kept, exactly once.
        let grads = FlatTensor::randn(100, 1.0, 5);
        let c = Compressor::threshold_top_k(1.0, 16).compress(&grads);
        assert_eq!(c.num_selected(), 100);
        assert_eq!(c.decompress(), grads);
        // Tiny tensors where k == n == 1.
        let single = Compressor::threshold_top_k(0.9, 4).compress(&FlatTensor::full(1, 2.0));
        assert_eq!(single.num_selected(), 1);
        assert_eq!(single.indices(), &[0]);
    }

    #[test]
    fn threshold_top_k_handles_all_equal_magnitudes() {
        // Every |g| equals the threshold, so every element is a candidate;
        // the final selection must keep exactly k, lowest indices first
        // (the serial tie-break), not an early-exit-dependent prefix.
        let grads = FlatTensor::full(500, -2.5);
        let compressor = Compressor::threshold_top_k(0.02, 64);
        let a = compressor.compress(&grads);
        assert_eq!(a, compressor.compress(&grads));
        let expected: Vec<u32> = (0..10).collect(); // k = 500 * 0.02
        assert_eq!(a.indices(), expected.as_slice());
        assert_eq!(a, Compressor::top_k(0.02).compress(&grads));
    }

    #[test]
    fn threshold_top_k_handles_sample_size_larger_than_n() {
        // sample_size > n: the stride clamps to 1 (full scan of all n
        // elements), which makes the estimate exact.
        let grads = FlatTensor::from_vec(vec![0.1, -5.0, 0.2, 3.0, -0.05, 4.0]);
        let c = Compressor::threshold_top_k(0.5, 1000).compress(&grads);
        assert_eq!(c, Compressor::top_k(0.5).compress(&grads));
        assert_eq!(c.indices(), &[1, 3, 5]);
    }

    #[test]
    fn fallible_compression_matches_the_panicking_path() {
        let grads = FlatTensor::randn(5_000, 1.0, 11);
        let pool = ParExecutor::new(2);
        for compressor in [
            Compressor::top_k(0.01),
            Compressor::threshold_top_k(0.05, 64),
            Compressor::random_k(0.1, 3),
        ] {
            let infallible = compressor.compress(&grads);
            assert_eq!(compressor.try_compress(&grads).unwrap(), infallible);
            assert_eq!(compressor.try_compress_par(&grads, &pool).unwrap(), infallible);
            assert_eq!(compressor.try_compress_par_chunked(&grads, &pool, 3).unwrap(), infallible);
        }
    }

    #[test]
    #[should_panic(expected = "chunk count must be positive")]
    fn zero_chunks_panics() {
        let grads = FlatTensor::zeros(4);
        Compressor::top_k(0.5).compress_par_chunked(&grads, &ParExecutor::serial(), 0);
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn zero_ratio_panics() {
        Compressor::top_k(0.0);
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn ratio_above_one_panics() {
        Compressor::top_k(1.5);
    }

    proptest! {
        /// Top-K selection keeps exactly k elements and every kept magnitude is
        /// at least as large as every dropped magnitude.
        #[test]
        fn top_k_is_a_valid_selection(
            values in proptest::collection::vec(-100.0f32..100.0, 1..300),
            ratio in 0.01f64..1.0,
        ) {
            let grads = FlatTensor::from_vec(values.clone());
            let compressor = Compressor::top_k(ratio);
            let c = compressor.compress(&grads);
            prop_assert_eq!(c.num_selected(), compressor.num_kept(values.len()));
            let kept: std::collections::HashSet<u32> = c.indices().iter().copied().collect();
            let min_kept = c.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
            for (i, v) in values.iter().enumerate() {
                if !kept.contains(&(i as u32)) {
                    prop_assert!(v.abs() <= min_kept + 1e-6);
                }
            }
        }

        /// Decompressed Top-K error is never larger than dropping everything.
        #[test]
        fn top_k_reduces_error_vs_zero(
            values in proptest::collection::vec(-10.0f32..10.0, 2..200),
        ) {
            let grads = FlatTensor::from_vec(values);
            let c = Compressor::top_k(0.25).compress(&grads);
            let approx = c.decompress();
            let err = approx.mse(&grads);
            let zero_err = FlatTensor::zeros(grads.len()).mse(&grads);
            prop_assert!(err <= zero_err + 1e-12);
        }

        /// The threshold-accelerated selection keeps exactly k elements and
        /// equals the exact Top-K for random tensors, ratios and sample
        /// sizes (quantised values make duplicate magnitudes — the tie-heavy
        /// regime the old early-exit mis-handled — common).
        #[test]
        fn threshold_top_k_keeps_exactly_k_and_matches_exact(
            values in proptest::collection::vec(-5.0f32..5.0, 1..500),
            ratio in 0.01f64..1.0,
            sample_size in 1usize..600,
        ) {
            let grads = FlatTensor::from_vec(
                values.iter().map(|v| (v * 4.0).round() / 4.0).collect(),
            );
            let compressor = Compressor::threshold_top_k(ratio, sample_size);
            let accelerated = compressor.compress(&grads);
            prop_assert_eq!(accelerated.num_selected(), compressor.num_kept(grads.len()));
            prop_assert_eq!(accelerated, Compressor::top_k(ratio).compress(&grads));
        }

        /// Parallel Top-K equals serial Top-K for random tensors, ratios,
        /// chunk counts and thread counts (including duplicate magnitudes).
        #[test]
        fn par_top_k_matches_serial_for_random_inputs(
            values in proptest::collection::vec(-5.0f32..5.0, 1..500),
            ratio in 0.01f64..1.0,
            chunks in 1usize..12,
            threads in 1usize..5,
        ) {
            // Quantise so duplicate magnitudes (ties) are common.
            let grads = FlatTensor::from_vec(
                values.iter().map(|v| (v * 4.0).round() / 4.0).collect(),
            );
            let compressor = Compressor::top_k(ratio);
            let serial = compressor.compress(&grads);
            let par = compressor.compress_par_chunked(&grads, &ParExecutor::new(threads), chunks);
            prop_assert_eq!(par, serial);
        }
    }
}
