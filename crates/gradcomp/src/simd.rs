//! SIMD candidate filtering for the threshold-accelerated Top-K selection.
//!
//! The hot scan in `threshold_top_k` keeps every index whose magnitude is
//! **not less than** the estimated threshold — `!(|v| < t)` rather than
//! `|v| >= t` so NaN magnitudes (and a NaN threshold) stay in the candidate
//! set. The vector bodies use ordered less-than compares
//! (`_CMP_LT_OQ` / `cmpltps`), which are false on NaN exactly like Rust's
//! scalar `<`, then invert the lane mask — so the selected index set is
//! identical to the scalar scan for every input, NaNs and ties included.
//!
//! This is the only module in the crate allowed to use `unsafe` (for
//! `std::arch` intrinsics); the crate root remains `deny(unsafe_code)`.
#![allow(unsafe_code)]

use tensorlib::KernelPath;

/// Appends to `out` every index `i` (ascending) where `!(grads[i].abs() < threshold)`.
pub(crate) fn filter_not_less(path: KernelPath, grads: &[f32], threshold: f32, out: &mut Vec<u32>) {
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: `is_available` is checked by `KernelPath::active()` /
        // asserted by test callers.
        KernelPath::Avx2 => return unsafe { x86::filter_avx2(grads, threshold, out) },
        KernelPath::Sse2 => return unsafe { x86::filter_sse2(grads, threshold, out) },
        KernelPath::Scalar => {}
    }
    let _ = path;
    filter_scalar(grads, threshold, 0, out);
}

/// Scalar reference scan; `base` offsets the emitted indices so the SIMD
/// drivers can reuse it for ragged tails.
pub(crate) fn filter_scalar(grads: &[f32], threshold: f32, base: usize, out: &mut Vec<u32>) {
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    for (i, v) in grads.iter().enumerate() {
        // `!(x < t)` rather than `x >= t`: NaN magnitudes (and a NaN
        // threshold) must land in the candidate set, not silently drop out.
        if !(v.abs() < threshold) {
            out.push((base + i) as u32);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::filter_scalar;
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn filter_avx2(grads: &[f32], threshold: f32, out: &mut Vec<u32>) {
        let n = grads.len();
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
        let t = _mm256_set1_ps(threshold);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(grads.as_ptr().add(i));
            let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_and_ps(v, abs_mask), t);
            // Keep the lanes where `|v| < t` is FALSE (NaN compares false,
            // so NaN lanes are kept — same as the scalar `!(x < t)`).
            let mut keep = (!_mm256_movemask_ps(lt)) & 0xFF;
            while keep != 0 {
                let lane = keep.trailing_zeros() as usize;
                out.push((i + lane) as u32);
                keep &= keep - 1;
            }
            i += 8;
        }
        filter_scalar(&grads[i..], threshold, i, out);
    }

    /// # Safety
    ///
    /// Caller guarantees SSE2 is available.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn filter_sse2(grads: &[f32], threshold: f32, out: &mut Vec<u32>) {
        let n = grads.len();
        let abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFF_FFFF));
        let t = _mm_set1_ps(threshold);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm_loadu_ps(grads.as_ptr().add(i));
            // `cmpltps` is an ordered compare: false on NaN, like scalar `<`.
            let lt = _mm_cmplt_ps(_mm_and_ps(v, abs_mask), t);
            let mut keep = (!_mm_movemask_ps(lt)) & 0xF;
            while keep != 0 {
                let lane = keep.trailing_zeros() as usize;
                out.push((i + lane) as u32);
                keep &= keep - 1;
            }
            i += 4;
        }
        filter_scalar(&grads[i..], threshold, i, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: KernelPath, grads: &[f32], threshold: f32) -> Vec<u32> {
        let mut out = Vec::new();
        filter_not_less(path, grads, threshold, &mut out);
        out
    }

    /// Inputs covering ties (exactly equal to the threshold), NaN values, a
    /// NaN threshold, ±0, infinities, subnormals and ragged lengths.
    #[test]
    fn vector_filter_matches_scalar_on_adversarial_inputs() {
        let adversarial = [
            1.0f32,
            -1.0,
            0.5,
            -0.5,
            0.0,
            -0.0,
            f32::NAN,
            -f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
            1.0 - f32::EPSILON, // just under a 1.0 threshold
            1.0 + f32::EPSILON, // just over
            65504.0,
            -3.5,
            2.25,
        ];
        let thresholds = [1.0f32, 0.5, 0.0, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE];
        for t in thresholds {
            // Sweep lengths so every width gets full blocks and ragged tails.
            for len in 0..adversarial.len() {
                let grads = &adversarial[..len];
                let reference = run(KernelPath::Scalar, grads, t);
                for path in KernelPath::available() {
                    assert_eq!(
                        run(path, grads, t),
                        reference,
                        "path {path} diverged at threshold {t:?} len {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn tie_values_are_kept_on_every_path() {
        // An exact tie `|v| == t` must be kept (`!(x < t)` is true).
        let grads = [0.25f32, -0.25, 0.125, 0.25, 0.5, -0.25, 0.1, 0.25, 0.3];
        for path in KernelPath::available() {
            let kept = run(path, &grads, 0.25);
            assert_eq!(kept, vec![0, 1, 3, 4, 5, 7, 8], "path {path}");
        }
    }
}
