//! # gradcomp — gradient compression for SmartComp
//!
//! SmartComp (paper Section IV-C) compresses gradients on the GPU with a
//! magnitude-based (Top-K) scheme and decompresses them on the CSD FPGA
//! before the update. The compressed representation is a pair of lists —
//! indices and values — so a "Top k%" selection transfers `2·k%` of the
//! original volume (the paper's default of 1% selection is reported as a
//! "2% compression ratio").
//!
//! This crate implements:
//!
//! * [`CompressedGradient`] — the index/value container with byte accounting
//!   and fallible construction ([`CompressError`]) for untrusted sizes.
//! * [`Compressor`] — exact Top-K (sort-based), threshold-accelerated exact
//!   Top-K (cheaper, bit-identical) and Random-K selection, each with
//!   `try_*` variants that error instead of aborting on shards longer than
//!   the u32 index space.
//! * [`ErrorFeedback`] — the residual accumulator used by sparsified training
//!   so that dropped gradient mass is re-injected at the next step.
//! * [`LowRankCompressor`] — the PowerSGD-style low-rank alternative the paper
//!   weighs against Top-K (Section IV-C), provided for comparison/ablation.
//!
//! # Example
//!
//! ```
//! use gradcomp::{Compressor, ErrorFeedback};
//! use tensorlib::FlatTensor;
//!
//! let grads = FlatTensor::from_vec(vec![0.1, -5.0, 0.2, 3.0, -0.05]);
//! let compressor = Compressor::top_k(0.4); // keep the top 40% by magnitude
//! let compressed = compressor.compress(&grads);
//! assert_eq!(compressed.num_selected(), 2);
//! let restored = compressed.decompress();
//! assert_eq!(restored.as_slice()[1], -5.0);
//! assert_eq!(restored.as_slice()[0], 0.0); // dropped entries become zero
//! ```

// `unsafe` is denied crate-wide; only the `simd` module overrides it with a
// scoped allow for `std::arch` intrinsics (`forbid` would not permit that).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod compressed;
mod compressor;
mod feedback;
mod lowrank;
mod simd;

pub use compressed::{CompressError, CompressedGradient};
pub use compressor::{valid_keep_ratio, Compressor, SelectionMethod};
pub use feedback::ErrorFeedback;
pub use lowrank::{LowRankCompressor, LowRankGradient};

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib::FlatTensor;

    /// Compress-decompress preserves exactly the selected coordinates and
    /// zeroes the rest; with error feedback, everything is eventually sent.
    #[test]
    fn error_feedback_recovers_dropped_mass_over_steps() {
        let n = 64;
        // Uniform gradients: without error feedback the same 16 coordinates
        // would win the Top-K selection forever; with feedback the skipped
        // coordinates accumulate residual and take their turn.
        let grads = FlatTensor::full(n, 1.0);
        let compressor = Compressor::top_k(0.25);
        let mut feedback = ErrorFeedback::new(n);
        let mut accumulated = FlatTensor::zeros(n);
        for _ in 0..8 {
            let corrected = feedback.apply(&grads);
            let compressed = compressor.compress(&corrected);
            feedback.update(&corrected, &compressed);
            let mut dec = compressed.decompress();
            dec.axpby(1.0, 1.0, &accumulated);
            accumulated = dec;
        }
        // Every coordinate has been transmitted at least once, and the total
        // transmitted mass equals the total generated mass minus the residual.
        assert!(accumulated.as_slice().iter().all(|&v| v > 0.0));
        let total_sent: f32 = accumulated.as_slice().iter().sum();
        let residual_mass: f32 = feedback.residual().as_slice().iter().sum();
        assert!((total_sent + residual_mass - 8.0 * n as f32).abs() < 1e-3);
    }
}
