//! Error feedback (residual accumulation) for sparsified gradients.
//!
//! Standard practice in gradient-sparsification training (Lin et al., 2018;
//! paper Section IX-B): the mass dropped by Top-K at step `t` is remembered
//! and added back to the gradient at step `t+1`, so that every coordinate is
//! eventually communicated and convergence is preserved.

use crate::compressed::CompressedGradient;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// Residual accumulator for one flat gradient buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorFeedback {
    residual: FlatTensor,
}

impl ErrorFeedback {
    /// Creates a zero residual for gradients of length `len`.
    pub fn new(len: usize) -> Self {
        Self { residual: FlatTensor::zeros(len) }
    }

    /// Length of the gradient this accumulator tracks.
    pub fn len(&self) -> usize {
        self.residual.len()
    }

    /// Whether the accumulator tracks an empty gradient.
    pub fn is_empty(&self) -> bool {
        self.residual.is_empty()
    }

    /// The current residual.
    pub fn residual(&self) -> &FlatTensor {
        &self.residual
    }

    /// Returns `grads + residual`: the corrected gradient that should be fed
    /// to the compressor.
    ///
    /// Allocates a fresh tensor; hot paths that already own their gradient
    /// buffer should prefer [`ErrorFeedback::apply_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the accumulator length.
    pub fn apply(&self, grads: &FlatTensor) -> FlatTensor {
        let mut corrected = grads.clone();
        self.apply_in_place(&mut corrected);
        corrected
    }

    /// Adds the residual into `grads` in place (`grads += residual`), turning
    /// the raw gradient into the corrected gradient with zero allocations.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the accumulator length.
    pub fn apply_in_place(&self, grads: &mut FlatTensor) {
        assert_eq!(grads.len(), self.residual.len(), "gradient length mismatch");
        grads.axpby(1.0, 1.0, &self.residual);
    }

    /// Updates the residual after compression: the new residual is the part of
    /// the *corrected* gradient that was not transmitted.
    ///
    /// Allocation-free: the corrected gradient is copied into the existing
    /// residual buffer and the transmitted coordinates are scatter-zeroed
    /// (each transmitted value equals the corrected value at its index, so
    /// subtracting the transmitted stream and zeroing are the same operation).
    ///
    /// # Panics
    ///
    /// Panics if the corrected gradient or the compressed gradient have a
    /// different length than the accumulator.
    pub fn update(&mut self, corrected: &FlatTensor, transmitted: &CompressedGradient) {
        assert_eq!(corrected.len(), self.residual.len(), "gradient length mismatch");
        assert_eq!(transmitted.original_len(), self.residual.len(), "compressed length mismatch");
        self.residual.as_mut_slice().copy_from_slice(corrected.as_slice());
        let residual = self.residual.as_mut_slice();
        for &i in transmitted.indices() {
            residual[i as usize] = 0.0;
        }
    }

    /// Clears the residual (used when a step is skipped due to overflow).
    pub fn reset(&mut self) {
        self.residual.fill(0.0);
    }

    /// Overwrites the residual with checkpointed values, so a restored
    /// trainer continues with exactly the error-feedback state it saved.
    ///
    /// # Panics
    ///
    /// Panics if `residual.len()` differs from this feedback's length.
    pub fn restore_residual(&mut self, residual: &FlatTensor) {
        assert_eq!(residual.len(), self.residual.len(), "residual length mismatch");
        self.residual.as_mut_slice().copy_from_slice(residual.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::Compressor;
    use proptest::prelude::*;

    #[test]
    fn restore_residual_round_trips_through_a_saved_copy() {
        let mut fb = ErrorFeedback::new(3);
        fb.restore_residual(&FlatTensor::from_vec(vec![0.5, -1.5, 2.0]));
        assert_eq!(fb.residual().as_slice(), &[0.5, -1.5, 2.0]);
        let saved = fb.residual().clone();
        fb.reset();
        assert_eq!(fb.residual().as_slice(), &[0.0, 0.0, 0.0]);
        fb.restore_residual(&saved);
        assert_eq!(fb.residual().as_slice(), &[0.5, -1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "residual length mismatch")]
    fn restore_residual_rejects_wrong_lengths() {
        ErrorFeedback::new(3).restore_residual(&FlatTensor::zeros(2));
    }

    #[test]
    fn residual_holds_exactly_the_untransmitted_part() {
        let grads = FlatTensor::from_vec(vec![1.0, 10.0, 2.0, 20.0]);
        let compressor = Compressor::top_k(0.5);
        let mut fb = ErrorFeedback::new(4);
        let corrected = fb.apply(&grads);
        assert_eq!(corrected, grads); // residual starts at zero
        let compressed = compressor.compress(&corrected);
        fb.update(&corrected, &compressed);
        assert_eq!(fb.residual().as_slice(), &[1.0, 0.0, 2.0, 0.0]);
        assert_eq!(fb.len(), 4);
        assert!(!fb.is_empty());
    }

    #[test]
    fn next_step_reinjects_the_residual() {
        let grads = FlatTensor::from_vec(vec![1.0, 10.0, 2.0, 20.0]);
        let compressor = Compressor::top_k(0.5);
        let mut fb = ErrorFeedback::new(4);
        let corrected = fb.apply(&grads);
        let compressed = compressor.compress(&corrected);
        fb.update(&corrected, &compressed);
        // Next step with zero new gradient: the residual alone should now win.
        let corrected2 = fb.apply(&FlatTensor::zeros(4));
        assert_eq!(corrected2.as_slice(), &[1.0, 0.0, 2.0, 0.0]);
        let compressed2 = compressor.compress(&corrected2);
        assert_eq!(compressed2.indices(), &[0, 2]);
    }

    #[test]
    fn reset_clears_the_residual() {
        let mut fb = ErrorFeedback::new(2);
        let g = FlatTensor::from_vec(vec![5.0, 6.0]);
        let c = Compressor::top_k(0.5).compress(&g);
        fb.update(&g, &c);
        assert!(fb.residual().l2_norm() > 0.0);
        fb.reset();
        assert_eq!(fb.residual().l2_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_gradient_length_panics() {
        let fb = ErrorFeedback::new(3);
        fb.apply(&FlatTensor::zeros(4));
    }

    #[test]
    fn in_place_path_matches_the_allocating_path() {
        let compressor = Compressor::top_k(0.3);
        let mut fb_alloc = ErrorFeedback::new(64);
        let mut fb_inplace = ErrorFeedback::new(64);
        for step in 0..6u64 {
            let grads = FlatTensor::randn(64, 1.0, 900 + step);
            // Allocating path.
            let corrected_a = fb_alloc.apply(&grads);
            let compressed_a = compressor.compress(&corrected_a);
            fb_alloc.update(&corrected_a, &compressed_a);
            // In-place path: mutate an owned copy of the gradient buffer.
            let mut corrected_b = grads;
            fb_inplace.apply_in_place(&mut corrected_b);
            assert_eq!(corrected_b, corrected_a, "corrected diverged at step {step}");
            let compressed_b = compressor.compress(&corrected_b);
            fb_inplace.update(&corrected_b, &compressed_b);
            assert_eq!(compressed_b, compressed_a, "compressed diverged at step {step}");
            assert_eq!(fb_inplace.residual(), fb_alloc.residual(), "residual diverged at {step}");
        }
    }

    proptest! {
        /// Transmitted + residual always reconstructs the corrected gradient exactly.
        #[test]
        fn transmitted_plus_residual_equals_corrected(
            values in proptest::collection::vec(-50.0f32..50.0, 1..200),
            ratio in 0.05f64..1.0,
        ) {
            let grads = FlatTensor::from_vec(values);
            let compressor = Compressor::top_k(ratio);
            let mut fb = ErrorFeedback::new(grads.len());
            let corrected = fb.apply(&grads);
            let compressed = compressor.compress(&corrected);
            fb.update(&corrected, &compressed);
            let mut reconstructed = compressed.decompress();
            reconstructed.axpby(1.0, 1.0, fb.residual());
            for (a, b) in reconstructed.as_slice().iter().zip(corrected.as_slice()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
