//! The compressed gradient container: parallel index and value lists.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tensorlib::FlatTensor;

/// Why a compressed gradient could not be constructed.
///
/// The index stream is `u32` on the wire (that is what the FPGA decompressor
/// walks), so a shard longer than `u32::MAX` elements — or an index pointing
/// outside the dense gradient — is a hard representation error. These used to
/// abort the process via `assert!`; they are now surfaced as values so that
/// oversized models produce a [`TrainError::Config`]-style error instead of a
/// panic (`CompressError` → `csd::CsdError` → `ztrain::TrainError`).
///
/// [`TrainError::Config`]: https://docs.rs/ztrain
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// The index and value lists have different lengths.
    LengthMismatch {
        /// Number of indices supplied.
        indices: usize,
        /// Number of values supplied.
        values: usize,
    },
    /// The dense gradient is too long to index with `u32`.
    IndexSpaceExceeded {
        /// The dense gradient length that does not fit the u32 index space.
        original_len: usize,
    },
    /// An index points outside the dense gradient.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// Length of the dense gradient.
        original_len: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::LengthMismatch { indices, values } => {
                write!(f, "index/value length mismatch: {indices} indices vs {values} values")
            }
            CompressError::IndexSpaceExceeded { original_len } => {
                write!(f, "original length {original_len} exceeds u32 index space")
            }
            CompressError::IndexOutOfRange { index, original_len } => {
                write!(f, "index {index} out of range {original_len}")
            }
        }
    }
}

impl Error for CompressError {}

/// A sparsified gradient: the positions and values of the selected elements
/// of a flat gradient vector of length `original_len`.
///
/// This is exactly the representation the SmartComp decompressor consumes
/// (paper Fig. 7, upper half): the FPGA walks the index list and scatters the
/// values into a zero-initialised gradient buffer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompressedGradient {
    indices: Vec<u32>,
    values: Vec<f32>,
    original_len: usize,
}

impl CompressedGradient {
    /// Creates a compressed gradient from parallel index/value lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists have different lengths, if any index is out of
    /// range, or if `original_len` exceeds `u32::MAX`. Callers that must not
    /// abort on untrusted sizes (the training front-ends) use
    /// [`CompressedGradient::try_new`].
    pub fn new(indices: Vec<u32>, values: Vec<f32>, original_len: usize) -> Self {
        Self::try_new(indices, values, original_len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible construction: the checks of [`CompressedGradient::new`], but
    /// surfaced as a [`CompressError`] so a 4-billion-parameter shard errors
    /// instead of aborting the process.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::LengthMismatch`] for unequal lists,
    /// [`CompressError::IndexSpaceExceeded`] when `original_len` does not fit
    /// the u32 index space, and [`CompressError::IndexOutOfRange`] for an
    /// index pointing outside the dense gradient.
    pub fn try_new(
        indices: Vec<u32>,
        values: Vec<f32>,
        original_len: usize,
    ) -> Result<Self, CompressError> {
        if indices.len() != values.len() {
            return Err(CompressError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if original_len > u32::MAX as usize {
            return Err(CompressError::IndexSpaceExceeded { original_len });
        }
        if let Some(&index) = indices.iter().find(|&&i| (i as usize) >= original_len) {
            return Err(CompressError::IndexOutOfRange { index, original_len });
        }
        Ok(Self { indices, values, original_len })
    }

    /// Number of selected (non-zero) elements.
    pub fn num_selected(&self) -> usize {
        self.indices.len()
    }

    /// Length of the original dense gradient.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// The selected indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The selected values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Bytes transferred for this compressed gradient: a 4-byte index plus a
    /// 4-byte value per selected element.
    pub fn compressed_bytes(&self) -> usize {
        self.num_selected() * 8
    }

    /// Bytes of the original dense FP32 gradient.
    pub fn dense_bytes(&self) -> usize {
        self.original_len * 4
    }

    /// Transferred bytes as a fraction of the dense gradient (the paper's
    /// "compression ratio c%"; 1.0 or more means compression is not helping).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        self.compressed_bytes() as f64 / self.dense_bytes() as f64
    }

    /// Scatters the values into a new dense tensor (zeros elsewhere). This is
    /// the reference semantics the FPGA decompressor must match.
    pub fn decompress(&self) -> FlatTensor {
        let mut out = FlatTensor::zeros(self.original_len);
        self.decompress_into(out.as_mut_slice());
        out
    }

    /// Scatters the values into an existing buffer, zeroing it first.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != original_len`.
    pub fn decompress_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.original_len, "output buffer length mismatch");
        out.fill(0.0);
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out[i as usize] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decompress_scatters_values_and_zeroes_the_rest() {
        let c = CompressedGradient::new(vec![1, 3], vec![5.0, -2.0], 5);
        let d = c.decompress();
        assert_eq!(d.as_slice(), &[0.0, 5.0, 0.0, -2.0, 0.0]);
        assert_eq!(c.num_selected(), 2);
        assert_eq!(c.original_len(), 5);
        assert_eq!(c.indices(), &[1, 3]);
        assert_eq!(c.values(), &[5.0, -2.0]);
    }

    #[test]
    fn byte_accounting_matches_index_value_pairs() {
        let c = CompressedGradient::new(vec![0, 1, 2], vec![1.0, 2.0, 3.0], 300);
        assert_eq!(c.compressed_bytes(), 24);
        assert_eq!(c.dense_bytes(), 1200);
        assert!((c.compression_ratio() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn empty_compression_is_all_zeros() {
        let c = CompressedGradient::new(vec![], vec![], 4);
        assert_eq!(c.decompress().as_slice(), &[0.0; 4]);
        assert_eq!(c.compression_ratio(), 0.0);
        let empty = CompressedGradient::default();
        assert_eq!(empty.original_len(), 0);
        assert_eq!(empty.compression_ratio(), 0.0);
    }

    #[test]
    fn decompress_into_overwrites_previous_contents() {
        let c = CompressedGradient::new(vec![0], vec![9.0], 3);
        let mut buf = vec![7.0f32; 3];
        c.decompress_into(&mut buf);
        assert_eq!(buf, vec![9.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lists_panic() {
        CompressedGradient::new(vec![0, 1], vec![1.0], 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        CompressedGradient::new(vec![4], vec![1.0], 4);
    }

    #[test]
    fn try_new_surfaces_every_construction_error_as_a_value() {
        assert_eq!(
            CompressedGradient::try_new(vec![0, 1], vec![1.0], 4),
            Err(CompressError::LengthMismatch { indices: 2, values: 1 })
        );
        assert_eq!(
            CompressedGradient::try_new(vec![4], vec![1.0], 4),
            Err(CompressError::IndexOutOfRange { index: 4, original_len: 4 })
        );
        let oversized = u32::MAX as usize + 1;
        assert_eq!(
            CompressedGradient::try_new(vec![], vec![], oversized),
            Err(CompressError::IndexSpaceExceeded { original_len: oversized })
        );
        // The error messages are what `new` panics with.
        let e = CompressedGradient::try_new(vec![3], vec![1.0], 2).unwrap_err();
        assert!(e.to_string().contains("index 3 out of range 2"));
        assert!(std::error::Error::source(&e).is_none());
        // u32::MAX elements themselves are still representable.
        let ok = CompressedGradient::try_new(vec![0], vec![1.0], u32::MAX as usize).unwrap();
        assert_eq!(ok.original_len(), u32::MAX as usize);
    }

    proptest! {
        /// decompress followed by re-reading the selected indices returns the values.
        #[test]
        fn roundtrip_preserves_selected_values(
            pairs in proptest::collection::btree_map(0u32..1000, -100.0f32..100.0, 0..50),
            extra in 0usize..100,
        ) {
            let original_len = 1000 + extra;
            let indices: Vec<u32> = pairs.keys().copied().collect();
            let values: Vec<f32> = pairs.values().copied().collect();
            let c = CompressedGradient::new(indices.clone(), values.clone(), original_len);
            let dense = c.decompress();
            for (i, v) in indices.iter().zip(values.iter()) {
                prop_assert_eq!(dense.as_slice()[*i as usize], *v);
            }
            let nonzero = dense.as_slice().iter().filter(|&&x| x != 0.0).count();
            prop_assert!(nonzero <= indices.len());
        }
    }
}
