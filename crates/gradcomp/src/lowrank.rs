//! Low-rank gradient compression (PowerSGD-style).
//!
//! The paper settles on magnitude-based Top-K for SmartComp but explicitly
//! discusses low-rank decomposition (Vogels et al., PowerSGD) as the other
//! mainstream gradient-compression family, rejecting it for the FPGA because
//! "tuning the floating-point matrix multiplication performance is
//! challenging" (Section IV-C). This module provides a faithful reference
//! implementation so the trade-off can be measured rather than asserted: the
//! flat gradient is reshaped into an (almost) square matrix, one subspace
//! iteration produces rank-`r` factors `P·Qᵀ`, and the decompression is a
//! single small matrix product.

use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// A rank-`r` factorisation of a reshaped flat gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowRankGradient {
    rows: usize,
    cols: usize,
    rank: usize,
    original_len: usize,
    /// Row factor, `rows × rank`, row-major.
    p: Vec<f32>,
    /// Column factor, `cols × rank`, row-major.
    q: Vec<f32>,
}

impl LowRankGradient {
    /// Number of elements of the original dense gradient.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// The factorisation rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Bytes transferred: both factors in FP32.
    pub fn compressed_bytes(&self) -> usize {
        (self.p.len() + self.q.len()) * 4
    }

    /// Transferred bytes as a fraction of the dense FP32 gradient.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        self.compressed_bytes() as f64 / (self.original_len * 4) as f64
    }

    /// Reconstructs the dense gradient `P·Qᵀ` (trailing padding removed).
    pub fn decompress(&self) -> FlatTensor {
        let mut out = vec![0.0f32; self.original_len];
        for i in 0..self.rows {
            for j in 0..self.cols {
                let idx = i * self.cols + j;
                if idx >= self.original_len {
                    break;
                }
                let mut acc = 0.0f32;
                for k in 0..self.rank {
                    acc += self.p[i * self.rank + k] * self.q[j * self.rank + k];
                }
                out[idx] = acc;
            }
        }
        FlatTensor::from_vec(out)
    }
}

/// A rank-`r` PowerSGD-style compressor with a persistent `Q` factor
/// (warm-started power iteration, as in the original algorithm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowRankCompressor {
    rank: usize,
    q_state: Option<Vec<f32>>,
}

impl LowRankCompressor {
    /// Creates a compressor of the given rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        Self { rank, q_state: None }
    }

    /// The factorisation rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Shape of the reshaped matrix for a flat gradient of length `n`:
    /// as square as possible, padded with zeros.
    fn matrix_shape(n: usize) -> (usize, usize) {
        if n == 0 {
            return (0, 0);
        }
        let rows = (n as f64).sqrt().ceil() as usize;
        let cols = n.div_ceil(rows);
        (rows, cols)
    }

    /// Compresses a dense gradient with one warm-started subspace iteration.
    pub fn compress(&mut self, grads: &FlatTensor) -> LowRankGradient {
        let n = grads.len();
        let (rows, cols) = Self::matrix_shape(n);
        let rank = self.rank.min(rows.max(1)).min(cols.max(1));
        if n == 0 {
            return LowRankGradient { rows, cols, rank, original_len: 0, p: vec![], q: vec![] };
        }
        // Reshape with zero padding.
        let mut m = vec![0.0f32; rows * cols];
        m[..n].copy_from_slice(grads.as_slice());

        // Q: cols x rank, warm-started from the previous step (or a fixed
        // deterministic pseudo-random basis on the first step).
        let mut q = match &self.q_state {
            Some(q) if q.len() == cols * rank => q.clone(),
            _ => deterministic_basis(cols, rank),
        };
        orthonormalize(&mut q, cols, rank);

        // P = M Q  (rows x rank)
        let mut p = vec![0.0f32; rows * rank];
        for i in 0..rows {
            for k in 0..rank {
                let mut acc = 0.0f32;
                for j in 0..cols {
                    acc += m[i * cols + j] * q[j * rank + k];
                }
                p[i * rank + k] = acc;
            }
        }
        orthonormalize(&mut p, rows, rank);

        // Q = Mᵀ P  (cols x rank)
        for j in 0..cols {
            for k in 0..rank {
                let mut acc = 0.0f32;
                for i in 0..rows {
                    acc += m[i * cols + j] * p[i * rank + k];
                }
                q[j * rank + k] = acc;
            }
        }
        self.q_state = Some(q.clone());
        LowRankGradient { rows, cols, rank, original_len: n, p, q }
    }
}

/// A fixed, seedless pseudo-random basis (SplitMix64 mapped to [-1, 1]) so
/// compression is deterministic and reproducible across engines.
fn deterministic_basis(rows: usize, rank: usize) -> Vec<f32> {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    (0..rows * rank)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

/// In-place Gram-Schmidt orthonormalisation of the `rank` columns of an
/// `n × rank` row-major matrix.
///
/// Projections are subtracted twice ("twice is enough") so that columns which
/// nearly cancel do not leave a non-orthogonal rounding residue, and columns
/// whose norm collapses relative to their original magnitude are zeroed
/// instead of being normalised into amplified noise.
fn orthonormalize(m: &mut [f32], n: usize, rank: usize) {
    for k in 0..rank {
        let mut original_norm = 0.0f32;
        for i in 0..n {
            original_norm += m[i * rank + k] * m[i * rank + k];
        }
        let original_norm = original_norm.sqrt();
        // Subtract projections onto previous columns (two passes for stability).
        for _ in 0..2 {
            for prev in 0..k {
                let mut dot = 0.0f32;
                for i in 0..n {
                    dot += m[i * rank + k] * m[i * rank + prev];
                }
                for i in 0..n {
                    m[i * rank + k] -= dot * m[i * rank + prev];
                }
            }
        }
        let mut norm = 0.0f32;
        for i in 0..n {
            norm += m[i * rank + k] * m[i * rank + k];
        }
        let norm = norm.sqrt();
        if norm > 1e-12 && norm > original_norm * 1e-6 {
            for i in 0..n {
                m[i * rank + k] /= norm;
            }
        } else {
            for i in 0..n {
                m[i * rank + k] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exactly_low_rank_gradients_are_reconstructed_exactly() {
        // Build a rank-1 "gradient": outer product u vᵀ flattened.
        let rows = 32;
        let cols = 32;
        let u: Vec<f32> = (0..rows).map(|i| (i as f32 * 0.37).sin()).collect();
        let v: Vec<f32> = (0..cols).map(|j| (j as f32 * 0.11).cos()).collect();
        let dense: Vec<f32> = (0..rows * cols).map(|idx| u[idx / cols] * v[idx % cols]).collect();
        let grads = FlatTensor::from_vec(dense);
        let mut compressor = LowRankCompressor::new(2);
        let compressed = compressor.compress(&grads);
        let restored = compressed.decompress();
        let rel = restored.mse(&grads).sqrt() / (grads.l2_norm() as f64 / 32.0);
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn compression_ratio_shrinks_with_size_and_grows_with_rank() {
        let grads = FlatTensor::randn(10_000, 1.0, 1);
        let r1 = LowRankCompressor::new(1).compress(&grads);
        let r4 = LowRankCompressor::new(4).compress(&grads);
        assert!(r1.compression_ratio() < r4.compression_ratio());
        assert!(r4.compression_ratio() < 0.1, "rank-4 on 10k elements is ~8%");
        assert_eq!(r1.original_len(), 10_000);
        assert_eq!(r1.rank(), 1);
        assert_eq!(r4.compressed_bytes(), (100 * 4 + 100 * 4) * 4);
    }

    #[test]
    fn warm_start_improves_the_approximation_over_steps() {
        // Repeated compression of the same (random, hence not low-rank) matrix
        // must not diverge, and the warm-started error should not exceed the
        // cold-start error by any meaningful margin.
        let grads = FlatTensor::randn(4_096, 1.0, 7);
        let mut compressor = LowRankCompressor::new(4);
        let first = compressor.compress(&grads).decompress().mse(&grads);
        let mut last = first;
        for _ in 0..5 {
            last = compressor.compress(&grads).decompress().mse(&grads);
        }
        assert!(last <= first * 1.01, "warm start got worse: {first} -> {last}");
    }

    #[test]
    fn empty_and_tiny_gradients_are_handled() {
        let mut c = LowRankCompressor::new(4);
        let empty = c.compress(&FlatTensor::zeros(0));
        assert_eq!(empty.decompress().len(), 0);
        assert_eq!(empty.compression_ratio(), 0.0);
        let tiny = c.compress(&FlatTensor::from_vec(vec![3.0]));
        assert_eq!(tiny.decompress().len(), 1);
        assert!((tiny.decompress().as_slice()[0] - 3.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_panics() {
        LowRankCompressor::new(0);
    }

    proptest! {
        /// Decompression always returns the original length and a finite result,
        /// and the approximation error never exceeds the gradient's own energy.
        #[test]
        fn low_rank_roundtrip_is_bounded(
            values in proptest::collection::vec(-10.0f32..10.0, 1..1500),
            rank in 1usize..6,
        ) {
            let grads = FlatTensor::from_vec(values);
            let mut compressor = LowRankCompressor::new(rank);
            let restored = compressor.compress(&grads).decompress();
            prop_assert_eq!(restored.len(), grads.len());
            prop_assert!(!restored.has_nan_or_inf());
            let err = restored.mse(&grads) * grads.len() as f64;
            let energy = grads.sum_of_squares();
            prop_assert!(err <= energy * 1.05 + 1e-6);
        }
    }
}
