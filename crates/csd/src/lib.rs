//! # csd — computational storage device (SmartSSD) model
//!
//! A SmartSSD packages a 4 TB NVMe SSD and a Kintex KU15P FPGA behind a
//! private PCIe switch, so the FPGA can stream data to/from the SSD without
//! touching the host's shared interconnect (paper Section II-B). This crate
//! models that device:
//!
//! * [`Updater`] — the general optimizer-update kernel built from SIMD AXPBY
//!   processing elements (paper Section V-A, Fig. 7 bottom). Functionally it
//!   executes exactly the same kernels as the host CPU (`optim`), which is
//!   the paper's bit-equivalence argument; its throughput model reproduces
//!   the ≈7 GB/s updater bars of Fig. 14.
//! * [`Decompressor`] — the general Top-K decompressor (Section V-B, Fig. 7
//!   top): scatters an index/value list into a zero-initialised gradient
//!   buffer, processing `S`-sized chunks that fit in BRAM.
//! * [`FpgaResources`] / [`KernelResourceModel`] — the KU15P resource budget
//!   and per-kernel utilisation that reproduces Table III.
//! * [`DeviceDram`] — the 4 GB FPGA DRAM with explicit buffer management;
//!   demonstrates why naive transfer overlapping runs out of memory and the
//!   handler's pre-allocated buffer reuse does not (Section IV-B).
//! * [`CsdDevice`] — one SmartSSD: SSD + DRAM + kernels + internal-P2P
//!   traffic counters, with a functional `update_subgroup` path used by the
//!   Smart-Infinity functional engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompressor;
mod device;
mod dram;
mod resource;
mod updater;

pub use decompressor::Decompressor;
pub use device::{CsdDevice, CsdError, CsdTrafficStats, SubgroupUpdate};
pub use dram::{BufferId, DeviceDram, DramError};
pub use resource::{FpgaResources, KernelResourceModel, ResourceUtilization};
pub use updater::Updater;

#[cfg(test)]
mod tests {
    use super::*;
    use gradcomp::Compressor;
    use optim::Optimizer;
    use tensorlib::FlatTensor;

    /// The FPGA update path produces bit-identical results to calling the
    /// optimizer kernels directly on the host (the paper's SmartUpdate
    /// equivalence claim).
    #[test]
    fn csd_update_is_bit_identical_to_host_update() {
        let n = 4096;
        let optimizer = Optimizer::adam_default();
        let params = FlatTensor::randn(n, 0.02, 1);
        let grads = FlatTensor::randn(n, 0.01, 2);

        // Host reference.
        let mut host_params = params.clone();
        let mut host_aux = optimizer.init_aux(n);
        optimizer.step(host_params.as_mut_slice(), &grads, &mut host_aux, 1);

        // CSD path: states live on the SSD, the FPGA updates them via P2P.
        let mut csd = CsdDevice::new("csd0", 1 << 30, 64 << 20);
        csd.store_initial_state("shard", &params, &optimizer).unwrap();
        csd.store_gradients("shard", &grads).unwrap();
        csd.update_subgroup(SubgroupUpdate {
            shard: "shard",
            offset: 0,
            len: n,
            optimizer,
            step: 1,
            compressed: None,
        })
        .unwrap();
        let updated = csd.load_parameters("shard", 0, n).unwrap();
        assert_eq!(updated.as_slice(), host_params.as_slice());
    }

    /// The FPGA decompressor matches the reference scatter semantics.
    #[test]
    fn decompressor_matches_reference_semantics() {
        let grads = FlatTensor::randn(10_000, 1.0, 3);
        let compressed = Compressor::top_k(0.02).compress(&grads);
        let reference = compressed.decompress();
        let decompressor = Decompressor::default();
        let restored = decompressor.decompress(&compressed);
        assert_eq!(restored, reference);
    }
}
