//! FPGA device DRAM buffer management.
//!
//! The SmartSSD's FPGA has 4 GB of DDR4. SmartUpdate sizes its parameter
//! subgroups to fit this memory; the internal data transfer handler
//! (paper Section IV-B) *pre-allocates* one buffer per optimizer-state
//! variable at the largest subgroup size and re-uses them across tasklets,
//! because naively double-buffering whole subgroups to overlap transfers
//! would exceed the device memory (the OOM problem the paper describes).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Identifier of an allocated device-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufferId(u64);

/// Errors produced by the device DRAM allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// The requested allocation does not fit in the remaining device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// The buffer id is unknown (already freed or never allocated).
    UnknownBuffer {
        /// The offending buffer id.
        id: u64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfMemory { requested, available } => {
                write!(
                    f,
                    "device memory exhausted: requested {requested} bytes, {available} available"
                )
            }
            DramError::UnknownBuffer { id } => write!(f, "unknown device buffer id {id}"),
        }
    }
}

impl Error for DramError {}

/// The FPGA's device DRAM: a capacity-checked buffer allocator.
///
/// The allocator intentionally does not store data (the functional kernels
/// keep their working sets in ordinary vectors); it exists to model the
/// memory-capacity constraint that shapes the transfer handler design.
#[derive(Debug, Clone)]
pub struct DeviceDram {
    capacity: u64,
    buffers: BTreeMap<u64, (String, u64)>,
    next_id: u64,
    peak_used: u64,
}

impl DeviceDram {
    /// Creates a device memory of the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, buffers: BTreeMap::new(), next_id: 0, peak_used: 0 }
    }

    /// The SmartSSD's 4 GB DDR4.
    pub fn smartssd_default() -> Self {
        Self::new(4 * (1 << 30))
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.buffers.values().map(|(_, b)| *b).sum()
    }

    /// Bytes still available.
    pub fn available_bytes(&self) -> u64 {
        self.capacity - self.used_bytes()
    }

    /// High-water mark of allocated bytes since creation.
    pub fn peak_used_bytes(&self) -> u64 {
        self.peak_used
    }

    /// Number of live buffers.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Allocates a named buffer of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfMemory`] if the allocation does not fit.
    pub fn allocate(&mut self, name: impl Into<String>, bytes: u64) -> Result<BufferId, DramError> {
        let available = self.available_bytes();
        if bytes > available {
            return Err(DramError::OutOfMemory { requested: bytes, available });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.buffers.insert(id, (name.into(), bytes));
        self.peak_used = self.peak_used.max(self.used_bytes());
        Ok(BufferId(id))
    }

    /// Frees a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::UnknownBuffer`] if the id was never allocated or
    /// has already been freed.
    pub fn free(&mut self, buffer: BufferId) -> Result<(), DramError> {
        self.buffers.remove(&buffer.0).map(|_| ()).ok_or(DramError::UnknownBuffer { id: buffer.0 })
    }

    /// Size of a live buffer in bytes.
    pub fn buffer_size(&self, buffer: BufferId) -> Option<u64> {
        self.buffers.get(&buffer.0).map(|(_, b)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_track_usage() {
        let mut dram = DeviceDram::new(1000);
        let a = dram.allocate("param", 400).unwrap();
        let b = dram.allocate("grad", 300).unwrap();
        assert_eq!(dram.used_bytes(), 700);
        assert_eq!(dram.available_bytes(), 300);
        assert_eq!(dram.num_buffers(), 2);
        assert_eq!(dram.buffer_size(a), Some(400));
        dram.free(a).unwrap();
        assert_eq!(dram.used_bytes(), 300);
        assert_eq!(dram.peak_used_bytes(), 700);
        assert_eq!(dram.buffer_size(a), None);
        dram.free(b).unwrap();
        assert_eq!(dram.used_bytes(), 0);
    }

    #[test]
    fn oversized_allocation_is_rejected() {
        let mut dram = DeviceDram::new(100);
        let _a = dram.allocate("x", 80).unwrap();
        let err = dram.allocate("y", 30).unwrap_err();
        assert_eq!(err, DramError::OutOfMemory { requested: 30, available: 20 });
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn double_free_is_an_error() {
        let mut dram = DeviceDram::new(100);
        let a = dram.allocate("x", 10).unwrap();
        dram.free(a).unwrap();
        assert!(matches!(dram.free(a), Err(DramError::UnknownBuffer { .. })));
    }

    #[test]
    fn smartssd_default_has_four_gigabytes() {
        let dram = DeviceDram::smartssd_default();
        assert_eq!(dram.capacity(), 4 * (1 << 30));
    }

    /// The memory-capacity argument behind the transfer handler (Section IV-B):
    /// pre-allocating one buffer set for the largest subgroup fits, but naive
    /// double-buffering of full subgroups does not.
    #[test]
    fn naive_double_buffering_overflows_but_preallocation_fits() {
        let dram_capacity = 4u64 * (1 << 30);
        // Subgroup sized so that one set of buffers (grad + master + momentum +
        // variance + fp16 params, 18 bytes/param) fills ~60% of device memory.
        let subgroup_params = (dram_capacity as f64 * 0.6 / 18.0) as u64;
        let one_set = subgroup_params * 18;

        let mut dram = DeviceDram::new(dram_capacity);
        let first = dram.allocate("set0", one_set).unwrap();
        // Naive overlapping: allocate a second full set while the first is live.
        assert!(matches!(dram.allocate("set1", one_set), Err(DramError::OutOfMemory { .. })));
        // Handler approach: keep the pre-allocated set and reuse it.
        assert_eq!(dram.buffer_size(first), Some(one_set));
        assert!(dram.used_bytes() <= dram_capacity);
    }
}
