//! The general decompressor kernel (paper Section V-B).
//!
//! The Top-K decompressor reads the compressed gradient (index list + value
//! list) in BRAM-sized chunks of `S` pairs, zero-initialises the gradient
//! buffer for the current subgroup, and scatters each value to the position
//! named by its index. It contains no arithmetic — "only requires routing the
//! value to the right location" — which is why its resource cost in Table III
//! is marginal.

use gradcomp::CompressedGradient;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// Configuration and functional implementation of the decompressor kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decompressor {
    /// Number of index/value pairs processed per BRAM chunk (the paper's `S`).
    pub chunk_pairs: usize,
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Pairs scattered per clock cycle (scatter lanes).
    pub pairs_per_cycle: f64,
    /// Effective device-DRAM bandwidth for the zero-fill + scatter traffic,
    /// bytes/second.
    pub dram_bytes_per_sec: f64,
}

impl Default for Decompressor {
    fn default() -> Self {
        Self {
            chunk_pairs: 4096,
            clock_hz: 250.0e6,
            pairs_per_cycle: 2.0,
            dram_bytes_per_sec: 3.8e9,
        }
    }
}

impl Decompressor {
    /// Functionally decompresses a whole compressed gradient (scatter into a
    /// zero gradient buffer), processing the pair lists chunk by chunk exactly
    /// as the hardware does.
    pub fn decompress(&self, compressed: &CompressedGradient) -> FlatTensor {
        let mut out = FlatTensor::zeros(compressed.original_len());
        self.decompress_into(compressed, out.as_mut_slice());
        out
    }

    /// Decompresses into an existing buffer (zeroed first).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != compressed.original_len()`.
    pub fn decompress_into(&self, compressed: &CompressedGradient, out: &mut [f32]) {
        assert_eq!(out.len(), compressed.original_len(), "output buffer length mismatch");
        out.fill(0.0);
        let indices = compressed.indices();
        let values = compressed.values();
        let chunk = self.chunk_pairs.max(1);
        let mut start = 0;
        while start < indices.len() {
            let end = (start + chunk).min(indices.len());
            for j in start..end {
                out[indices[j] as usize] = values[j];
            }
            start = end;
        }
    }

    /// Decompresses only the elements belonging to the subgroup
    /// `[subgroup_offset, subgroup_offset + out.len())` of the original
    /// gradient (the partition-masking step of Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics if the subgroup range extends past the original gradient length.
    pub fn decompress_subgroup(
        &self,
        compressed: &CompressedGradient,
        subgroup_offset: usize,
        out: &mut [f32],
    ) {
        assert!(
            subgroup_offset + out.len() <= compressed.original_len(),
            "subgroup [{subgroup_offset}, {}) exceeds gradient length {}",
            subgroup_offset + out.len(),
            compressed.original_len()
        );
        out.fill(0.0);
        let end = subgroup_offset + out.len();
        for (&i, &v) in compressed.indices().iter().zip(compressed.values()) {
            let i = i as usize;
            if i >= subgroup_offset && i < end {
                out[i - subgroup_offset] = v;
            }
        }
    }

    /// Sustained decompression throughput measured in bytes of *dense*
    /// gradient produced per second (the quantity comparable to the SSD read
    /// bandwidth in Fig. 14): limited by either the scatter rate or the
    /// DRAM zero-fill/write bandwidth.
    pub fn throughput_bytes_per_sec(&self, keep_ratio: f64) -> f64 {
        assert!(keep_ratio > 0.0 && keep_ratio <= 1.0, "keep ratio must be in (0, 1]");
        // Scatter limit: pairs/s / keep_ratio elements of dense output per pair.
        let scatter = self.pairs_per_cycle * self.clock_hz / keep_ratio * 4.0;
        scatter.min(self.dram_bytes_per_sec)
    }

    /// Time to produce a dense subgroup of `num_elements` gradients from a
    /// compressed stream with the given keep ratio.
    pub fn decompress_time_secs(&self, keep_ratio: f64, num_elements: usize) -> f64 {
        num_elements as f64 * 4.0 / self.throughput_bytes_per_sec(keep_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradcomp::Compressor;
    use proptest::prelude::*;

    #[test]
    fn matches_the_reference_scatter_for_any_chunk_size() {
        let grads = FlatTensor::randn(5000, 1.0, 11);
        let compressed = Compressor::top_k(0.05).compress(&grads);
        let reference = compressed.decompress();
        for chunk in [1, 7, 256, 100_000] {
            let d = Decompressor { chunk_pairs: chunk, ..Decompressor::default() };
            assert_eq!(d.decompress(&compressed), reference, "chunk={chunk}");
        }
    }

    #[test]
    fn subgroup_decompression_matches_a_slice_of_the_full_result() {
        let grads = FlatTensor::randn(1000, 1.0, 5);
        let compressed = Compressor::top_k(0.1).compress(&grads);
        let full = compressed.decompress();
        let d = Decompressor::default();
        let mut sub = vec![0.0f32; 300];
        d.decompress_subgroup(&compressed, 200, &mut sub);
        assert_eq!(&sub[..], &full.as_slice()[200..500]);
    }

    #[test]
    fn default_throughput_slightly_exceeds_ssd_read() {
        // Fig. 14: the decompressor "slightly surpasses the throughput of the
        // SSD read" (3.3 GB/s).
        let d = Decompressor::default();
        let gbps = d.throughput_bytes_per_sec(0.01) / 1e9;
        assert!(gbps > 3.3 && gbps < 6.0, "decompressor throughput {gbps:.2} GB/s");
    }

    #[test]
    fn very_dense_streams_become_scatter_bound() {
        let d = Decompressor::default();
        // keep_ratio = 1.0: every output element needs its own pair.
        let dense = d.throughput_bytes_per_sec(1.0);
        let sparse = d.throughput_bytes_per_sec(0.01);
        assert!(dense < sparse);
        assert!(d.decompress_time_secs(1.0, 1000) > d.decompress_time_secs(0.01, 1000));
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn zero_keep_ratio_panics() {
        Decompressor::default().throughput_bytes_per_sec(0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds gradient length")]
    fn out_of_range_subgroup_panics() {
        let compressed = Compressor::top_k(0.5).compress(&FlatTensor::zeros(10));
        let mut out = vec![0.0f32; 8];
        Decompressor::default().decompress_subgroup(&compressed, 5, &mut out);
    }

    proptest! {
        /// Stitching per-subgroup decompressions together reproduces the full
        /// dense gradient for any subgroup size.
        #[test]
        fn subgroups_tile_to_the_full_decompression(
            len in 1usize..2000,
            keep in 0.01f64..0.5,
            subgroup in 1usize..300,
        ) {
            let grads = FlatTensor::randn(len, 1.0, 17);
            let compressed = Compressor::top_k(keep).compress(&grads);
            let full = compressed.decompress();
            let d = Decompressor::default();
            let mut stitched = vec![0.0f32; len];
            let mut offset = 0;
            while offset < len {
                let this = subgroup.min(len - offset);
                let mut buf = vec![0.0f32; this];
                d.decompress_subgroup(&compressed, offset, &mut buf);
                stitched[offset..offset + this].copy_from_slice(&buf);
                offset += this;
            }
            prop_assert_eq!(stitched.as_slice(), full.as_slice());
        }
    }
}
