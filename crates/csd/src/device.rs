//! The assembled SmartSSD device: SSD + FPGA DRAM + kernels + internal P2P
//! traffic accounting.

use crate::decompressor::Decompressor;
use crate::dram::{DeviceDram, DramError};
use crate::updater::Updater;
use faultkit::FaultInjector;
use gradcomp::{CompressError, CompressedGradient};
use optim::Optimizer;
use parcore::ParExecutor;
use serde::{Deserialize, Serialize};
use ssd::{SsdDevice, SsdError};
use std::error::Error;
use std::fmt;
use tensorlib::{Dtype, FlatTensor};

/// Errors produced by the functional CSD update path.
#[derive(Debug, Clone, PartialEq)]
pub enum CsdError {
    /// An SSD operation failed.
    Ssd(SsdError),
    /// The FPGA device memory could not hold the working set.
    Dram(DramError),
    /// A shard was used before its optimizer state was initialised.
    MissingShard {
        /// The shard name.
        shard: String,
    },
    /// A gradient could not be (de)compressed — e.g. a shard longer than the
    /// u32 index space of the compressed stream.
    Compression(CompressError),
    /// The device stopped answering (controller hang / surprise removal).
    /// Every operation fails until the device is rebuilt from its media.
    Dropout {
        /// The device name.
        device: String,
    },
}

impl CsdError {
    /// Whether bounded retry can clear this error (delegates to the wrapped
    /// SSD error; dropouts and everything else need rebuild or propagation).
    pub fn is_transient(&self) -> bool {
        matches!(self, CsdError::Ssd(e) if e.is_transient())
    }

    /// Whether the error means the device is dead until rebuilt (a dropout,
    /// or worn-out media underneath).
    pub fn needs_rebuild(&self) -> bool {
        matches!(self, CsdError::Dropout { .. } | CsdError::Ssd(SsdError::WornOut { .. }))
    }
}

impl fmt::Display for CsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdError::Ssd(e) => write!(f, "ssd error: {e}"),
            CsdError::Dram(e) => write!(f, "device memory error: {e}"),
            CsdError::MissingShard { shard } => {
                write!(f, "shard {shard} has no initialised optimizer state")
            }
            CsdError::Compression(e) => write!(f, "compression error: {e}"),
            CsdError::Dropout { device } => {
                write!(f, "device {device} dropped out (not answering; rebuild required)")
            }
        }
    }
}

impl Error for CsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsdError::Ssd(e) => Some(e),
            CsdError::Dram(e) => Some(e),
            CsdError::MissingShard { .. } => None,
            CsdError::Compression(e) => Some(e),
            CsdError::Dropout { .. } => None,
        }
    }
}

impl From<SsdError> for CsdError {
    fn from(e: SsdError) -> Self {
        CsdError::Ssd(e)
    }
}

impl From<DramError> for CsdError {
    fn from(e: DramError) -> Self {
        CsdError::Dram(e)
    }
}

impl From<CompressError> for CsdError {
    fn from(e: CompressError) -> Self {
        CsdError::Compression(e)
    }
}

/// Internal peer-to-peer traffic counters of one CSD.
///
/// These are the bytes that cross the CSD-internal switch (SSD ↔ FPGA) and
/// therefore *not* the shared system interconnect — the quantity whose
/// aggregate bandwidth scales linearly with the number of CSDs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsdTrafficStats {
    /// Bytes read from the SSD into the FPGA over the internal switch.
    pub p2p_read_bytes: u64,
    /// Bytes written from the FPGA back to the SSD over the internal switch.
    pub p2p_write_bytes: u64,
    /// Number of subgroup updates executed by the updater kernel.
    pub updates_run: u64,
    /// Total parameters updated.
    pub elements_updated: u64,
}

/// One subgroup-update request against a [`CsdDevice`].
#[derive(Debug, Clone, Copy)]
pub struct SubgroupUpdate<'a> {
    /// Name of the parameter shard owned by this device.
    pub shard: &'a str,
    /// Element offset of the subgroup within the shard.
    pub offset: usize,
    /// Number of elements in the subgroup.
    pub len: usize,
    /// The optimizer to apply.
    pub optimizer: Optimizer,
    /// 1-based global step count (Adam bias correction).
    pub step: u64,
    /// If present, the shard's gradients arrive compressed and the FPGA
    /// decompressor reconstructs the subgroup's dense gradient from it;
    /// otherwise the dense gradient region on the SSD is read.
    pub compressed: Option<&'a CompressedGradient>,
}

/// A SmartSSD: NVMe SSD, FPGA device memory and the updater/decompressor
/// kernels, connected by an internal PCIe switch.
#[derive(Debug, Clone)]
pub struct CsdDevice {
    name: String,
    ssd: SsdDevice,
    dram: DeviceDram,
    updater: Updater,
    decompressor: Decompressor,
    executor: ParExecutor,
    stats: CsdTrafficStats,
    dropped: bool,
    // Device-internal bounded retry for transient faults *inside* a subgroup
    // update. The update must not be retried whole once its write-back has
    // partially landed (that would re-apply the optimizer step to an already
    // updated master), so the device clears transient faults op-by-op — the
    // FPGA scratch still holds the computed results, exactly like firmware
    // retrying a failed program operation.
    retry_budget: u32,
    fault_retries: u64,
    fault_backoff_ms: u64,
    // Per-subgroup scratch buffers: the update loop runs every iteration of
    // training, so the working set is reused instead of reallocated.
    io_buf: Vec<u8>,
    master_scratch: FlatTensor,
    grad_scratch: FlatTensor,
    aux_scratch: Vec<FlatTensor>,
}

impl CsdDevice {
    /// Creates a CSD with the given SSD and FPGA-DRAM capacities in bytes.
    /// The updater kernel runs serially by default; see
    /// [`CsdDevice::set_threads`].
    pub fn new(name: impl Into<String>, ssd_capacity: u64, dram_capacity: u64) -> Self {
        let name = name.into();
        Self {
            ssd: SsdDevice::new(format!("{name}-ssd"), ssd_capacity),
            dram: DeviceDram::new(dram_capacity),
            updater: Updater::default(),
            decompressor: Decompressor::default(),
            executor: ParExecutor::serial(),
            stats: CsdTrafficStats::default(),
            dropped: false,
            retry_budget: 0,
            fault_retries: 0,
            fault_backoff_ms: 0,
            io_buf: Vec::new(),
            master_scratch: FlatTensor::default(),
            grad_scratch: FlatTensor::default(),
            aux_scratch: Vec::new(),
            name,
        }
    }

    /// A SmartSSD with its production capacities (4 TB SSD, 4 GB FPGA DRAM).
    pub fn smartssd(name: impl Into<String>) -> Self {
        Self::new(name, 4_000_000_000_000, 4 * (1 << 30))
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying SSD.
    pub fn ssd(&self) -> &SsdDevice {
        &self.ssd
    }

    /// The FPGA device memory.
    pub fn dram(&self) -> &DeviceDram {
        &self.dram
    }

    /// The updater kernel configuration.
    pub fn updater(&self) -> &Updater {
        &self.updater
    }

    /// The decompressor kernel configuration.
    pub fn decompressor(&self) -> &Decompressor {
        &self.decompressor
    }

    /// The executor the updater kernel runs on.
    pub fn executor(&self) -> ParExecutor {
        self.executor
    }

    /// Sets the host worker-thread count the updater kernel fans out across.
    /// The update result is bit-identical for every thread count.
    pub fn set_threads(&mut self, num_threads: usize) {
        self.executor = ParExecutor::new(num_threads);
    }

    /// Internal traffic statistics.
    pub fn stats(&self) -> CsdTrafficStats {
        self.stats
    }

    /// Resets the internal traffic statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CsdTrafficStats::default();
        self.ssd.reset_stats();
    }

    /// Installs a deterministic fault injector on the underlying SSD. Faults
    /// surface as [`CsdError::Ssd`] wrapping [`SsdError::Injected`].
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.ssd.set_fault_injector(injector);
    }

    /// Sets the device-internal retry budget for transient faults during a
    /// subgroup update (see the field comment on `retry_budget`).
    pub fn set_retry_budget(&mut self, budget: u32) {
        self.retry_budget = budget;
    }

    /// Drains the device-internal fault-recovery counters accumulated since
    /// the last call: `(transient retries, modeled backoff in ms)`.
    pub fn take_fault_events(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.fault_retries), std::mem::take(&mut self.fault_backoff_ms))
    }

    /// Suspends (or resumes) transient-fault injection on the underlying SSD
    /// — see [`ssd::SsdDevice::suspend_faults`].
    pub fn suspend_faults(&mut self, suspended: bool) {
        self.ssd.suspend_faults(suspended);
    }

    /// Marks the device as dropped out: every operation fails with
    /// [`CsdError::Dropout`] until [`CsdDevice::rebuild`] is called.
    pub fn inject_dropout(&mut self) {
        self.dropped = true;
    }

    /// Whether the device is currently dropped out.
    pub fn is_dropped(&self) -> bool {
        self.dropped
    }

    /// Wears out the underlying SSD media: reads keep working, writes fail
    /// with [`SsdError::WornOut`] until the device is rebuilt.
    pub fn inject_ssd_wearout(&mut self) {
        self.ssd.inject_wearout();
    }

    /// Whether the underlying SSD media has worn out.
    pub fn is_worn_out(&self) -> bool {
        self.ssd.is_worn_out()
    }

    /// Rebuilds the device onto replacement hardware: migrates every region
    /// of the underlying SSD (accounting the rebuild traffic in the SSD
    /// counters), clears the worn-out flag and brings a dropped-out device
    /// back online. Returns the number of bytes migrated.
    pub fn rebuild(&mut self) -> u64 {
        self.dropped = false;
        self.ssd.rebuild()
    }

    fn check_alive(&self) -> Result<(), CsdError> {
        if self.dropped {
            return Err(CsdError::Dropout { device: self.name.clone() });
        }
        Ok(())
    }

    /// Reads into `io_buf`, clearing transient faults within the retry budget.
    fn read_at_into_retrying(
        &mut self,
        region: &str,
        byte_off: usize,
        byte_len: usize,
    ) -> Result<(), CsdError> {
        let mut attempt = 0u32;
        loop {
            match self.ssd.read_at_into(region, byte_off, byte_len, &mut self.io_buf) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.retry_budget => {
                    attempt += 1;
                    self.fault_retries += 1;
                    self.fault_backoff_ms += 1u64 << attempt.min(16);
                }
                Err(e) => return Err(CsdError::Ssd(e)),
            }
        }
    }

    /// Writes `io_buf`, clearing transient faults within the retry budget.
    fn write_at_retrying(&mut self, region: &str, byte_off: usize) -> Result<(), CsdError> {
        let mut attempt = 0u32;
        loop {
            match self.ssd.write_at(region, byte_off, &self.io_buf) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.retry_budget => {
                    attempt += 1;
                    self.fault_retries += 1;
                    self.fault_backoff_ms += 1u64 << attempt.min(16);
                }
                Err(e) => return Err(CsdError::Ssd(e)),
            }
        }
    }

    fn master_region(shard: &str) -> String {
        format!("{shard}/master")
    }

    fn aux_region(shard: &str, index: usize) -> String {
        format!("{shard}/aux{index}")
    }

    fn grad_region(shard: &str) -> String {
        format!("{shard}/grad")
    }

    /// Initialises a shard on this device: the FP32 master copy of the
    /// parameters and zeroed auxiliary optimizer state, all stored on the SSD
    /// (this is the one-time setup before training starts).
    ///
    /// # Errors
    ///
    /// Returns a capacity error if the SSD cannot hold the optimizer state.
    pub fn store_initial_state(
        &mut self,
        shard: &str,
        params: &FlatTensor,
        optimizer: &Optimizer,
    ) -> Result<(), CsdError> {
        self.check_alive()?;
        self.ssd.write_region(Self::master_region(shard), params.to_bytes(Dtype::F32))?;
        for i in 0..optimizer.kind().num_aux() {
            let zeros = FlatTensor::zeros(params.len());
            self.ssd.write_region(Self::aux_region(shard, i), zeros.to_bytes(Dtype::F32))?;
        }
        Ok(())
    }

    /// Stores the dense FP32 gradients for a shard (the backward pass offloads
    /// gradients to the CSD that owns the corresponding parameters).
    ///
    /// # Errors
    ///
    /// Returns a capacity error if the SSD cannot hold the gradients.
    pub fn store_gradients(&mut self, shard: &str, grads: &FlatTensor) -> Result<(), CsdError> {
        self.check_alive()?;
        self.ssd.write_region(Self::grad_region(shard), grads.to_bytes(Dtype::F32))?;
        Ok(())
    }

    /// Reads back a range of the FP32 master parameters (what gets sent
    /// upstream to the host after the update).
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::MissingShard`] if the shard was never initialised.
    pub fn load_parameters(
        &mut self,
        shard: &str,
        offset: usize,
        len: usize,
    ) -> Result<FlatTensor, CsdError> {
        self.check_alive()?;
        let region = Self::master_region(shard);
        if !self.ssd.has_region(&region) {
            return Err(CsdError::MissingShard { shard: shard.to_string() });
        }
        let bytes = self.ssd.read_at(&region, offset * 4, len * 4)?;
        Ok(FlatTensor::from_bytes(&bytes, Dtype::F32))
    }

    /// Overwrites one whole auxiliary optimizer-state tensor (checkpoint
    /// restore: the shard must already be initialised via
    /// [`CsdDevice::store_initial_state`], which zeroes the aux regions).
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::MissingShard`] if the shard has no auxiliary
    /// tensor with that index, or a capacity error from the SSD.
    pub fn store_optimizer_state(
        &mut self,
        shard: &str,
        aux_index: usize,
        values: &FlatTensor,
    ) -> Result<(), CsdError> {
        self.check_alive()?;
        let region = Self::aux_region(shard, aux_index);
        if !self.ssd.has_region(&region) {
            return Err(CsdError::MissingShard { shard: shard.to_string() });
        }
        self.ssd.write_region(region, values.to_bytes(Dtype::F32))?;
        Ok(())
    }

    /// Reads back a range of one auxiliary optimizer-state tensor (used by
    /// checkpointing to serialise the exact on-device state).
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::MissingShard`] if the shard was never initialised
    /// or has no auxiliary tensor with that index.
    pub fn load_optimizer_state(
        &mut self,
        shard: &str,
        aux_index: usize,
        offset: usize,
        len: usize,
    ) -> Result<FlatTensor, CsdError> {
        self.check_alive()?;
        let region = Self::aux_region(shard, aux_index);
        if !self.ssd.has_region(&region) {
            return Err(CsdError::MissingShard { shard: shard.to_string() });
        }
        let bytes = self.ssd.read_at(&region, offset * 4, len * 4)?;
        Ok(FlatTensor::from_bytes(&bytes, Dtype::F32))
    }

    /// Executes one subgroup update entirely inside the CSD: P2P-load the
    /// gradients and optimizer state from the SSD into FPGA memory, run the
    /// decompressor (if the gradients are compressed) and the updater, then
    /// P2P-write the new state back to the SSD.
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::MissingShard`] if the shard is uninitialised,
    /// [`CsdError::Dram`] if the working set does not fit in device memory,
    /// or an [`CsdError::Ssd`] error for out-of-range accesses.
    pub fn update_subgroup(&mut self, request: SubgroupUpdate<'_>) -> Result<(), CsdError> {
        self.check_alive()?;
        let SubgroupUpdate { shard, offset, len, optimizer, step, compressed } = request;
        let master_region = Self::master_region(shard);
        if !self.ssd.has_region(&master_region) {
            return Err(CsdError::MissingShard { shard: shard.to_string() });
        }
        let num_aux = optimizer.kind().num_aux();
        let subgroup_bytes = (len * 4) as u64;

        // Allocate the working-set buffers in FPGA DRAM (gradient + master +
        // every auxiliary state tensor).
        let mut buffers = Vec::with_capacity(2 + num_aux);
        buffers.push(self.dram.allocate(format!("{shard}/grad-buf"), subgroup_bytes)?);
        buffers.push(self.dram.allocate(format!("{shard}/master-buf"), subgroup_bytes)?);
        for i in 0..num_aux {
            buffers.push(self.dram.allocate(format!("{shard}/aux{i}-buf"), subgroup_bytes)?);
        }
        let result = self.update_subgroup_inner(shard, offset, len, optimizer, step, compressed);
        for buf in buffers {
            // Freeing a buffer we just allocated cannot fail.
            self.dram.free(buf).expect("freshly allocated buffer must be live");
        }
        result
    }

    fn update_subgroup_inner(
        &mut self,
        shard: &str,
        offset: usize,
        len: usize,
        optimizer: Optimizer,
        step: u64,
        compressed: Option<&CompressedGradient>,
    ) -> Result<(), CsdError> {
        let num_aux = optimizer.kind().num_aux();
        let byte_off = offset * 4;
        let byte_len = len * 4;

        // 1. P2P load: master copy and auxiliary states, decoded into the
        // device's scratch tensors (no per-subgroup allocation).
        self.read_at_into_retrying(&Self::master_region(shard), byte_off, byte_len)?;
        FlatTensor::from_bytes_into(&self.io_buf, Dtype::F32, &mut self.master_scratch);
        self.stats.p2p_read_bytes += byte_len as u64;
        self.aux_scratch.resize(num_aux, FlatTensor::default());
        for i in 0..num_aux {
            self.read_at_into_retrying(&Self::aux_region(shard, i), byte_off, byte_len)?;
            FlatTensor::from_bytes_into(&self.io_buf, Dtype::F32, &mut self.aux_scratch[i]);
            self.stats.p2p_read_bytes += byte_len as u64;
        }

        // 2. Gradients: either decompress the compressed stream or load dense.
        match compressed {
            Some(c) => {
                self.grad_scratch.resize(len, 0.0);
                self.decompressor.decompress_subgroup(c, offset, self.grad_scratch.as_mut_slice());
                // Only the subgroup's share of the compressed stream crosses the switch.
                let share = if c.original_len() == 0 {
                    0
                } else {
                    (c.compressed_bytes() as u128 * len as u128 / c.original_len() as u128) as u64
                };
                self.stats.p2p_read_bytes += share;
            }
            None => {
                self.read_at_into_retrying(&Self::grad_region(shard), byte_off, byte_len)?;
                FlatTensor::from_bytes_into(&self.io_buf, Dtype::F32, &mut self.grad_scratch);
                self.stats.p2p_read_bytes += byte_len as u64;
            }
        };

        // 3. Update on the FPGA: the PE-array parallelism maps onto the
        // host executor's worker threads (bit-identical for any count).
        self.updater.run_with(
            &self.executor,
            &optimizer,
            self.master_scratch.as_mut_slice(),
            &self.grad_scratch,
            &mut self.aux_scratch,
            step,
        );
        self.stats.updates_run += 1;
        self.stats.elements_updated += len as u64;

        // 4. P2P write-back: master first (needed upstream), then auxiliaries.
        // Transient write faults are cleared device-internally (the scratch
        // tensors still hold the results), so the caller never observes a
        // half-written subgroup.
        self.master_scratch.to_bytes_into(Dtype::F32, &mut self.io_buf);
        self.write_at_retrying(&Self::master_region(shard), byte_off)?;
        self.stats.p2p_write_bytes += byte_len as u64;
        for i in 0..num_aux {
            self.aux_scratch[i].to_bytes_into(Dtype::F32, &mut self.io_buf);
            self.write_at_retrying(&Self::aux_region(shard, i), byte_off)?;
            self.stats.p2p_write_bytes += byte_len as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradcomp::Compressor;
    use optim::{HyperParams, OptimizerKind};

    fn device() -> CsdDevice {
        CsdDevice::new("csd0", 1 << 26, 1 << 22)
    }

    #[test]
    fn accessors_and_constructors() {
        let csd = CsdDevice::smartssd("csd7");
        assert_eq!(csd.name(), "csd7");
        assert_eq!(csd.dram().capacity(), 4 * (1 << 30));
        assert_eq!(csd.ssd().capacity(), 4_000_000_000_000);
        assert_eq!(csd.stats(), CsdTrafficStats::default());
        assert!(csd.updater().num_pes > 0);
        assert!(csd.decompressor().chunk_pairs > 0);
    }

    #[test]
    fn update_on_uninitialised_shard_fails() {
        let mut csd = device();
        let err = csd
            .update_subgroup(SubgroupUpdate {
                shard: "nope",
                offset: 0,
                len: 16,
                optimizer: Optimizer::adam_default(),
                step: 1,
                compressed: None,
            })
            .unwrap_err();
        assert!(matches!(err, CsdError::MissingShard { .. }));
        assert!(csd.load_parameters("nope", 0, 1).is_err());
    }

    #[test]
    fn multi_subgroup_update_matches_single_host_update() {
        let n = 1000;
        let optimizer = Optimizer::new(OptimizerKind::AdamW, HyperParams::default());
        let params = FlatTensor::randn(n, 0.02, 9);
        let grads = FlatTensor::randn(n, 0.01, 10);

        let mut host_params = params.clone();
        let mut host_aux = optimizer.init_aux(n);
        optimizer.step(host_params.as_mut_slice(), &grads, &mut host_aux, 1);

        let mut csd = device();
        csd.store_initial_state("s", &params, &optimizer).unwrap();
        csd.store_gradients("s", &grads).unwrap();
        // Process in three uneven subgroups, as the tasklet chunker would.
        for (offset, len) in [(0usize, 400usize), (400, 350), (750, 250)] {
            csd.update_subgroup(SubgroupUpdate {
                shard: "s",
                offset,
                len,
                optimizer,
                step: 1,
                compressed: None,
            })
            .unwrap();
        }
        let updated = csd.load_parameters("s", 0, n).unwrap();
        assert_eq!(updated.as_slice(), host_params.as_slice());
        let stats = csd.stats();
        assert_eq!(stats.updates_run, 3);
        assert_eq!(stats.elements_updated, n as u64);
        // Adam: read grad + master + 2 aux = 16 B/elem, write master + 2 aux = 12 B/elem.
        assert_eq!(stats.p2p_read_bytes, 16 * n as u64);
        assert_eq!(stats.p2p_write_bytes, 12 * n as u64);
    }

    #[test]
    fn compressed_update_matches_decompressed_dense_update() {
        let n = 2048;
        let optimizer = Optimizer::adam_default();
        let params = FlatTensor::randn(n, 0.02, 21);
        let grads = FlatTensor::randn(n, 0.01, 22);
        let compressed = Compressor::top_k(0.05).compress(&grads);
        let dense_equivalent = compressed.decompress();

        // Reference: host update using the *decompressed* gradients.
        let mut host_params = params.clone();
        let mut host_aux = optimizer.init_aux(n);
        optimizer.step(host_params.as_mut_slice(), &dense_equivalent, &mut host_aux, 1);

        let mut csd = device();
        csd.store_initial_state("s", &params, &optimizer).unwrap();
        csd.update_subgroup(SubgroupUpdate {
            shard: "s",
            offset: 0,
            len: n,
            optimizer,
            step: 1,
            compressed: Some(&compressed),
        })
        .unwrap();
        let updated = csd.load_parameters("s", 0, n).unwrap();
        assert_eq!(updated.as_slice(), host_params.as_slice());
        // Compressed gradients move far fewer bytes over the internal switch
        // than the dense 4·n gradient would.
        assert!(csd.stats().p2p_read_bytes < (16 * n as u64));
    }

    #[test]
    fn dram_capacity_limits_the_subgroup_size() {
        // 1 KiB of device DRAM cannot hold four 4 KiB buffers.
        let mut csd = CsdDevice::new("tiny", 1 << 26, 1024);
        let optimizer = Optimizer::adam_default();
        let params = FlatTensor::zeros(1024);
        csd.store_initial_state("s", &params, &optimizer).unwrap();
        csd.store_gradients("s", &FlatTensor::zeros(1024)).unwrap();
        let err = csd
            .update_subgroup(SubgroupUpdate {
                shard: "s",
                offset: 0,
                len: 1024,
                optimizer,
                step: 1,
                compressed: None,
            })
            .unwrap_err();
        assert!(matches!(err, CsdError::Dram(DramError::OutOfMemory { .. })));
        // No leaked buffers after the failure.
        assert_eq!(csd.dram().used_bytes(), 0);
        // A subgroup that fits succeeds.
        csd.update_subgroup(SubgroupUpdate {
            shard: "s",
            offset: 0,
            len: 32,
            optimizer,
            step: 1,
            compressed: None,
        })
        .unwrap();
    }

    #[test]
    fn threaded_device_updates_are_bit_identical_to_serial() {
        let n = 4096;
        let optimizer = Optimizer::adam_default();
        let params = FlatTensor::randn(n, 0.02, 31);
        let grads = FlatTensor::randn(n, 0.01, 32);
        let run = |threads: usize| {
            let mut csd = device();
            csd.set_threads(threads);
            assert_eq!(csd.executor().num_threads(), threads.max(1));
            csd.store_initial_state("s", &params, &optimizer).unwrap();
            csd.store_gradients("s", &grads).unwrap();
            for (offset, len) in [(0usize, 1500usize), (1500, 1500), (3000, 1096)] {
                csd.update_subgroup(SubgroupUpdate {
                    shard: "s",
                    offset,
                    len,
                    optimizer,
                    step: 1,
                    compressed: None,
                })
                .unwrap();
            }
            csd.load_parameters("s", 0, n).unwrap()
        };
        let serial = run(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(run(threads).as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut csd = device();
        let optimizer = Optimizer::adam_default();
        csd.store_initial_state("s", &FlatTensor::zeros(64), &optimizer).unwrap();
        csd.store_gradients("s", &FlatTensor::zeros(64)).unwrap();
        csd.update_subgroup(SubgroupUpdate {
            shard: "s",
            offset: 0,
            len: 64,
            optimizer,
            step: 1,
            compressed: None,
        })
        .unwrap();
        assert!(csd.stats().p2p_read_bytes > 0);
        csd.reset_stats();
        assert_eq!(csd.stats(), CsdTrafficStats::default());
    }

    #[test]
    fn dropout_blocks_every_operation_until_rebuild() {
        let mut csd = device();
        let optimizer = Optimizer::adam_default();
        let params = FlatTensor::randn(64, 0.02, 41);
        csd.store_initial_state("s", &params, &optimizer).unwrap();
        csd.store_gradients("s", &FlatTensor::zeros(64)).unwrap();

        csd.inject_dropout();
        assert!(csd.is_dropped());
        let err = csd.load_parameters("s", 0, 64).unwrap_err();
        assert!(matches!(err, CsdError::Dropout { ref device } if device == "csd0"));
        assert!(err.needs_rebuild());
        assert!(!err.is_transient());
        assert!(csd.store_gradients("s", &FlatTensor::zeros(64)).is_err());
        assert!(csd
            .update_subgroup(SubgroupUpdate {
                shard: "s",
                offset: 0,
                len: 64,
                optimizer,
                step: 1,
                compressed: None,
            })
            .is_err());

        // Rebuild brings the device back with its media contents intact.
        let migrated = csd.rebuild();
        assert!(migrated > 0);
        assert!(!csd.is_dropped());
        let back = csd.load_parameters("s", 0, 64).unwrap();
        assert_eq!(back.as_slice(), params.as_slice());
    }

    #[test]
    fn ssd_wearout_propagates_and_rebuild_clears_it() {
        let mut csd = device();
        let optimizer = Optimizer::adam_default();
        csd.store_initial_state("s", &FlatTensor::zeros(32), &optimizer).unwrap();
        csd.inject_ssd_wearout();
        assert!(csd.is_worn_out());
        // Reads still succeed on worn media; writes fail.
        assert!(csd.load_parameters("s", 0, 32).is_ok());
        let err = csd.store_gradients("s", &FlatTensor::zeros(32)).unwrap_err();
        assert!(matches!(err, CsdError::Ssd(SsdError::WornOut { .. })));
        assert!(err.needs_rebuild());
        csd.rebuild();
        assert!(!csd.is_worn_out());
        csd.store_gradients("s", &FlatTensor::zeros(32)).unwrap();
    }

    #[test]
    fn injected_ssd_faults_chain_through_csd_errors() {
        use faultkit::{FaultPlan, FaultSpec};
        let mut spec = FaultSpec::empty(11);
        spec.transient_per_mille = Some(1000); // every op faults once per burst
        spec.max_transient_burst = Some(1);
        let plan = FaultPlan::new(spec);
        let mut csd = device();
        csd.set_fault_injector(plan.injector(0));
        let err = csd.store_gradients("s", &FlatTensor::zeros(8)).unwrap_err();
        assert!(err.is_transient());
        assert!(matches!(err, CsdError::Ssd(SsdError::Injected { .. })));
        // The source chain reaches the injected-fault leaf.
        let ssd_err = err.source().expect("csd error wraps ssd error");
        assert!(ssd_err.source().is_some(), "ssd error chains to the injected fault");
        // Retry within the burst cap succeeds.
        csd.store_gradients("s", &FlatTensor::zeros(8)).unwrap();
    }

    #[test]
    fn load_optimizer_state_reads_back_aux_tensors() {
        let n = 100;
        let optimizer = Optimizer::adam_default();
        let params = FlatTensor::randn(n, 0.02, 51);
        let grads = FlatTensor::randn(n, 0.01, 52);
        let mut csd = device();
        csd.store_initial_state("s", &params, &optimizer).unwrap();
        csd.store_gradients("s", &grads).unwrap();
        // Before any update the aux tensors are zeroed.
        let aux0 = csd.load_optimizer_state("s", 0, 0, n).unwrap();
        assert!(aux0.as_slice().iter().all(|&x| x == 0.0));
        csd.update_subgroup(SubgroupUpdate {
            shard: "s",
            offset: 0,
            len: n,
            optimizer,
            step: 1,
            compressed: None,
        })
        .unwrap();
        // After an Adam step both moments are non-zero and match the host.
        let mut host_params = params.clone();
        let mut host_aux = optimizer.init_aux(n);
        optimizer.step(host_params.as_mut_slice(), &grads, &mut host_aux, 1);
        for (i, host) in host_aux.iter().enumerate().take(optimizer.kind().num_aux()) {
            let aux = csd.load_optimizer_state("s", i, 0, n).unwrap();
            assert_eq!(aux.as_slice(), host.as_slice(), "aux {i}");
        }
        // Unknown shard or aux index is reported as a missing shard.
        assert!(matches!(
            csd.load_optimizer_state("nope", 0, 0, 1),
            Err(CsdError::MissingShard { .. })
        ));
        assert!(matches!(
            csd.load_optimizer_state("s", 9, 0, 1),
            Err(CsdError::MissingShard { .. })
        ));
    }

    #[test]
    fn error_display_and_conversions() {
        let e: CsdError = SsdError::EmptyArray.into();
        assert!(e.to_string().contains("ssd error"));
        let e: CsdError = DramError::UnknownBuffer { id: 3 }.into();
        assert!(e.to_string().contains("device memory"));
        let e = CsdError::MissingShard { shard: "x".into() };
        assert!(e.to_string().contains("x"));
        let e: CsdError = CompressError::IndexSpaceExceeded { original_len: 1 << 40 }.into();
        assert!(e.to_string().contains("compression error"));
        assert!(e.to_string().contains("u32 index space"));
    }

    #[test]
    fn error_sources_chain_to_the_substrate_layer() {
        let e: CsdError = SsdError::EmptyArray.into();
        let source = e.source().expect("wrapped ssd error has a source");
        assert!(source.downcast_ref::<SsdError>().is_some());
        let e: CsdError = DramError::UnknownBuffer { id: 3 }.into();
        assert!(e.source().expect("source").downcast_ref::<DramError>().is_some());
        assert!(CsdError::MissingShard { shard: "x".into() }.source().is_none());
        let e: CsdError = CompressError::IndexSpaceExceeded { original_len: 1 << 40 }.into();
        assert!(e.source().expect("source").downcast_ref::<CompressError>().is_some());
    }
}
