//! The general updater kernel (paper Section V-A).
//!
//! The FPGA updater is an array of processing elements, each containing SIMD
//! AXPBY units that evaluate the moving-average recurrences of the optimizer
//! and a final element-wise parameter update. Functionally it computes
//! exactly the same arithmetic as the host optimizer kernels in [`optim`]
//! (which is why SmartUpdate is accuracy-neutral); this module adds the
//! throughput and configuration model used by the timed engines and by the
//! Fig. 14 reproduction.

use optim::{Optimizer, OptimizerKind};
use parcore::ParExecutor;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// Configuration and functional implementation of the updater kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Updater {
    /// Number of updater processing elements.
    pub num_pes: usize,
    /// SIMD AXPBY units per PE (the paper's PE has 16).
    pub axpby_per_pe: usize,
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Effective FPGA DRAM bandwidth available to the kernel, bytes/second.
    /// This — not the arithmetic — is what bounds the ≈7 GB/s of Fig. 14.
    pub dram_bytes_per_sec: f64,
}

impl Default for Updater {
    fn default() -> Self {
        Self { num_pes: 4, axpby_per_pe: 16, clock_hz: 250.0e6, dram_bytes_per_sec: 7.3e9 }
    }
}

impl Updater {
    /// Arithmetic operations the kernel spends per element for a given
    /// optimizer (AXPBY evaluations plus the final update, from Fig. 7).
    fn ops_per_element(kind: OptimizerKind) -> f64 {
        match kind {
            OptimizerKind::Adam => 8.0,
            OptimizerKind::AdamW => 9.0,
            OptimizerKind::SgdMomentum => 3.0,
            OptimizerKind::AdaGrad => 4.0,
        }
    }

    /// Bytes streamed through device memory per element: the gradient plus
    /// every FP32 optimizer-state word, read and written once.
    fn bytes_per_element(kind: OptimizerKind) -> f64 {
        // grad read (4) + state read + state write.
        4.0 + 2.0 * kind.state_bytes_per_param() as f64
    }

    /// Peak arithmetic rate of the PE array in elements per second.
    pub fn compute_elements_per_sec(&self, kind: OptimizerKind) -> f64 {
        (self.num_pes * self.axpby_per_pe) as f64 * self.clock_hz / Self::ops_per_element(kind)
    }

    /// Sustained kernel throughput in bytes of state+gradient streamed per
    /// second (the quantity plotted in Fig. 14), i.e. the minimum of the
    /// arithmetic rate and the device-DRAM bandwidth.
    pub fn throughput_bytes_per_sec(&self, kind: OptimizerKind) -> f64 {
        let compute = self.compute_elements_per_sec(kind) * Self::bytes_per_element(kind);
        compute.min(self.dram_bytes_per_sec)
    }

    /// Time to update a subgroup of `num_elements` parameters.
    pub fn update_time_secs(&self, kind: OptimizerKind, num_elements: usize) -> f64 {
        num_elements as f64 * Self::bytes_per_element(kind) / self.throughput_bytes_per_sec(kind)
    }

    /// Functionally applies one optimizer step to a subgroup held in device
    /// memory. This is the reference the equivalence tests compare against
    /// the host path — it *is* the host path, by construction.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Optimizer::step`].
    pub fn run(
        &self,
        optimizer: &Optimizer,
        params: &mut [f32],
        grads: &FlatTensor,
        aux: &mut [FlatTensor],
        step: u64,
    ) {
        optimizer.step(params, grads, aux, step);
    }

    /// Like [`Updater::run`], but fans the subgroup out across `pool` the way
    /// the PE array processes SIMD lanes in parallel. Bit-identical to the
    /// serial run for every executor (the kernels are element-wise), so
    /// SmartUpdate stays accuracy-neutral regardless of the host thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Optimizer::step`].
    pub fn run_with(
        &self,
        pool: &ParExecutor,
        optimizer: &Optimizer,
        params: &mut [f32],
        grads: &FlatTensor,
        aux: &mut [FlatTensor],
        step: u64,
    ) {
        optimizer.par_step(pool, params, grads, aux, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optim::HyperParams;

    #[test]
    fn default_throughput_reproduces_figure_14_updater_bar() {
        let updater = Updater::default();
        let gbps = updater.throughput_bytes_per_sec(OptimizerKind::Adam) / 1e9;
        // Fig. 14: the updater sustains a bit above 7 GB/s, comfortably above
        // the SSD read (~3.3 GB/s) and write (~2.6 GB/s) bandwidths.
        assert!(gbps > 7.0, "updater throughput {gbps:.2} GB/s");
        assert!(gbps > 3.3 * 2.0);
    }

    #[test]
    fn arithmetic_is_not_the_bottleneck_for_the_default_config() {
        let updater = Updater::default();
        for kind in [
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::SgdMomentum,
            OptimizerKind::AdaGrad,
        ] {
            let compute = updater.compute_elements_per_sec(kind) * Updater::bytes_per_element(kind);
            assert!(
                compute >= updater.dram_bytes_per_sec,
                "{kind:?}: compute-bound at {compute:.2e} B/s"
            );
            assert_eq!(updater.throughput_bytes_per_sec(kind), updater.dram_bytes_per_sec);
        }
    }

    #[test]
    fn a_tiny_pe_array_becomes_compute_bound() {
        let updater = Updater { num_pes: 1, axpby_per_pe: 1, ..Updater::default() };
        assert!(updater.throughput_bytes_per_sec(OptimizerKind::Adam) < updater.dram_bytes_per_sec);
    }

    #[test]
    fn update_time_scales_linearly_with_subgroup_size() {
        let updater = Updater::default();
        let t1 = updater.update_time_secs(OptimizerKind::Adam, 1_000_000);
        let t2 = updater.update_time_secs(OptimizerKind::Adam, 2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // SGD streams fewer bytes per element, so the same subgroup is faster.
        let t_sgd = updater.update_time_secs(OptimizerKind::SgdMomentum, 1_000_000);
        assert!(t_sgd < t1);
    }

    #[test]
    fn functional_run_delegates_to_the_optimizer() {
        let updater = Updater::default();
        let optimizer = Optimizer::new(
            OptimizerKind::SgdMomentum,
            HyperParams { lr: 0.5, momentum: 0.0, ..HyperParams::default() },
        );
        let mut params = vec![1.0f32, 2.0];
        let mut aux = optimizer.init_aux(2);
        let grads = FlatTensor::from_vec(vec![1.0, -1.0]);
        updater.run(&optimizer, &mut params, &grads, &mut aux, 1);
        assert_eq!(params, vec![0.5, 2.5]);
    }
}
