//! FPGA resource budget and per-kernel utilisation model (paper Table III).

use serde::{Deserialize, Serialize};

/// The programmable-logic resources of an FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaResources {
    /// Look-up tables.
    pub luts: u32,
    /// 36 Kb block RAMs.
    pub brams: u32,
    /// UltraRAM blocks.
    pub urams: u32,
    /// DSP slices.
    pub dsps: u32,
}

impl FpgaResources {
    /// The Kintex UltraScale+ KU15P inside a SmartSSD (Table II: ~522K LUTs,
    /// 984 BRAMs, 128 URAMs, 1968 DSPs).
    pub fn ku15p() -> Self {
        Self { luts: 522_000, brams: 984, urams: 128, dsps: 1968 }
    }
}

/// Absolute resource consumption of one synthesized kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUtilization {
    /// Look-up tables used.
    pub luts: u32,
    /// Block RAMs used.
    pub brams: u32,
    /// UltraRAMs used.
    pub urams: u32,
    /// DSP slices used.
    pub dsps: u32,
}

impl ResourceUtilization {
    /// Adds two utilisations component-wise.
    pub fn plus(self, other: ResourceUtilization) -> ResourceUtilization {
        ResourceUtilization {
            luts: self.luts + other.luts,
            brams: self.brams + other.brams,
            urams: self.urams + other.urams,
            dsps: self.dsps + other.dsps,
        }
    }

    /// Utilisation as percentages of a device's budget `(lut%, bram%, uram%, dsp%)`.
    pub fn percentages(&self, device: &FpgaResources) -> (f64, f64, f64, f64) {
        (
            100.0 * self.luts as f64 / device.luts as f64,
            100.0 * self.brams as f64 / device.brams as f64,
            100.0 * self.urams as f64 / device.urams as f64,
            100.0 * self.dsps as f64 / device.dsps as f64,
        )
    }

    /// Whether the kernel fits within the device's budget.
    pub fn fits(&self, device: &FpgaResources) -> bool {
        self.luts <= device.luts
            && self.brams <= device.brams
            && self.urams <= device.urams
            && self.dsps <= device.dsps
    }
}

/// A simple synthesis cost model for the Smart-Infinity kernels, calibrated to
/// the implementation results of Table III.
///
/// The model is additive: a static shell (PCIe/DMA/memory controllers), a per
/// AXPBY-unit cost for the updater datapath, staging buffers in BRAM/URAM and
/// a small routing-only decompressor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelResourceModel {
    /// Static shell consumption (platform logic present for any kernel).
    pub shell: ResourceUtilization,
    /// Cost of one SIMD AXPBY unit (FP32 multiply-add datapath + pipeline registers).
    pub per_axpby_unit: ResourceUtilization,
    /// Staging buffers for the updater (gradient/momentum/variance/parameter chunks).
    pub updater_buffers: ResourceUtilization,
    /// The Top-K decompressor (index routing, no arithmetic).
    pub decompressor: ResourceUtilization,
}

impl Default for KernelResourceModel {
    fn default() -> Self {
        Self {
            shell: ResourceUtilization { luts: 104_000, brams: 148, urams: 0, dsps: 25 },
            per_axpby_unit: ResourceUtilization { luts: 1_130, brams: 0, urams: 0, dsps: 3 },
            updater_buffers: ResourceUtilization { luts: 0, brams: 119, urams: 44, dsps: 0 },
            decompressor: ResourceUtilization { luts: 2_400, brams: 0, urams: 2, dsps: 0 },
        }
    }
}

impl KernelResourceModel {
    /// Utilisation of an updater kernel with `num_axpby_units` SIMD lanes
    /// (the paper's Adam updater uses 4 PEs × 16 AXPBY units = 64 lanes).
    pub fn updater(&self, num_axpby_units: u32) -> ResourceUtilization {
        let mut u = self.shell.plus(self.updater_buffers);
        u.luts += self.per_axpby_unit.luts * num_axpby_units;
        u.brams += self.per_axpby_unit.brams * num_axpby_units;
        u.urams += self.per_axpby_unit.urams * num_axpby_units;
        u.dsps += self.per_axpby_unit.dsps * num_axpby_units;
        u
    }

    /// Utilisation of the updater plus the Top-K decompressor (the SmartComp
    /// configuration of Table III).
    pub fn updater_with_decompressor(&self, num_axpby_units: u32) -> ResourceUtilization {
        self.updater(num_axpby_units).plus(self.decompressor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_ADAM: (f64, f64, f64, f64) = (33.66, 27.13, 34.38, 11.03);
    const PAPER_ADAM_TOPK: (f64, f64, f64, f64) = (34.12, 27.13, 35.94, 11.03);

    fn assert_close(actual: (f64, f64, f64, f64), expected: (f64, f64, f64, f64), tol: f64) {
        for (a, e) in [
            (actual.0, expected.0),
            (actual.1, expected.1),
            (actual.2, expected.2),
            (actual.3, expected.3),
        ] {
            assert!((a - e).abs() <= tol, "utilisation {a:.2}% vs paper {e:.2}%");
        }
    }

    #[test]
    fn adam_updater_matches_table_three() {
        let model = KernelResourceModel::default();
        let util = model.updater(64);
        let pct = util.percentages(&FpgaResources::ku15p());
        assert_close(pct, PAPER_ADAM, 1.5);
        assert!(util.fits(&FpgaResources::ku15p()));
    }

    #[test]
    fn adam_with_topk_matches_table_three() {
        let model = KernelResourceModel::default();
        let util = model.updater_with_decompressor(64);
        let pct = util.percentages(&FpgaResources::ku15p());
        assert_close(pct, PAPER_ADAM_TOPK, 1.5);
        // The decompressor is cheap: it only adds routing logic, no DSPs.
        let base = model.updater(64);
        assert_eq!(util.dsps, base.dsps);
        assert_eq!(util.brams, base.brams);
        assert!(util.luts > base.luts);
    }

    #[test]
    fn there_is_headroom_for_extensions() {
        // The paper notes "much room left for extra logic despite the FPGA
        // being lightweight" (Section VII-B): utilisation stays below 50%.
        let util = KernelResourceModel::default().updater_with_decompressor(64);
        let (lut, bram, uram, dsp) = util.percentages(&FpgaResources::ku15p());
        assert!(lut < 50.0 && bram < 50.0 && uram < 50.0 && dsp < 50.0);
    }

    #[test]
    fn doubling_the_pe_array_still_fits() {
        let util = KernelResourceModel::default().updater_with_decompressor(128);
        assert!(util.fits(&FpgaResources::ku15p()));
    }

    #[test]
    fn utilization_arithmetic() {
        let a = ResourceUtilization { luts: 1, brams: 2, urams: 3, dsps: 4 };
        let b = ResourceUtilization { luts: 10, brams: 20, urams: 30, dsps: 40 };
        let s = a.plus(b);
        assert_eq!(s, ResourceUtilization { luts: 11, brams: 22, urams: 33, dsps: 44 });
        let dev = FpgaResources { luts: 100, brams: 100, urams: 100, dsps: 100 };
        assert_eq!(s.percentages(&dev), (11.0, 22.0, 33.0, 44.0));
        assert!(s.fits(&dev));
        assert!(!ResourceUtilization { luts: 101, ..Default::default() }.fits(&dev));
    }
}
