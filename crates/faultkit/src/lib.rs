//! # faultkit — seeded, deterministic fault plans for the training stack
//!
//! Every layer of the reproduction is deliberately fail-free by default; this
//! crate describes *when it should not be*. A [`FaultSpec`] is plain data (it
//! rides along in a `RunSpec` JSON under the `"faults"` key) and a
//! [`FaultPlan`] turns it into reproducible decisions:
//!
//! * **Transient I/O faults** — individual SSD read/write operations fail and
//!   heal after a bounded number of retries ([`FaultInjector`], installed into
//!   `ssd::SsdDevice`).
//! * **Wear-out** — one seed-chosen device's flash goes read-only at a given
//!   step; recovery migrates its regions to a replacement (RAID-style rebuild
//!   traffic).
//! * **CSD dropout** — one seed-chosen computational storage device stops
//!   answering at a given step and is rebuilt from its still-readable media.
//! * **Stragglers and link degradation** — purely *timed* effects
//!   ([`TimedFaultEffects`]): one device's FPGA kernels run slower, and/or the
//!   shared host uplink loses bandwidth.
//!
//! Every decision is a pure function of `(seed, site, device, op index)` — a
//! splitmix64-style hash, never call-order state — so the same plan produces
//! the same fault events regardless of worker-thread count or execution mode,
//! and an empty plan produces *no* events at all (the fail-free paths stay
//! bit-identical).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default retry budget for transient faults.
pub const DEFAULT_MAX_RETRIES: u32 = 4;
/// Default cap on consecutive injected failures of a single operation.
pub const DEFAULT_MAX_BURST: u32 = 2;

/// The fault axis of a run, as plain serializable data.
///
/// All knobs are optional: an omitted knob injects nothing, and a spec with
/// every knob omitted is an *empty* plan (guaranteed byte-identical behaviour
/// to running without a plan installed). Probabilities are expressed per
/// mille (‰) so the JSON stays integer-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed from which every fault decision is derived.
    pub seed: u64,
    /// Per-mille probability (0..=1000) that any single storage operation
    /// fails transiently. Transient faults heal under bounded retry.
    pub transient_per_mille: Option<u32>,
    /// Maximum consecutive injected failures of one operation (default 2).
    /// Must stay below the retry budget so recovery always converges.
    pub max_transient_burst: Option<u32>,
    /// Retry budget of the recovery policy (default 4).
    pub max_retries: Option<u32>,
    /// Step (0-based) at which one seed-chosen device's flash wears out
    /// (writes fail until the device is rebuilt).
    pub ssd_wearout_step: Option<u64>,
    /// Step (0-based) at which one seed-chosen CSD stops answering
    /// (every operation fails until the device is rebuilt).
    pub csd_dropout_step: Option<u64>,
    /// Slowdown factor (>= 1) applied to one seed-chosen straggler device's
    /// in-storage compute in the timed model.
    pub straggler_factor: Option<f64>,
    /// Remaining-bandwidth fraction (0 < f <= 1) of the shared host uplink in
    /// the timed model.
    pub link_bandwidth_factor: Option<f64>,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a property-test baseline).
    pub fn empty(seed: u64) -> Self {
        Self {
            seed,
            transient_per_mille: None,
            max_transient_burst: None,
            max_retries: None,
            ssd_wearout_step: None,
            csd_dropout_step: None,
            straggler_factor: None,
            link_bandwidth_factor: None,
        }
    }

    /// Whether this spec injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.transient_per_mille.unwrap_or(0) == 0
            && self.ssd_wearout_step.is_none()
            && self.csd_dropout_step.is_none()
            && self.straggler_factor.is_none()
            && self.link_bandwidth_factor.is_none()
    }

    /// Validates the knobs; the message names the offending field.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for out-of-range knobs.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(p) = self.transient_per_mille {
            if p > 1000 {
                return Err(format!("faults.transient_per_mille must be <= 1000, got {p}"));
            }
        }
        let burst = self.max_transient_burst.unwrap_or(DEFAULT_MAX_BURST);
        if burst == 0 {
            return Err("faults.max_transient_burst must be positive".to_string());
        }
        let retries = self.max_retries.unwrap_or(DEFAULT_MAX_RETRIES);
        if retries <= burst {
            return Err(format!(
                "faults.max_retries ({retries}) must exceed max_transient_burst ({burst}) \
                 so bounded retry always converges"
            ));
        }
        if let Some(f) = self.straggler_factor {
            if !f.is_finite() || f < 1.0 {
                return Err(format!("faults.straggler_factor must be finite and >= 1, got {f}"));
            }
        }
        if let Some(f) = self.link_bandwidth_factor {
            if !f.is_finite() || f <= 0.0 || f > 1.0 {
                return Err(format!("faults.link_bandwidth_factor must be in (0, 1], got {f}"));
            }
        }
        Ok(())
    }
}

/// The kind of storage operation a transient fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOpKind {
    /// A read from the media.
    Read,
    /// A write to the media.
    Write,
}

impl fmt::Display for FaultOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOpKind::Read => write!(f, "read"),
            FaultOpKind::Write => write!(f, "write"),
        }
    }
}

/// splitmix64 finalizer: the only randomness primitive in the crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A validated [`FaultSpec`] plus the decision functions derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Wraps a spec (callers should [`FaultSpec::validate`] first; the plan
    /// clamps rather than panics on out-of-range knobs).
    pub fn new(spec: FaultSpec) -> Self {
        Self { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }

    /// The retry budget the recovery policy should use.
    pub fn max_retries(&self) -> u32 {
        self.spec.max_retries.unwrap_or(DEFAULT_MAX_RETRIES)
    }

    /// Per-device transient-fault injector for device `device`.
    pub fn injector(&self, device: u64) -> FaultInjector {
        FaultInjector {
            seed: self.spec.seed,
            device,
            per_mille: self.spec.transient_per_mille.unwrap_or(0).min(1000),
            burst_cap: self.spec.max_transient_burst.unwrap_or(DEFAULT_MAX_BURST).max(1),
            op_index: 0,
            pending: 0,
            decided: false,
        }
    }

    /// Which device (if any) wears out, given the fleet size.
    pub fn wearout_device(&self, num_devices: usize) -> Option<usize> {
        self.spec.ssd_wearout_step.map(|_| {
            (mix(self.spec.seed ^ 0x5753_4541_524f_5554) % num_devices.max(1) as u64) as usize
        })
    }

    /// The step at which the wear-out fires.
    pub fn wearout_step(&self) -> Option<u64> {
        self.spec.ssd_wearout_step
    }

    /// Which CSD (if any) drops out, given the fleet size.
    pub fn dropout_device(&self, num_devices: usize) -> Option<usize> {
        self.spec.csd_dropout_step.map(|_| {
            (mix(self.spec.seed ^ 0x4452_4f50_4f55_5421) % num_devices.max(1) as u64) as usize
        })
    }

    /// The step at which the dropout fires.
    pub fn dropout_step(&self) -> Option<u64> {
        self.spec.csd_dropout_step
    }

    /// Which device (if any) straggles, given the fleet size.
    pub fn straggler_device(&self, num_devices: usize) -> Option<usize> {
        self.spec.straggler_factor.map(|_| {
            (mix(self.spec.seed ^ 0x5354_5241_4747_4c52) % num_devices.max(1) as u64) as usize
        })
    }

    /// The timed-model effects of this plan for a fleet of `num_devices`.
    pub fn timed_effects(&self, num_devices: usize) -> TimedFaultEffects {
        TimedFaultEffects {
            straggler: self
                .straggler_device(num_devices)
                .map(|d| (d, self.spec.straggler_factor.unwrap_or(1.0).max(1.0))),
            uplink_bandwidth_factor: self.spec.link_bandwidth_factor,
        }
    }
}

/// The purely *timed* consequences of a fault plan: a straggler device and a
/// degraded shared uplink. Functional results are unaffected by these.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimedFaultEffects {
    /// `(device index, slowdown factor >= 1)` of the straggling device.
    pub straggler: Option<(usize, f64)>,
    /// Remaining-bandwidth fraction of the shared host uplink.
    pub uplink_bandwidth_factor: Option<f64>,
}

impl TimedFaultEffects {
    /// Whether the effects change anything.
    pub fn is_empty(&self) -> bool {
        self.straggler.is_none() && self.uplink_bandwidth_factor.is_none()
    }

    /// The compute slowdown factor for device `dev` (1.0 when unaffected).
    pub fn compute_slowdown(&self, dev: usize) -> f64 {
        match self.straggler {
            Some((d, f)) if d == dev => f,
            _ => 1.0,
        }
    }
}

/// A transient fault that was injected into a storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Index of the device the operation targeted.
    pub device: u64,
    /// Operation kind.
    pub kind: FaultOpKind,
    /// Per-device operation index the fault was injected into.
    pub op_index: u64,
    /// Failures still pending for this operation (0 means the next retry
    /// succeeds).
    pub remaining: u32,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected transient {} fault on device {} (op #{}, {} more pending)",
            self.kind, self.device, self.op_index, self.remaining
        )
    }
}

// The root of the error `source()` chain for injected faults.
impl std::error::Error for InjectedFault {}

/// Per-device transient-fault state machine.
///
/// One injector guards one device's operation stream. For each operation it
/// hashes `(seed, device, op index, kind)` into a burst length `0..=burst`;
/// the operation then fails that many consecutive attempts before succeeding.
/// The op index only advances on success, so a retried operation is the *same*
/// decision — deterministic under any retry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    device: u64,
    per_mille: u32,
    burst_cap: u32,
    op_index: u64,
    pending: u32,
    decided: bool,
}

impl FaultInjector {
    /// Checks whether the next attempt of the current operation fails.
    ///
    /// # Errors
    ///
    /// Returns the injected fault description when the attempt must fail.
    pub fn check(&mut self, kind: FaultOpKind) -> Result<(), InjectedFault> {
        if !self.decided {
            self.pending = self.burst_for(kind, self.op_index);
            self.decided = true;
        }
        if self.pending > 0 {
            self.pending -= 1;
            return Err(InjectedFault {
                device: self.device,
                kind,
                op_index: self.op_index,
                remaining: self.pending,
            });
        }
        self.decided = false;
        self.op_index += 1;
        Ok(())
    }

    /// How many consecutive failures op `op_index` of `kind` suffers.
    fn burst_for(&self, kind: FaultOpKind, op_index: u64) -> u32 {
        if self.per_mille == 0 {
            return 0;
        }
        let salt = match kind {
            FaultOpKind::Read => 0x52_44u64,
            FaultOpKind::Write => 0x57_52u64,
        };
        let h = mix(self.seed ^ mix(self.device ^ mix(op_index ^ mix(salt))));
        if h % 1000 < u64::from(self.per_mille) {
            1 + ((h >> 32) % u64::from(self.burst_cap)) as u32
        } else {
            0
        }
    }

    /// Per-device operations successfully completed so far.
    pub fn ops_completed(&self) -> u64 {
        self.op_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(per_mille: u32) -> FaultSpec {
        FaultSpec { transient_per_mille: Some(per_mille), ..FaultSpec::empty(42) }
    }

    #[test]
    fn empty_spec_injects_nothing() {
        let plan = FaultPlan::new(FaultSpec::empty(7));
        assert!(plan.is_empty());
        let mut inj = plan.injector(0);
        for _ in 0..10_000 {
            inj.check(FaultOpKind::Read).unwrap();
            inj.check(FaultOpKind::Write).unwrap();
        }
        assert!(plan.wearout_device(4).is_none());
        assert!(plan.dropout_device(4).is_none());
        assert!(plan.timed_effects(4).is_empty());
    }

    #[test]
    fn transient_faults_fire_at_roughly_the_requested_rate() {
        let plan = FaultPlan::new(spec(100)); // 10%
        let mut inj = plan.injector(3);
        let mut failures = 0u32;
        let ops = 20_000;
        for _ in 0..ops {
            while inj.check(FaultOpKind::Write).is_err() {
                failures += 1;
            }
        }
        assert_eq!(inj.ops_completed(), ops);
        // ~10% of ops fail, each with a burst of 1..=2 -> 10%..20% of ops.
        let rate = f64::from(failures) / ops as f64;
        assert!((0.05..0.3).contains(&rate), "failure rate {rate}");
    }

    #[test]
    fn faults_heal_within_the_burst_cap_and_decisions_replay_exactly() {
        // Same seed + device -> identical event sequence, attempt by attempt.
        let plan = FaultPlan::new(spec(300));
        let run = || {
            let mut inj = plan.injector(1);
            let mut log = Vec::new();
            for _ in 0..500 {
                let mut attempts = 0u32;
                while let Err(fault) = inj.check(FaultOpKind::Read) {
                    attempts += 1;
                    assert!(attempts <= DEFAULT_MAX_BURST, "burst exceeded cap: {fault}");
                }
                log.push(attempts);
            }
            log
        };
        assert_eq!(run(), run());
        // A different device sees a different (but still valid) sequence.
        let mut other = plan.injector(2);
        let mut diverged = false;
        let mut reference = plan.injector(1);
        for _ in 0..500 {
            let a = std::iter::from_fn(|| other.check(FaultOpKind::Read).err()).count();
            let b = std::iter::from_fn(|| reference.check(FaultOpKind::Read).err()).count();
            diverged |= a != b;
        }
        assert!(diverged, "independent devices must not share fault schedules");
    }

    #[test]
    fn chosen_devices_are_stable_and_in_range() {
        let s = FaultSpec {
            ssd_wearout_step: Some(3),
            csd_dropout_step: Some(5),
            straggler_factor: Some(2.5),
            link_bandwidth_factor: Some(0.5),
            ..FaultSpec::empty(9)
        };
        let plan = FaultPlan::new(s);
        for n in 1..10 {
            let w = plan.wearout_device(n).unwrap();
            let d = plan.dropout_device(n).unwrap();
            assert!(w < n && d < n);
            assert_eq!(plan.wearout_device(n).unwrap(), w);
        }
        assert_eq!(plan.wearout_step(), Some(3));
        assert_eq!(plan.dropout_step(), Some(5));
        let eff = plan.timed_effects(6);
        assert_eq!(eff.uplink_bandwidth_factor, Some(0.5));
        let (dev, f) = eff.straggler.unwrap();
        assert!(dev < 6);
        assert_eq!(f, 2.5);
        assert_eq!(eff.compute_slowdown(dev), 2.5);
        assert_eq!(eff.compute_slowdown((dev + 1) % 6), 1.0);
    }

    #[test]
    fn validation_rejects_out_of_range_knobs() {
        assert!(FaultSpec::empty(0).validate().is_ok());
        assert!(spec(1000).validate().is_ok());
        assert!(spec(1001).validate().unwrap_err().contains("transient_per_mille"));
        let bad = FaultSpec { max_transient_burst: Some(0), ..spec(10) };
        assert!(bad.validate().unwrap_err().contains("max_transient_burst"));
        let bad = FaultSpec { max_retries: Some(2), ..spec(10) };
        assert!(bad.validate().unwrap_err().contains("must exceed"));
        let bad = FaultSpec { straggler_factor: Some(0.5), ..FaultSpec::empty(0) };
        assert!(bad.validate().unwrap_err().contains("straggler_factor"));
        let bad = FaultSpec { link_bandwidth_factor: Some(0.0), ..FaultSpec::empty(0) };
        assert!(bad.validate().unwrap_err().contains("link_bandwidth_factor"));
        let bad = FaultSpec { link_bandwidth_factor: Some(1.5), ..FaultSpec::empty(0) };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = FaultSpec {
            transient_per_mille: Some(25),
            max_transient_burst: Some(2),
            max_retries: Some(5),
            ssd_wearout_step: Some(2),
            csd_dropout_step: None,
            straggler_factor: Some(3.0),
            link_bandwidth_factor: Some(0.25),
            ..FaultSpec::empty(1234)
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Omitted keys deserialize as None.
        let sparse: FaultSpec = serde_json::from_str(r#"{"seed": 7}"#).unwrap();
        assert_eq!(sparse, FaultSpec::empty(7));
        assert!(sparse.is_empty());
    }
}
