//! The hardware description of one training server.

use fabric::{LinkRates, PlatformSpec, StorageKind, TopologyKind};
use llm::{CpuSpec, GpuSpec};
use serde::{Deserialize, Serialize};
use ssd::BandwidthProfile;

/// Everything the timed engines need to know about the machine: which GPU(s),
/// the host CPU's update throughput, how many storage devices of which kind,
/// their bandwidths, and where everything sits in the PCIe topology.
///
/// Presets mirror the paper's test-bed (Table II): a Xeon Gold 6342 host, an
/// RTX A5000 by default, SmartSSD-class NVMe devices behind an H3 Falcon PCIe
/// expansion switch, and a 16 GB/s shared host interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// GPU model used for forward/backward compute.
    pub gpu: GpuSpec,
    /// Number of GPUs (tensor parallelism within the server).
    pub num_gpus: usize,
    /// Host CPU (baseline update path).
    pub cpu: CpuSpec,
    /// Per-device NVMe bandwidth.
    pub ssd: BandwidthProfile,
    /// Number of storage devices behind the expansion switch.
    pub num_devices: usize,
    /// Plain SSDs (baseline / RAID0) or CSDs (Smart-Infinity).
    pub storage: StorageKind,
    /// Default or congested GPU placement.
    pub topology: TopologyKind,
    /// PCIe link bandwidths.
    pub rates: LinkRates,
    /// Sustained FPGA updater throughput in bytes of state+gradient per
    /// second (only meaningful for CSD platforms).
    pub fpga_update_bytes_per_sec: f64,
    /// Sustained FPGA decompressor throughput in bytes of dense gradient
    /// produced per second (only meaningful for CSD platforms).
    pub fpga_decompress_bytes_per_sec: f64,
}

impl MachineConfig {
    /// The paper's baseline: ZeRO-Infinity with `num_ssds` plain NVMe SSDs in
    /// software RAID0, one RTX A5000, default topology.
    pub fn baseline_raid0(num_ssds: usize) -> Self {
        assert!(num_ssds > 0, "at least one storage device is required");
        Self {
            gpu: GpuSpec::a5000(),
            num_gpus: 1,
            cpu: CpuSpec::xeon_gold_6342(),
            ssd: BandwidthProfile::smartssd_nvme(),
            num_devices: num_ssds,
            storage: StorageKind::PlainSsd,
            topology: TopologyKind::Default,
            rates: LinkRates::default(),
            fpga_update_bytes_per_sec: 7.3e9,
            fpga_decompress_bytes_per_sec: 3.8e9,
        }
    }

    /// The Smart-Infinity platform: `num_csds` SmartSSDs, one RTX A5000,
    /// default topology.
    pub fn smart_infinity(num_csds: usize) -> Self {
        Self { storage: StorageKind::Csd, ..Self::baseline_raid0(num_csds) }
    }

    /// The congested multi-GPU topology of Fig. 17: `num_gpus` RTX A4000s
    /// share the expansion switch with `num_csds` SmartSSDs.
    pub fn congested_multi_gpu(num_csds: usize, num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "at least one GPU is required");
        Self {
            gpu: GpuSpec::a4000(),
            num_gpus,
            topology: TopologyKind::Congested,
            ..Self::smart_infinity(num_csds)
        }
    }

    /// Replaces the GPU model (e.g. [`GpuSpec::a100`] for Section VII-E).
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Replaces the per-device SSD bandwidth profile.
    pub fn with_ssd(mut self, ssd: BandwidthProfile) -> Self {
        self.ssd = ssd;
        self
    }

    /// Replaces the PCIe link rates.
    pub fn with_rates(mut self, rates: LinkRates) -> Self {
        self.rates = rates;
        self
    }

    /// Overrides the FPGA kernel throughputs (updater, decompressor), in
    /// bytes per second.
    pub fn with_fpga_throughput(mut self, update: f64, decompress: f64) -> Self {
        self.fpga_update_bytes_per_sec = update;
        self.fpga_decompress_bytes_per_sec = decompress;
        self
    }

    /// The fabric platform spec corresponding to this machine.
    pub fn platform_spec(&self) -> PlatformSpec {
        PlatformSpec {
            num_devices: self.num_devices,
            storage: self.storage,
            num_gpus: self.num_gpus,
            topology: self.topology,
            rates: self.rates,
        }
    }

    /// Whether the storage devices are CSDs.
    pub fn is_csd(&self) -> bool {
        self.storage == StorageKind::Csd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper_testbed() {
        let base = MachineConfig::baseline_raid0(6);
        assert_eq!(base.num_devices, 6);
        assert_eq!(base.gpu.name, "A5000");
        assert!(!base.is_csd());
        assert_eq!(base.topology, TopologyKind::Default);

        let smart = MachineConfig::smart_infinity(10);
        assert!(smart.is_csd());
        assert_eq!(smart.num_devices, 10);

        let congested = MachineConfig::congested_multi_gpu(10, 3);
        assert_eq!(congested.num_gpus, 3);
        assert_eq!(congested.gpu.name, "A4000");
        assert_eq!(congested.topology, TopologyKind::Congested);
    }

    #[test]
    fn builders_override_fields() {
        let m = MachineConfig::baseline_raid0(2)
            .with_gpu(GpuSpec::a100())
            .with_ssd(BandwidthProfile::new(1.0e9, 0.5e9))
            .with_fpga_throughput(9.0e9, 4.0e9);
        assert_eq!(m.gpu.name, "A100");
        assert_eq!(m.ssd.read_bytes_per_sec, 1.0e9);
        assert_eq!(m.fpga_update_bytes_per_sec, 9.0e9);
        let spec = m.platform_spec();
        assert_eq!(spec.num_devices, 2);
        assert_eq!(spec.storage, StorageKind::PlainSsd);
    }

    #[test]
    #[should_panic(expected = "at least one storage device")]
    fn zero_devices_panics() {
        MachineConfig::baseline_raid0(0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        MachineConfig::congested_multi_gpu(1, 0);
    }
}
