//! A small, genuinely trained classifier used for the accuracy studies.
//!
//! The paper's fine-tuning experiments (Table IV, Fig. 16) demonstrate two
//! claims: SmartUpdate is accuracy-neutral (it is bit-identical to the
//! baseline) and SmartComp's lossy Top-K gradient compression barely moves
//! the fine-tuning accuracy across compression ratios from 10% down to 1%.
//! The first claim is established by the equivalence tests; this module
//! reproduces the second on real optimisation runs: a two-layer MLP
//! classifier trained on synthetic Gaussian-mixture "GLUE-like" tasks, with
//! gradients optionally Top-K compressed (plus error feedback) before the
//! update — exactly the dataflow SmartComp implements on the CSD.

use gradcomp::{Compressor, ErrorFeedback};
use optim::{HyperParams, Optimizer, OptimizerKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

use crate::functional::GradientSource;

/// A two-layer MLP classifier over flat parameters.
///
/// Parameter layout (flattened, in order): `W1 [input×hidden]`, `b1 [hidden]`,
/// `W2 [hidden×classes]`, `b2 [classes]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpModel {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl MlpModel {
    /// Creates a model description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(input_dim: usize, hidden_dim: usize, num_classes: usize) -> Self {
        assert!(input_dim > 0 && hidden_dim > 0 && num_classes > 0, "dimensions must be positive");
        Self { input_dim, hidden_dim, num_classes }
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.input_dim * self.hidden_dim
            + self.hidden_dim
            + self.hidden_dim * self.num_classes
            + self.num_classes
    }

    /// Xavier-style random initialisation.
    pub fn init_params(&self, seed: u64) -> FlatTensor {
        let w1_scale = (2.0 / (self.input_dim + self.hidden_dim) as f32).sqrt();
        let w2_scale = (2.0 / (self.hidden_dim + self.num_classes) as f32).sqrt();
        let mut params = FlatTensor::zeros(self.num_params());
        let w1 = FlatTensor::randn(self.input_dim * self.hidden_dim, w1_scale, seed);
        let w2 =
            FlatTensor::randn(self.hidden_dim * self.num_classes, w2_scale, seed.wrapping_add(1));
        params.write_slice(0, w1.as_slice());
        params.write_slice(self.w2_offset(), w2.as_slice());
        params
    }

    fn b1_offset(&self) -> usize {
        self.input_dim * self.hidden_dim
    }

    fn w2_offset(&self) -> usize {
        self.b1_offset() + self.hidden_dim
    }

    fn b2_offset(&self) -> usize {
        self.w2_offset() + self.hidden_dim * self.num_classes
    }

    /// Computes per-class logits for a batch of `x` (row-major, `n × input_dim`).
    fn logits(&self, params: &FlatTensor, x: &[f32]) -> Vec<f32> {
        let n = x.len() / self.input_dim;
        let p = params.as_slice();
        let (h, c) = (self.hidden_dim, self.num_classes);
        let mut logits = vec![0.0f32; n * c];
        let mut hidden = vec![0.0f32; h];
        for i in 0..n {
            let xi = &x[i * self.input_dim..(i + 1) * self.input_dim];
            for (j, hj) in hidden.iter_mut().enumerate() {
                let mut acc = p[self.b1_offset() + j];
                for (k, &xk) in xi.iter().enumerate() {
                    acc += xk * p[k * h + j];
                }
                *hj = acc.max(0.0); // ReLU
            }
            for cls in 0..c {
                let mut acc = p[self.b2_offset() + cls];
                for (j, &hj) in hidden.iter().enumerate() {
                    acc += hj * p[self.w2_offset() + j * c + cls];
                }
                logits[i * c + cls] = acc;
            }
        }
        logits
    }

    /// Mean cross-entropy loss and its gradient with respect to the flat
    /// parameters, for a batch `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or shapes are inconsistent.
    pub fn loss_and_grad(&self, params: &FlatTensor, x: &[f32], y: &[usize]) -> (f32, FlatTensor) {
        let n = y.len();
        assert!(n > 0, "batch must be non-empty");
        assert_eq!(x.len(), n * self.input_dim, "feature shape mismatch");
        let p = params.as_slice();
        let (h, c) = (self.hidden_dim, self.num_classes);
        let mut grad = FlatTensor::zeros(self.num_params());
        let g = grad.as_mut_slice();
        let mut total_loss = 0.0f64;
        let mut hidden = vec![0.0f32; h];
        let mut probs = vec![0.0f32; c];
        for i in 0..n {
            let xi = &x[i * self.input_dim..(i + 1) * self.input_dim];
            // Forward.
            for (j, hj) in hidden.iter_mut().enumerate() {
                let mut acc = p[self.b1_offset() + j];
                for (k, &xk) in xi.iter().enumerate() {
                    acc += xk * p[k * h + j];
                }
                *hj = acc.max(0.0);
            }
            let mut max_logit = f32::NEG_INFINITY;
            for cls in 0..c {
                let mut acc = p[self.b2_offset() + cls];
                for (j, &hj) in hidden.iter().enumerate() {
                    acc += hj * p[self.w2_offset() + j * c + cls];
                }
                probs[cls] = acc;
                max_logit = max_logit.max(acc);
            }
            let mut denom = 0.0f32;
            for prob in probs.iter_mut() {
                *prob = (*prob - max_logit).exp();
                denom += *prob;
            }
            for prob in probs.iter_mut() {
                *prob /= denom;
            }
            total_loss += -(probs[y[i]].max(1e-12).ln()) as f64;
            // Backward: dL/dlogit = prob - onehot.
            for cls in 0..c {
                let dlogit = (probs[cls] - if cls == y[i] { 1.0 } else { 0.0 }) / n as f32;
                g[self.b2_offset() + cls] += dlogit;
                for (j, &hj) in hidden.iter().enumerate() {
                    g[self.w2_offset() + j * c + cls] += dlogit * hj;
                }
            }
            // Backprop into the hidden layer.
            for (j, &hj) in hidden.iter().enumerate() {
                if hj <= 0.0 {
                    continue; // ReLU gate
                }
                let mut dh = 0.0f32;
                for cls in 0..c {
                    let dlogit = (probs[cls] - if cls == y[i] { 1.0 } else { 0.0 }) / n as f32;
                    dh += dlogit * p[self.w2_offset() + j * c + cls];
                }
                g[self.b1_offset() + j] += dh;
                for (k, &xk) in xi.iter().enumerate() {
                    g[k * h + j] += dh * xk;
                }
            }
        }
        ((total_loss / n as f64) as f32, grad)
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, params: &FlatTensor, x: &[f32], y: &[usize]) -> f64 {
        let n = y.len();
        if n == 0 {
            return 0.0;
        }
        let logits = self.logits(params, x);
        let c = self.num_classes;
        let correct = (0..n)
            .filter(|&i| {
                let row = &logits[i * c..(i + 1) * c];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(idx, _)| idx)
                    .unwrap_or(0);
                pred == y[i]
            })
            .count();
        correct as f64 / n as f64
    }
}

/// A synthetic classification dataset (train + test split).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Task name (for reporting).
    pub name: String,
    /// Feature dimension.
    pub input_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training features, row-major `n × input_dim`.
    pub train_x: Vec<f32>,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Held-out features.
    pub test_x: Vec<f32>,
    /// Held-out labels.
    pub test_y: Vec<usize>,
}

impl Dataset {
    /// Generates a Gaussian-mixture classification task: `num_classes`
    /// cluster centres in `input_dim` dimensions, samples perturbed with
    /// isotropic noise. Higher `noise` makes the task harder (lower
    /// achievable accuracy), which is how the different GLUE-like tasks are
    /// distinguished.
    pub fn gaussian_blobs(
        name: &str,
        samples_per_class: usize,
        input_dim: usize,
        num_classes: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centres: Vec<f32> =
            (0..num_classes * input_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut samples: Vec<(Vec<f32>, usize)> = Vec::new();
        for class in 0..num_classes {
            for _ in 0..samples_per_class {
                let x: Vec<f32> = (0..input_dim)
                    .map(|d| {
                        centres[class * input_dim + d]
                            + noise * (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0))
                    })
                    .collect();
                samples.push((x, class));
            }
        }
        samples.shuffle(&mut rng);
        let split = samples.len() * 4 / 5;
        let (train, test) = samples.split_at(split);
        let flatten = |rows: &[(Vec<f32>, usize)]| {
            let mut x = Vec::with_capacity(rows.len() * input_dim);
            let mut y = Vec::with_capacity(rows.len());
            for (features, label) in rows {
                x.extend_from_slice(features);
                y.push(*label);
            }
            (x, y)
        };
        let (train_x, train_y) = flatten(train);
        let (test_x, test_y) = flatten(test);
        Self { name: name.to_string(), input_dim, num_classes, train_x, train_y, test_x, test_y }
    }

    /// The four GLUE-like tasks used by the Table IV reproduction, with
    /// difficulties chosen to span the same accuracy range as the paper's
    /// MNLI / QQP / SST-2 / QNLI results.
    pub fn glue_like_suite(seed: u64) -> Vec<Dataset> {
        vec![
            Dataset::gaussian_blobs("MNLI-like", 300, 24, 3, 1.35, seed),
            Dataset::gaussian_blobs("QQP-like", 400, 16, 2, 1.05, seed + 1),
            Dataset::gaussian_blobs("SST2-like", 400, 12, 2, 0.85, seed + 2),
            Dataset::gaussian_blobs("QNLI-like", 300, 16, 2, 0.95, seed + 3),
        ]
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Number of held-out samples.
    pub fn test_len(&self) -> usize {
        self.test_y.len()
    }
}

/// Configuration of one fine-tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper fixes 4).
    pub batch_size: usize,
    /// Optimizer algorithm.
    pub optimizer: OptimizerKind,
    /// Learning rate.
    pub lr: f32,
    /// If set, gradients are Top-K compressed (with error feedback) to this
    /// keep ratio before the update — the SmartComp dataflow. `None` trains
    /// with exact gradients (baseline / SmartUpdate).
    pub keep_ratio: Option<f64>,
    /// RNG seed for shuffling and initialisation.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 4,
            optimizer: OptimizerKind::Adam,
            lr: 5e-3,
            keep_ratio: None,
            seed: 0,
        }
    }
}

/// Result of one fine-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainResult {
    /// Final accuracy on the held-out split.
    pub test_accuracy: f64,
    /// Final accuracy on the training split.
    pub train_accuracy: f64,
    /// Mean loss of the final epoch.
    pub final_loss: f32,
    /// Fraction of gradient volume actually transferred (1.0 without compression).
    pub transfer_ratio: f64,
}

/// Trains `model` on `dataset` and reports the held-out accuracy.
///
/// When `config.keep_ratio` is set, each mini-batch gradient is passed through
/// error-feedback + Top-K compression and then *decompressed* before the
/// optimizer step, so the parameter update sees exactly the sparsified
/// gradient the CSD decompressor would reconstruct.
pub fn train_classifier(model: &MlpModel, dataset: &Dataset, config: &TrainConfig) -> TrainResult {
    assert_eq!(model.input_dim, dataset.input_dim, "model/dataset input dimension mismatch");
    assert_eq!(model.num_classes, dataset.num_classes, "model/dataset class count mismatch");
    let optimizer =
        Optimizer::new(config.optimizer, HyperParams { lr: config.lr, ..Default::default() });
    let mut params = model.init_params(config.seed);
    let mut aux = optimizer.init_aux(params.len());
    let compressor = config.keep_ratio.map(Compressor::top_k);
    let mut feedback = ErrorFeedback::new(params.len());
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(17));
    let mut order: Vec<usize> = (0..dataset.train_len()).collect();
    let mut step = 0u64;
    let mut final_loss = 0.0f32;
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for batch in order.chunks(config.batch_size) {
            let mut x = Vec::with_capacity(batch.len() * dataset.input_dim);
            let mut y = Vec::with_capacity(batch.len());
            for &i in batch {
                x.extend_from_slice(
                    &dataset.train_x[i * dataset.input_dim..(i + 1) * dataset.input_dim],
                );
                y.push(dataset.train_y[i]);
            }
            let (loss, grads) = model.loss_and_grad(&params, &x, &y);
            epoch_loss += loss as f64;
            batches += 1;
            step += 1;
            let effective = match &compressor {
                None => grads,
                Some(c) => {
                    // Allocation-free SmartComp dataflow: correct the owned
                    // gradient buffer in place, update the residual by
                    // scatter-zeroing the kept coordinates, then reuse the
                    // same buffer for the decompressed (sparsified) gradient.
                    let mut corrected = grads;
                    feedback.apply_in_place(&mut corrected);
                    let compressed = c.compress(&corrected);
                    feedback.update(&corrected, &compressed);
                    compressed.decompress_into(corrected.as_mut_slice());
                    corrected
                }
            };
            optimizer.step(params.as_mut_slice(), &effective, &mut aux, step);
        }
        final_loss = (epoch_loss / batches.max(1) as f64) as f32;
    }
    TrainResult {
        test_accuracy: model.accuracy(&params, &dataset.test_x, &dataset.test_y),
        train_accuracy: model.accuracy(&params, &dataset.train_x, &dataset.train_y),
        final_loss,
        transfer_ratio: compressor.map_or(1.0, |c| c.transfer_ratio()),
    }
}

/// A [`GradientSource`] backed by a real MLP on a real dataset, so the
/// functional offload engines can be driven by genuine gradients.
#[derive(Debug, Clone)]
pub struct MlpGradientSource {
    model: MlpModel,
    dataset: Dataset,
    batch_size: usize,
    rng: ChaCha8Rng,
}

impl MlpGradientSource {
    /// Creates a gradient source drawing random mini-batches from `dataset`.
    pub fn new(model: MlpModel, dataset: Dataset, batch_size: usize, seed: u64) -> Self {
        Self { model, dataset, batch_size, rng: ChaCha8Rng::seed_from_u64(seed) }
    }
}

impl GradientSource for MlpGradientSource {
    fn num_params(&self) -> usize {
        self.model.num_params()
    }

    fn gradients(&mut self, _step: u64, params_fp16: &FlatTensor) -> FlatTensor {
        let n = self.dataset.train_len();
        let mut x = Vec::with_capacity(self.batch_size * self.dataset.input_dim);
        let mut y = Vec::with_capacity(self.batch_size);
        for _ in 0..self.batch_size {
            let i = self.rng.gen_range(0..n);
            x.extend_from_slice(
                &self.dataset.train_x[i * self.dataset.input_dim..(i + 1) * self.dataset.input_dim],
            );
            y.push(self.dataset.train_y[i]);
        }
        let (_, grads) = self.model.loss_and_grad(params_fp16, &x, &y);
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_matches_finite_differences() {
        let model = MlpModel::new(4, 6, 3);
        let params = model.init_params(1);
        let x: Vec<f32> = (0..8).map(|i| (i as f32) / 8.0 - 0.5).collect();
        let y = vec![0usize, 2];
        let (_, grad) = model.loss_and_grad(&params, &x, &y);
        let eps = 1e-3f32;
        for &idx in &[0usize, 5, model.num_params() - 1, model.num_params() / 2] {
            let mut plus = params.clone();
            plus.as_mut_slice()[idx] += eps;
            let (lp, _) = model.loss_and_grad(&plus, &x, &y);
            let mut minus = params.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lm, _) = model.loss_and_grad(&minus, &x, &y);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reaches_high_accuracy_on_an_easy_task() {
        let dataset = Dataset::gaussian_blobs("easy", 150, 8, 3, 0.15, 42);
        let model = MlpModel::new(8, 16, 3);
        let result = train_classifier(&model, &dataset, &TrainConfig::default());
        assert!(result.test_accuracy > 0.9, "accuracy {:.3}", result.test_accuracy);
        assert!(result.train_accuracy >= result.test_accuracy - 0.1);
        assert_eq!(result.transfer_ratio, 1.0);
    }

    #[test]
    fn compressed_training_stays_close_to_exact_training() {
        let dataset = Dataset::gaussian_blobs("medium", 200, 16, 2, 0.4, 7);
        let model = MlpModel::new(16, 24, 2);
        let exact = train_classifier(&model, &dataset, &TrainConfig::default());
        let compressed = train_classifier(
            &model,
            &dataset,
            &TrainConfig { keep_ratio: Some(0.05), epochs: 4, ..TrainConfig::default() },
        );
        assert!(compressed.transfer_ratio < 0.11);
        assert!(
            compressed.test_accuracy > exact.test_accuracy - 0.06,
            "exact {:.3} vs compressed {:.3}",
            exact.test_accuracy,
            compressed.test_accuracy
        );
    }

    #[test]
    fn dataset_generation_is_deterministic_and_split() {
        let a = Dataset::gaussian_blobs("t", 100, 8, 2, 0.3, 9);
        let b = Dataset::gaussian_blobs("t", 100, 8, 2, 0.3, 9);
        assert_eq!(a, b);
        assert_eq!(a.train_len() + a.test_len(), 200);
        assert!(a.train_len() > a.test_len());
        assert_eq!(a.train_x.len(), a.train_len() * 8);
        let suite = Dataset::glue_like_suite(1);
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].name, "MNLI-like");
    }

    #[test]
    fn mlp_gradient_source_produces_finite_gradients() {
        let dataset = Dataset::gaussian_blobs("t", 50, 8, 2, 0.3, 3);
        let model = MlpModel::new(8, 8, 2);
        let mut source = MlpGradientSource::new(model, dataset, 4, 5);
        let params = model.init_params(0);
        let g = source.gradients(1, &params);
        assert_eq!(g.len(), model.num_params());
        assert!(!g.has_nan_or_inf());
        assert!(g.l2_norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        MlpModel::new(0, 4, 2);
    }
}
