//! Per-iteration timing reports (the unit of every speedup figure).

use serde::{Deserialize, Serialize};

/// The wall-clock breakdown of one training iteration, split the same way the
/// paper splits it: forward, backward including gradient offload, and update
/// including optimizer-state upload/offload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IterationReport {
    /// Forward-pass seconds.
    pub forward_s: f64,
    /// Backward-pass seconds, including gradient offload to storage.
    pub backward_s: f64,
    /// Update seconds, including optimizer-state upload/offload (baseline) or
    /// CSD-internal transfers and parameter upstreaming (Smart-Infinity).
    pub update_s: f64,
}

impl IterationReport {
    /// Creates a report from the three phase durations.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative or not finite.
    pub fn new(forward_s: f64, backward_s: f64, update_s: f64) -> Self {
        for (name, v) in [("forward", forward_s), ("backward", backward_s), ("update", update_s)] {
            assert!(v.is_finite() && v >= 0.0, "{name} duration must be non-negative, got {v}");
        }
        Self { forward_s, backward_s, update_s }
    }

    /// Total iteration time in seconds.
    pub fn total_s(&self) -> f64 {
        self.forward_s + self.backward_s + self.update_s
    }

    /// Fraction of the iteration spent in the update phase.
    pub fn update_fraction(&self) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            self.update_s / self.total_s()
        }
    }

    /// Speedup of `self` relative to a baseline report (baseline time divided
    /// by this report's time).
    ///
    /// # Panics
    ///
    /// Panics if this report's total time is zero.
    pub fn speedup_over(&self, baseline: &IterationReport) -> f64 {
        assert!(self.total_s() > 0.0, "cannot compute speedup of a zero-time iteration");
        baseline.total_s() / self.total_s()
    }

    /// The three phases as `(label, seconds)` pairs, in paper order.
    pub fn phases(&self) -> [(&'static str, f64); 3] {
        [
            ("FW", self.forward_s),
            ("BW+Grad. Offload", self.backward_s),
            ("Update+Opt. Upload/Offload", self.update_s),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let r = IterationReport::new(1.0, 2.0, 7.0);
        assert_eq!(r.total_s(), 10.0);
        assert!((r.update_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(r.phases()[2].1, 7.0);
        assert_eq!(IterationReport::default().update_fraction(), 0.0);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let base = IterationReport::new(1.0, 2.0, 7.0);
        let fast = IterationReport::new(1.0, 2.0, 2.0);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        IterationReport::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-time")]
    fn zero_time_speedup_panics() {
        IterationReport::default().speedup_over(&IterationReport::new(1.0, 1.0, 1.0));
    }
}
