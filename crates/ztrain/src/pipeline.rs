//! The pipelined fabric execution backend.
//!
//! Smart-Infinity's headline win comes from *overlap*: gradient transfer,
//! near-storage compression and optimizer updates proceed concurrently across
//! the CSDs instead of one global phase at a time, so the shared host
//! interconnect stops being a step-granularity bottleneck (paper Sections
//! IV-B/IV-D). The serial functional trainer walks the device shards one
//! after another; [`PipelinedTrainer`] turns each device shard into a
//! *pipeline lane* — write (gradient ingest) → compress/update → read-back —
//! and runs the lanes concurrently on a [`parcore::ParExecutor`].
//!
//! Two properties are load-bearing and asserted by the test suites:
//!
//! * **Bit-identical results.** Every lane performs exactly the serial
//!   trainer's per-shard work (same error feedback, same Top-K selection,
//!   same updater kernels), and lanes touch disjoint state — their own
//!   [`CsdDevice`], their own residual, their own slice of the FP16 working
//!   copy. Scheduling therefore cannot change a single bit of the result,
//!   for any worker-thread or device count.
//! * **Per-stage telemetry.** Each step's [`StepReport`] carries a
//!   [`StageReport`]: how many bytes the write, update and read-back stages
//!   moved and how many lanes were in flight, mirroring the stage-level link
//!   accounting of the timed engine.
//!
//! Construction is fallible ([`TrainError::Config`]) rather than asserting:
//! this backend is reached from user-facing configuration
//! (`smart_infinity::Session`), where a bad knob must be an error, not an
//! abort.

use crate::checkpoint::{bits_to_tensor, tensor_to_bits, TrainerCheckpoint};
use crate::recover::recover;
use crate::trainer::{DegradedReport, StageReport, StepReport, TrainError, Trainer};
use csd::{CsdDevice, CsdError, CsdTrafficStats, SubgroupUpdate};
use faultkit::FaultPlan;
use gradcomp::{Compressor, ErrorFeedback};
use optim::Optimizer;
use parcore::ParExecutor;
use tensorlib::{Chunker, Dtype, FlatTensor, Partitioner, Shard};

/// The distributed starting state shared by every functional Smart-Infinity
/// trainer (serial or pipelined): the flattened parameters contiguously
/// sharded across fresh CSD models, with the FP32 master copy and zeroed
/// optimizer state stored on each device, plus one error-feedback residual
/// per shard.
///
/// Extracted so the serial and pipelined trainers cannot drift apart — their
/// bit-identicality starts with byte-identical device state.
pub fn init_csd_shards(
    initial_params: &FlatTensor,
    optimizer: &Optimizer,
    num_csds: usize,
) -> Result<(Partitioner, Vec<CsdDevice>, Vec<ErrorFeedback>), CsdError> {
    let partitioner = Partitioner::contiguous(initial_params.len(), num_csds);
    let mut csds = Vec::with_capacity(num_csds);
    for shard in partitioner.shards() {
        let mut csd = CsdDevice::new(format!("csd{}", shard.device), u64::MAX / 4, u64::MAX / 4);
        let shard_params = initial_params.slice(shard.offset, shard.len);
        csd.store_initial_state("shard", &shard_params, optimizer)?;
        csds.push(csd);
    }
    let feedback = partitioner.shards().iter().map(|s| ErrorFeedback::new(s.len)).collect();
    Ok((partitioner, csds, feedback))
}

/// Reassembles the FP32 master copy from the per-device shards created by
/// [`init_csd_shards`].
pub fn reassemble_master_params(
    csds: &mut [CsdDevice],
    partitioner: &Partitioner,
) -> Result<FlatTensor, CsdError> {
    let mut out = FlatTensor::zeros(partitioner.total());
    for (csd, shard) in csds.iter_mut().zip(partitioner.shards()) {
        if shard.len == 0 {
            continue;
        }
        // Reassembly is maintenance traffic: it observes state rather than
        // training, so it must neither fail on nor consume fault decisions.
        csd.suspend_faults(true);
        let result = csd.load_parameters("shard", 0, shard.len);
        csd.suspend_faults(false);
        out.write_slice(shard.offset, result?.as_slice());
    }
    Ok(out)
}

/// Sums the CSD-internal P2P traffic statistics of a device set.
pub fn aggregate_csd_stats(csds: &[CsdDevice]) -> CsdTrafficStats {
    let mut total = CsdTrafficStats::default();
    for csd in csds {
        let s = csd.stats();
        total.p2p_read_bytes += s.p2p_read_bytes;
        total.p2p_write_bytes += s.p2p_write_bytes;
        total.updates_run += s.updates_run;
        total.elements_updated += s.elements_updated;
    }
    total
}

/// Everything one pipeline lane may touch: disjoint per-device state, so the
/// lanes can run concurrently without synchronisation.
struct Lane<'a> {
    shard: Shard,
    csd: &'a mut CsdDevice,
    feedback: &'a mut ErrorFeedback,
    scratch: &'a mut FlatTensor,
    fp16_out: &'a mut [f32],
}

/// Byte accounting of one lane's trip through the three stages.
#[derive(Debug, Clone, Copy, Default)]
struct LaneReport {
    write_bytes: u64,
    kept: u64,
    update_read_bytes: u64,
    update_write_bytes: u64,
    read_back_bytes: u64,
    degraded: DegradedReport,
}

/// A functional Smart-Infinity trainer whose per-device stages overlap.
///
/// Holds the same distributed state as the serial trainer — the flattened
/// parameters contiguously sharded across CSD models, FP32 master copies and
/// optimizer states on each device — but executes each step as a software
/// pipeline over the shards. Results are **bit-identical** to the serial
/// trainer for every thread count; only wall-clock time and the telemetry
/// (`StepReport::stages`) differ.
#[derive(Debug)]
pub struct PipelinedTrainer {
    csds: Vec<CsdDevice>,
    partitioner: Partitioner,
    optimizer: Optimizer,
    params_fp16: FlatTensor,
    compressor: Option<Compressor>,
    feedback: Vec<ErrorFeedback>,
    // One gradient scratch buffer per lane, reused across steps.
    scratch: Vec<FlatTensor>,
    subgroup_elems: usize,
    pool: ParExecutor,
    step: u64,
    fault_plan: Option<FaultPlan>,
}

impl PipelinedTrainer {
    /// Creates a pipelined trainer: partitions the parameters across
    /// `num_csds` CSDs and initialises the FP32 master copy and optimizer
    /// states on each device.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for a zero device count or zero
    /// subgroup capacity, and a wrapped [`CsdError`] if a device cannot hold
    /// its shard.
    pub fn new(
        initial_params: &FlatTensor,
        optimizer: Optimizer,
        num_csds: usize,
        subgroup_elems: usize,
    ) -> Result<Self, TrainError> {
        if num_csds == 0 {
            return Err(TrainError::config("at least one CSD is required"));
        }
        if subgroup_elems == 0 {
            return Err(TrainError::config("subgroup capacity must be positive"));
        }
        let (partitioner, csds, feedback) =
            init_csd_shards(initial_params, &optimizer, num_csds).map_err(TrainError::from)?;
        let params_fp16 = FlatTensor::from_bytes(&initial_params.to_bytes(Dtype::F16), Dtype::F16);
        let scratch = vec![FlatTensor::default(); num_csds];
        Ok(Self {
            csds,
            partitioner,
            optimizer,
            params_fp16,
            compressor: None,
            feedback,
            scratch,
            subgroup_elems,
            pool: ParExecutor::serial(),
            step: 0,
            fault_plan: None,
        })
    }

    /// Installs a fault plan: deterministic per-device injectors and a
    /// device-internal retry budget on every CSD, plus scheduled wear-out /
    /// dropout. An empty plan is a no-op, so the fault-free path stays
    /// bit-identical.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if !plan.is_empty() {
            for (i, csd) in self.csds.iter_mut().enumerate() {
                csd.set_fault_injector(plan.injector(i as u64));
                csd.set_retry_budget(plan.max_retries());
            }
            self.fault_plan = Some(plan);
        }
        self
    }

    fn max_retries(&self) -> u32 {
        self.fault_plan.as_ref().map_or(0, FaultPlan::max_retries)
    }

    /// Fires scheduled wear-out / dropout at the start of their planned step.
    fn trigger_scheduled_faults(&mut self) {
        if let Some(plan) = &self.fault_plan {
            if plan.wearout_step() == Some(self.step) {
                if let Some(d) = plan.wearout_device(self.csds.len()) {
                    self.csds[d].inject_ssd_wearout();
                }
            }
            if plan.dropout_step() == Some(self.step) {
                if let Some(d) = plan.dropout_device(self.csds.len()) {
                    self.csds[d].inject_dropout();
                }
            }
        }
    }

    /// Enables SmartComp: each lane Top-K-compresses its shard's gradients
    /// (with error feedback) before they cross the host interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] if `keep_ratio` is not in `(0, 1]`.
    pub fn with_compression(self, keep_ratio: f64) -> Result<Self, TrainError> {
        if !gradcomp::valid_keep_ratio(keep_ratio) {
            return Err(TrainError::config(format!(
                "Top-K keep ratio must be in (0, 1], got {keep_ratio}"
            )));
        }
        Ok(self.with_compressor(Compressor::top_k(keep_ratio)))
    }

    /// Enables SmartComp with an explicit coordinate selector (exact Top-K,
    /// threshold-accelerated Top-K, Random-K) instead of the default exact
    /// Top-K.
    pub fn with_compressor(mut self, compressor: Compressor) -> Self {
        self.compressor = Some(compressor);
        self
    }

    /// Sets the number of host worker threads the pipeline lanes fan out
    /// across. The *lanes* are the unit of parallelism: each lane's kernels
    /// run serially inside it (fanning out twice would oversubscribe the
    /// workers), and results are bit-identical for every thread count.
    ///
    /// Lanes are scheduled by the default size-aware work-stealing executor:
    /// heavier shards are dealt first and idle workers steal queued lanes, so
    /// one skewed shard does not serialize the pipeline. Use
    /// [`PipelinedTrainer::with_executor`] to pin the schedule instead.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.pool = ParExecutor::new(num_threads);
        self
    }

    /// Sets the lane executor explicitly — e.g.
    /// [`ParExecutor::deterministic`] for bit-equivalence suites that want
    /// the lane→worker schedule pinned as well as the results (the results
    /// are identical in every mode regardless).
    pub fn with_executor(mut self, pool: ParExecutor) -> Self {
        self.pool = pool;
        self
    }

    /// The host worker-thread count of the execution backend.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Number of parameters being trained.
    pub fn num_params(&self) -> usize {
        self.partitioner.total()
    }

    /// Number of CSDs (pipeline lanes).
    pub fn num_csds(&self) -> usize {
        self.csds.len()
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step
    }

    /// The FP16 working copy of the parameters.
    pub fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    /// Whether SmartComp is enabled.
    pub fn is_compressed(&self) -> bool {
        self.compressor.is_some()
    }

    /// Reassembles the FP32 master copy from all CSDs.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`CsdError`] if a shard read fails.
    pub fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        Ok(reassemble_master_params(&mut self.csds, &self.partitioner)?)
    }

    /// Aggregated CSD-internal P2P traffic statistics across all devices.
    pub fn aggregate_stats(&self) -> CsdTrafficStats {
        aggregate_csd_stats(&self.csds)
    }

    /// Runs one pipelined training step with an explicitly provided dense
    /// gradient. All lanes run concurrently on the worker pool; the returned
    /// [`StepReport`] carries the per-stage byte telemetry in
    /// [`StepReport::stages`].
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed lane's error if any device operation fails
    /// (deterministic regardless of scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn train_step_with_grads(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        assert_eq!(grads.len(), self.num_params(), "gradient length mismatch");
        self.step += 1;
        self.trigger_scheduled_faults();
        let step = self.step;
        let optimizer = self.optimizer;
        let subgroup_elems = self.subgroup_elems;
        let compressor = self.compressor;
        let max_retries = self.max_retries();

        // Carve the step into lanes: shard i owns csds[i], feedback[i],
        // scratch[i] and its contiguous slice of the FP16 working copy.
        let shards = self.partitioner.shards().to_vec();
        let mut lanes = Vec::with_capacity(shards.len());
        let mut fp16_rest = self.params_fp16.as_mut_slice();
        let mut csds = self.csds.iter_mut();
        let mut feedback = self.feedback.iter_mut();
        let mut scratch = self.scratch.iter_mut();
        for shard in shards {
            let (fp16_out, rest) = fp16_rest.split_at_mut(shard.len);
            fp16_rest = rest;
            lanes.push(Lane {
                shard,
                csd: csds.next().expect("one CSD per shard"),
                feedback: feedback.next().expect("one residual per shard"),
                scratch: scratch.next().expect("one scratch buffer per shard"),
                fp16_out,
            });
        }
        let active_lanes = lanes.iter().filter(|l| l.shard.len > 0).count();

        // Cost-weighted dispatch: a lane's work is proportional to its shard
        // size, so heavier shards are scheduled first (and stealable) rather
        // than letting one skewed shard serialize the step.
        let weights: Vec<usize> = lanes.iter().map(|l| l.shard.len).collect();
        let results = self.pool.map_weighted(lanes, &weights, |_, lane| {
            Self::run_lane(lane, grads, compressor, optimizer, subgroup_elems, step, max_retries)
        });

        let mut stages = StageReport {
            lanes: self.pool.num_threads().min(active_lanes).max(1),
            ..StageReport::default()
        };
        let mut kept = 0u64;
        let mut storage_bytes_read = 0u64;
        let mut storage_bytes_written = 0u64;
        let mut degraded = DegradedReport::default();
        for result in results {
            let lane = result.map_err(TrainError::from)?;
            stages.write_bytes += lane.write_bytes;
            stages.update_bytes += lane.update_read_bytes + lane.update_write_bytes;
            stages.read_back_bytes += lane.read_back_bytes;
            storage_bytes_read += lane.update_read_bytes;
            storage_bytes_written += lane.update_write_bytes;
            kept += lane.kept;
            degraded.absorb(&lane.degraded);
        }
        Ok(StepReport {
            step,
            gradient_bytes: stages.write_bytes,
            storage_bytes_read,
            storage_bytes_written,
            compression_kept: compressor.map(|_| kept),
            threads: self.pool.num_threads(),
            kernel_path: tensorlib::KernelPath::active(),
            stages: Some(stages),
            degraded: degraded.into_option(),
        })
    }

    /// One lane's trip through the pipeline: write → compress/update →
    /// read-back, entirely on this lane's own device state.
    fn run_lane(
        lane: Lane<'_>,
        grads: &FlatTensor,
        compressor: Option<Compressor>,
        optimizer: Optimizer,
        subgroup_elems: usize,
        step: u64,
        max_retries: u32,
    ) -> Result<LaneReport, CsdError> {
        let Lane { shard, csd, feedback, scratch, fp16_out } = lane;
        if shard.len == 0 {
            return Ok(LaneReport::default());
        }
        let before = csd.stats();
        // Recovery is lane-local: each lane owns its device, so retry and
        // rebuild decisions are deterministic regardless of how the lanes are
        // scheduled across worker threads.
        let mut deg = DegradedReport::default();

        // Stage 1 — write: the shard's gradient crosses the host interconnect
        // downstream, dense or as the Top-K stream (identical math to the
        // serial trainer: error feedback, then a selection that is
        // bit-identical for any executor).
        grads.slice_into(shard.offset, shard.len, scratch);
        let compressed = match &compressor {
            None => None,
            Some(c) => {
                feedback.apply_in_place(scratch);
                let compressed = c.try_compress(scratch)?;
                feedback.update(scratch, &compressed);
                Some(compressed)
            }
        };
        let (write_bytes, kept) = match &compressed {
            None => (4 * shard.len as u64, 0),
            Some(c) => (c.compressed_bytes() as u64, c.num_selected() as u64),
        };
        if compressed.is_none() {
            // Whole-region gradient writes are idempotent, so the recovery
            // wrapper may retry them freely.
            recover(max_retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                csd.store_gradients("shard", scratch)
            })?;
        }

        // Stage 2 — update: subgroup-by-subgroup near-storage optimizer step
        // over CSD-internal P2P. Transient faults are cleared *inside* the
        // device (a half-written subgroup must never be recomputed from
        // already-updated state); the wrapper here only handles dead devices,
        // whose first failing operation precedes any write-back.
        for subgroup in Chunker::new(shard.len, subgroup_elems).subgroups() {
            recover(max_retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                csd.update_subgroup(SubgroupUpdate {
                    shard: "shard",
                    offset: subgroup.offset,
                    len: subgroup.len,
                    optimizer,
                    step,
                    compressed: compressed.as_ref(),
                })
            })?;
        }

        // Stage 3 — read-back: the refreshed FP16 working copy returns to
        // host memory, rounded straight into this lane's output slice.
        let updated = recover(max_retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
            csd.load_parameters("shard", 0, shard.len)
        })?;
        updated.roundtrip_f16_into(fp16_out);

        // Fold the device-internal transient retries into the lane's report.
        let (retries, backoff_ms) = csd.take_fault_events();
        deg.transient_faults += retries;
        deg.retries += retries;
        deg.backoff_ms += backoff_ms;

        let after = csd.stats();
        Ok(LaneReport {
            write_bytes,
            kept,
            update_read_bytes: after.p2p_read_bytes - before.p2p_read_bytes,
            update_write_bytes: after.p2p_write_bytes - before.p2p_write_bytes,
            read_back_bytes: 2 * shard.len as u64,
            degraded: deg,
        })
    }
}

impl Trainer for PipelinedTrainer {
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        self.train_step_with_grads(grads)
    }

    fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        PipelinedTrainer::master_params(self)
    }

    fn steps_completed(&self) -> u64 {
        self.step
    }

    fn checkpoint(&mut self) -> Result<TrainerCheckpoint, TrainError> {
        let retries = self.max_retries();
        let num_aux = self.optimizer.kind().num_aux();
        let n = self.num_params();
        let mut master_bits = Vec::with_capacity(n);
        let mut aux_bits = vec![Vec::with_capacity(n); num_aux];
        let mut deg = DegradedReport::default();
        for (csd, shard) in self.csds.iter_mut().zip(self.partitioner.shards()) {
            if shard.len == 0 {
                continue;
            }
            // Checkpoint reads are maintenance traffic: injection is
            // suspended so they cannot perturb the deterministic fault
            // stream of the training ops. Dead devices are still rebuilt.
            csd.suspend_faults(true);
            let result = (|| -> Result<(), TrainError> {
                let t = recover(retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                    csd.load_parameters("shard", 0, shard.len)
                })?;
                master_bits.extend(tensor_to_bits(&t));
                for (a, bits) in aux_bits.iter_mut().enumerate() {
                    let t = recover(retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                        csd.load_optimizer_state("shard", a, 0, shard.len)
                    })?;
                    bits.extend(tensor_to_bits(&t));
                }
                Ok(())
            })();
            csd.suspend_faults(false);
            result?;
        }
        let residual_bits = if self.compressor.is_some() {
            let mut bits = Vec::with_capacity(n);
            for feedback in &self.feedback {
                bits.extend(tensor_to_bits(feedback.residual()));
            }
            bits
        } else {
            Vec::new()
        };
        Ok(TrainerCheckpoint {
            step: self.step,
            num_params: n as u64,
            master_bits,
            aux_bits,
            residual_bits,
        })
    }

    fn restore(&mut self, checkpoint: &TrainerCheckpoint) -> Result<(), TrainError> {
        checkpoint.check_matches(self.num_params(), self.optimizer.kind().num_aux())?;
        if self.compressor.is_some() == checkpoint.residual_bits.is_empty() {
            return Err(TrainError::config(if self.compressor.is_some() {
                "checkpoint has no error-feedback residuals but compression is enabled"
            } else {
                "checkpoint carries error-feedback residuals but compression is disabled"
            }));
        }
        let master = bits_to_tensor(&checkpoint.master_bits);
        let optimizer = self.optimizer;
        for (csd, shard) in self.csds.iter_mut().zip(self.partitioner.shards()) {
            if shard.len == 0 {
                continue;
            }
            csd.suspend_faults(true);
            let result = (|| -> Result<(), TrainError> {
                let shard_params = master.slice(shard.offset, shard.len);
                csd.store_initial_state("shard", &shard_params, &optimizer)?;
                for (a, bits) in checkpoint.aux_bits.iter().enumerate() {
                    let aux = bits_to_tensor(&bits[shard.offset..shard.offset + shard.len]);
                    csd.store_optimizer_state("shard", a, &aux)?;
                }
                Ok(())
            })();
            csd.suspend_faults(false);
            result?;
            if !checkpoint.residual_bits.is_empty() {
                let residual = bits_to_tensor(
                    &checkpoint.residual_bits[shard.offset..shard.offset + shard.len],
                );
                self.feedback[shard.device].restore_residual(&residual);
            }
        }
        self.params_fp16 = FlatTensor::from_bytes(&master.to_bytes(Dtype::F16), Dtype::F16);
        self.step = checkpoint.step;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{StorageOffloadTrainer, SyntheticGradients};

    #[test]
    fn pipelined_is_bit_identical_to_the_host_baseline() {
        // Without compression the near-storage update is numerically the
        // baseline update, so the pipelined backend must match it bit for bit.
        let n = 5000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 1);
        let mut baseline = StorageOffloadTrainer::new(&initial, optimizer, 2, 1024).unwrap();
        let mut pipelined =
            PipelinedTrainer::new(&initial, optimizer, 3, 700).unwrap().with_threads(4);
        for step in 0..4u64 {
            let grads = FlatTensor::randn(n, 0.01, 100 + step);
            baseline.train_step_with_grads(&grads).unwrap();
            pipelined.train_step_with_grads(&grads).unwrap();
        }
        assert_eq!(
            pipelined.master_params().unwrap().as_slice(),
            baseline.master_params().unwrap().as_slice()
        );
        assert_eq!(pipelined.params_fp16().as_slice(), baseline.params_fp16().as_slice());
        assert_eq!(pipelined.steps_completed(), 4);
        assert_eq!(pipelined.num_csds(), 3);
        assert_eq!(pipelined.num_params(), n);
        assert!(!pipelined.is_compressed());
    }

    #[test]
    fn thread_count_never_changes_results() {
        let n = 4000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 7);
        let run = |threads: usize, keep: Option<f64>| {
            let mut t = PipelinedTrainer::new(&initial, optimizer, 3, 600).unwrap();
            if let Some(k) = keep {
                t = t.with_compression(k).unwrap();
            }
            t = t.with_threads(threads);
            assert_eq!(t.num_threads(), threads.max(1));
            let mut source = SyntheticGradients::new(n, 0.01, 55);
            let mut last = StepReport::default();
            for _ in 0..3 {
                last = t.step_from(&mut source).unwrap();
            }
            (t.master_params().unwrap(), t.params_fp16().clone(), last)
        };
        for keep in [None, Some(0.05)] {
            let (serial_master, serial_fp16, serial_report) = run(1, keep);
            for threads in [2usize, 4, 7] {
                let (master, fp16, report) = run(threads, keep);
                assert_eq!(master.as_slice(), serial_master.as_slice(), "{keep:?} t={threads}");
                assert_eq!(fp16.as_slice(), serial_fp16.as_slice(), "{keep:?} t={threads}");
                // Telemetry: identical bytes, different lane concurrency.
                let (s, r) = (serial_report.stages.unwrap(), report.stages.unwrap());
                assert_eq!(s.write_bytes, r.write_bytes);
                assert_eq!(s.update_bytes, r.update_bytes);
                assert_eq!(s.read_back_bytes, r.read_back_bytes);
                assert_eq!(s.lanes, 1);
                assert_eq!(r.lanes, threads.min(3));
                assert_eq!(report.threads, threads);
            }
        }
    }

    #[test]
    fn work_stealing_matches_the_deterministic_schedule_bit_for_bit() {
        // Same trainer, same gradients, every thread count, both scheduling
        // modes — the master copy and FP16 working copy must agree exactly.
        let n = 4000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 21);
        let run = |pool: ParExecutor| {
            let mut t = PipelinedTrainer::new(&initial, optimizer, 4, 600)
                .unwrap()
                .with_compression(0.05)
                .unwrap()
                .with_executor(pool);
            let mut source = SyntheticGradients::new(n, 0.01, 99);
            let mut last = StepReport::default();
            for _ in 0..3 {
                last = t.step_from(&mut source).unwrap();
            }
            (t.master_params().unwrap(), t.params_fp16().clone(), last)
        };
        let (ref_master, ref_fp16, _) = run(ParExecutor::deterministic(1));
        for threads in [1usize, 2, 4, 7] {
            for pool in [ParExecutor::new(threads), ParExecutor::deterministic(threads)] {
                let (master, fp16, report) = run(pool);
                assert_eq!(
                    master.as_slice(),
                    ref_master.as_slice(),
                    "master diverged: threads={threads} mode={:?}",
                    pool.mode()
                );
                assert_eq!(
                    fp16.as_slice(),
                    ref_fp16.as_slice(),
                    "fp16 diverged: threads={threads} mode={:?}",
                    pool.mode()
                );
                // The report pins the runtime-detected SIMD path either way.
                assert_eq!(report.kernel_path, tensorlib::KernelPath::active());
            }
        }
    }

    #[test]
    fn stage_telemetry_matches_the_analytic_accounting() {
        let n = 6000;
        let optimizer = Optimizer::adam_default();
        let mut t = PipelinedTrainer::new(&FlatTensor::zeros(n), optimizer, 3, 1000)
            .unwrap()
            .with_threads(2);
        let report = t.train_step_with_grads(&FlatTensor::zeros(n)).unwrap();
        let stages = report.stages.expect("pipelined steps report stages");
        assert!(report.is_pipelined());
        // Dense Adam: 4n gradient down, 16n read + 12n written internally,
        // 2n FP16 up.
        assert_eq!(stages.write_bytes, 4 * n as u64);
        assert_eq!(stages.update_bytes, 28 * n as u64);
        assert_eq!(stages.read_back_bytes, 2 * n as u64);
        assert_eq!(stages.total_bytes(), 34 * n as u64);
        assert!(stages.is_overlapped());
        assert_eq!(stages.lanes, 2);
        // The flat counters agree with the stage split.
        assert_eq!(report.gradient_bytes, stages.write_bytes);
        assert_eq!(report.storage_bytes_total(), stages.update_bytes);
        let stats = t.aggregate_stats();
        assert_eq!(stats.elements_updated, n as u64);
        assert_eq!(stats.updates_run, 6); // 3 shards x 2 subgroups
    }

    #[test]
    fn invalid_configuration_is_an_error_not_a_panic() {
        let initial = FlatTensor::zeros(16);
        let optimizer = Optimizer::adam_default();
        let e = PipelinedTrainer::new(&initial, optimizer, 0, 8).unwrap_err();
        assert!(matches!(e, TrainError::Config { .. }), "{e}");
        let e = PipelinedTrainer::new(&initial, optimizer, 2, 0).unwrap_err();
        assert!(matches!(e, TrainError::Config { .. }), "{e}");
        let e = PipelinedTrainer::new(&initial, optimizer, 2, 8)
            .unwrap()
            .with_compression(0.0)
            .unwrap_err();
        assert!(matches!(e, TrainError::Config { .. }), "{e}");
        let e = PipelinedTrainer::new(&initial, optimizer, 2, 8)
            .unwrap()
            .with_compression(1.5)
            .unwrap_err();
        assert!(e.to_string().contains("keep ratio"), "{e}");
    }

    #[test]
    fn more_lanes_than_parameters_still_works() {
        // Degenerate split: 7 devices, 3 parameters — four lanes are empty
        // and must neither panic nor contribute telemetry.
        let initial = FlatTensor::randn(3, 0.05, 3);
        let grads = FlatTensor::randn(3, 0.01, 4);
        let optimizer = Optimizer::adam_default();
        let mut wide = PipelinedTrainer::new(&initial, optimizer, 7, 4).unwrap().with_threads(4);
        let mut narrow = PipelinedTrainer::new(&initial, optimizer, 1, 4).unwrap();
        let report = wide.train_step_with_grads(&grads).unwrap();
        narrow.train_step_with_grads(&grads).unwrap();
        assert_eq!(
            wide.master_params().unwrap().as_slice(),
            narrow.master_params().unwrap().as_slice()
        );
        assert_eq!(report.stages.unwrap().lanes, 3, "only non-empty shards count as lanes");
    }

    #[test]
    fn faults_are_recovered_without_changing_results_for_any_thread_count() {
        let n = 3000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 31);
        let plan = || {
            faultkit::FaultPlan::new({
                let mut s = faultkit::FaultSpec::empty(13);
                s.transient_per_mille = Some(120);
                s.ssd_wearout_step = Some(2);
                s.csd_dropout_step = Some(3);
                s
            })
        };
        let run = |threads: usize, faults: bool, keep: Option<f64>| {
            let mut t = PipelinedTrainer::new(&initial, optimizer, 3, 500).unwrap();
            if let Some(k) = keep {
                t = t.with_compression(k).unwrap();
            }
            t = t.with_threads(threads);
            if faults {
                t = t.with_fault_plan(plan());
            }
            let mut degraded_steps = 0;
            for step in 0..4u64 {
                let grads = FlatTensor::randn(n, 0.01, 300 + step);
                let report = t.train_step_with_grads(&grads).unwrap();
                if report.is_degraded() {
                    degraded_steps += 1;
                }
            }
            (t.master_params().unwrap(), t.params_fp16().clone(), degraded_steps)
        };
        for keep in [None, Some(0.05)] {
            let (clean_master, clean_fp16, clean_degraded) = run(1, false, keep);
            assert_eq!(clean_degraded, 0);
            let (faulty_master, faulty_fp16, faulty_degraded) = run(1, true, keep);
            assert!(faulty_degraded > 0, "scheduled wear-out and dropout must fire");
            assert_eq!(faulty_master.as_slice(), clean_master.as_slice(), "{keep:?}");
            assert_eq!(faulty_fp16.as_slice(), clean_fp16.as_slice(), "{keep:?}");
            // Fault recovery is deterministic across thread counts too.
            for threads in [2usize, 4] {
                let (master, fp16, degraded) = run(threads, true, keep);
                assert_eq!(master.as_slice(), clean_master.as_slice(), "{keep:?} t={threads}");
                assert_eq!(fp16.as_slice(), clean_fp16.as_slice(), "{keep:?} t={threads}");
                assert_eq!(degraded, faulty_degraded, "{keep:?} t={threads}");
            }
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically_with_residuals() {
        let n = 2400;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 41);
        let grads: Vec<FlatTensor> = (0..6).map(|s| FlatTensor::randn(n, 0.01, 400 + s)).collect();
        let make = |csds: usize| {
            PipelinedTrainer::new(&initial, optimizer, csds, 500)
                .unwrap()
                .with_compression(0.05)
                .unwrap()
                .with_threads(2)
        };

        let mut straight = make(3);
        for g in &grads {
            straight.train_step_with_grads(g).unwrap();
        }

        let mut first = make(3);
        for g in &grads[..3] {
            first.train_step_with_grads(g).unwrap();
        }
        let ckpt = Trainer::checkpoint(&mut first).unwrap();
        assert_eq!(ckpt.step, 3);
        assert!(!ckpt.residual_bits.is_empty(), "compression must checkpoint its residuals");
        let json = ckpt.to_json().unwrap();
        let parsed = TrainerCheckpoint::from_json(&json).unwrap();

        // Resume on the same fleet shape. Top-K selection happens per shard,
        // so under compression the shard boundaries participate in the
        // numbers; only an uncompressed checkpoint is portable across device
        // counts (exercised below).
        let mut resumed = make(3);
        Trainer::restore(&mut resumed, &parsed).unwrap();
        assert_eq!(resumed.steps_completed(), 3);
        for g in &grads[3..] {
            resumed.train_step_with_grads(g).unwrap();
        }
        assert_eq!(
            resumed.master_params().unwrap().as_slice(),
            straight.master_params().unwrap().as_slice()
        );
        assert_eq!(resumed.params_fp16().as_slice(), straight.params_fp16().as_slice());

        // Without compression the checkpoint is a global tensor snapshot and
        // the elementwise optimizer is shard-agnostic, so a resume may change
        // the device count: 3 CSDs checkpointed, 4 CSDs resumed.
        let make_plain =
            |csds: usize| PipelinedTrainer::new(&initial, optimizer, csds, 500).unwrap();
        let mut plain_straight = make_plain(3);
        let mut plain_first = make_plain(3);
        for g in &grads {
            plain_straight.train_step_with_grads(g).unwrap();
        }
        for g in &grads[..3] {
            plain_first.train_step_with_grads(g).unwrap();
        }
        let plain_ckpt = Trainer::checkpoint(&mut plain_first).unwrap();
        assert!(plain_ckpt.residual_bits.is_empty());
        let mut plain_resumed = make_plain(4);
        Trainer::restore(&mut plain_resumed, &plain_ckpt).unwrap();
        for g in &grads[3..] {
            plain_resumed.train_step_with_grads(g).unwrap();
        }
        assert_eq!(
            plain_resumed.master_params().unwrap().as_slice(),
            plain_straight.master_params().unwrap().as_slice()
        );

        // Residual/compression mismatches are rejected.
        let mut uncompressed = PipelinedTrainer::new(&initial, optimizer, 2, 500).unwrap();
        let err = Trainer::restore(&mut uncompressed, &parsed).unwrap_err();
        assert!(err.to_string().contains("residuals"), "{err}");
        let mut no_residuals = parsed.clone();
        no_residuals.residual_bits = Vec::new();
        let err = Trainer::restore(&mut make(2), &no_residuals).unwrap_err();
        assert!(err.to_string().contains("residuals"), "{err}");
    }

    #[test]
    fn checkpointing_under_an_active_fault_plan_does_not_shift_the_schedule() {
        // Two identical fault-laden runs; one checkpoints mid-run. Because
        // maintenance traffic suspends injection, both must see the same
        // fault schedule and produce identical results.
        let n = 1200;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 51);
        let plan = || {
            faultkit::FaultPlan::new({
                let mut s = faultkit::FaultSpec::empty(17);
                s.transient_per_mille = Some(200);
                s
            })
        };
        let run = |checkpoint_after: Option<u64>| {
            let mut t =
                PipelinedTrainer::new(&initial, optimizer, 2, 300).unwrap().with_fault_plan(plan());
            let mut reports = Vec::new();
            for step in 0..4u64 {
                let grads = FlatTensor::randn(n, 0.01, 500 + step);
                reports.push(t.train_step_with_grads(&grads).unwrap());
                if checkpoint_after == Some(step + 1) {
                    Trainer::checkpoint(&mut t).unwrap();
                }
            }
            (t.master_params().unwrap(), reports)
        };
        let (plain_master, plain_reports) = run(None);
        let (ckpt_master, ckpt_reports) = run(Some(2));
        assert_eq!(plain_master.as_slice(), ckpt_master.as_slice());
        assert_eq!(plain_reports, ckpt_reports, "fault telemetry must match step for step");
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn wrong_gradient_length_panics() {
        let mut t = PipelinedTrainer::new(&FlatTensor::zeros(10), Optimizer::adam_default(), 1, 10)
            .unwrap();
        let _ = t.train_step_with_grads(&FlatTensor::zeros(5));
    }
}
