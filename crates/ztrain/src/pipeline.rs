//! The pipelined fabric execution backend.
//!
//! Smart-Infinity's headline win comes from *overlap*: gradient transfer,
//! near-storage compression and optimizer updates proceed concurrently across
//! the CSDs instead of one global phase at a time, so the shared host
//! interconnect stops being a step-granularity bottleneck (paper Sections
//! IV-B/IV-D). The serial functional trainer walks the device shards one
//! after another; [`PipelinedTrainer`] turns each device shard into a
//! *pipeline lane* — write (gradient ingest) → compress/update → read-back —
//! and runs the lanes concurrently on a [`parcore::ParExecutor`].
//!
//! Two properties are load-bearing and asserted by the test suites:
//!
//! * **Bit-identical results.** Every lane performs exactly the serial
//!   trainer's per-shard work (same error feedback, same Top-K selection,
//!   same updater kernels), and lanes touch disjoint state — their own
//!   [`CsdDevice`], their own residual, their own slice of the FP16 working
//!   copy. Scheduling therefore cannot change a single bit of the result,
//!   for any worker-thread or device count.
//! * **Per-stage telemetry.** Each step's [`StepReport`] carries a
//!   [`StageReport`]: how many bytes the write, update and read-back stages
//!   moved and how many lanes were in flight, mirroring the stage-level link
//!   accounting of the timed engine.
//!
//! Construction is fallible ([`TrainError::Config`]) rather than asserting:
//! this backend is reached from user-facing configuration
//! (`smart_infinity::Session`), where a bad knob must be an error, not an
//! abort.

use crate::trainer::{StageReport, StepReport, TrainError, Trainer};
use csd::{CsdDevice, CsdError, CsdTrafficStats, SubgroupUpdate};
use gradcomp::{Compressor, ErrorFeedback};
use optim::Optimizer;
use parcore::ParExecutor;
use tensorlib::{Chunker, Dtype, FlatTensor, Partitioner, Shard};

/// The distributed starting state shared by every functional Smart-Infinity
/// trainer (serial or pipelined): the flattened parameters contiguously
/// sharded across fresh CSD models, with the FP32 master copy and zeroed
/// optimizer state stored on each device, plus one error-feedback residual
/// per shard.
///
/// Extracted so the serial and pipelined trainers cannot drift apart — their
/// bit-identicality starts with byte-identical device state.
pub fn init_csd_shards(
    initial_params: &FlatTensor,
    optimizer: &Optimizer,
    num_csds: usize,
) -> Result<(Partitioner, Vec<CsdDevice>, Vec<ErrorFeedback>), CsdError> {
    let partitioner = Partitioner::contiguous(initial_params.len(), num_csds);
    let mut csds = Vec::with_capacity(num_csds);
    for shard in partitioner.shards() {
        let mut csd = CsdDevice::new(format!("csd{}", shard.device), u64::MAX / 4, u64::MAX / 4);
        let shard_params = initial_params.slice(shard.offset, shard.len);
        csd.store_initial_state("shard", &shard_params, optimizer)?;
        csds.push(csd);
    }
    let feedback = partitioner.shards().iter().map(|s| ErrorFeedback::new(s.len)).collect();
    Ok((partitioner, csds, feedback))
}

/// Reassembles the FP32 master copy from the per-device shards created by
/// [`init_csd_shards`].
pub fn reassemble_master_params(
    csds: &mut [CsdDevice],
    partitioner: &Partitioner,
) -> Result<FlatTensor, CsdError> {
    let mut out = FlatTensor::zeros(partitioner.total());
    for (csd, shard) in csds.iter_mut().zip(partitioner.shards()) {
        if shard.len == 0 {
            continue;
        }
        let t = csd.load_parameters("shard", 0, shard.len)?;
        out.write_slice(shard.offset, t.as_slice());
    }
    Ok(out)
}

/// Sums the CSD-internal P2P traffic statistics of a device set.
pub fn aggregate_csd_stats(csds: &[CsdDevice]) -> CsdTrafficStats {
    let mut total = CsdTrafficStats::default();
    for csd in csds {
        let s = csd.stats();
        total.p2p_read_bytes += s.p2p_read_bytes;
        total.p2p_write_bytes += s.p2p_write_bytes;
        total.updates_run += s.updates_run;
        total.elements_updated += s.elements_updated;
    }
    total
}

/// Everything one pipeline lane may touch: disjoint per-device state, so the
/// lanes can run concurrently without synchronisation.
struct Lane<'a> {
    shard: Shard,
    csd: &'a mut CsdDevice,
    feedback: &'a mut ErrorFeedback,
    scratch: &'a mut FlatTensor,
    fp16_out: &'a mut [f32],
}

/// Byte accounting of one lane's trip through the three stages.
#[derive(Debug, Clone, Copy, Default)]
struct LaneReport {
    write_bytes: u64,
    kept: u64,
    update_read_bytes: u64,
    update_write_bytes: u64,
    read_back_bytes: u64,
}

/// A functional Smart-Infinity trainer whose per-device stages overlap.
///
/// Holds the same distributed state as the serial trainer — the flattened
/// parameters contiguously sharded across CSD models, FP32 master copies and
/// optimizer states on each device — but executes each step as a software
/// pipeline over the shards. Results are **bit-identical** to the serial
/// trainer for every thread count; only wall-clock time and the telemetry
/// (`StepReport::stages`) differ.
#[derive(Debug)]
pub struct PipelinedTrainer {
    csds: Vec<CsdDevice>,
    partitioner: Partitioner,
    optimizer: Optimizer,
    params_fp16: FlatTensor,
    compressor: Option<Compressor>,
    feedback: Vec<ErrorFeedback>,
    // One gradient scratch buffer per lane, reused across steps.
    scratch: Vec<FlatTensor>,
    subgroup_elems: usize,
    pool: ParExecutor,
    step: u64,
}

impl PipelinedTrainer {
    /// Creates a pipelined trainer: partitions the parameters across
    /// `num_csds` CSDs and initialises the FP32 master copy and optimizer
    /// states on each device.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for a zero device count or zero
    /// subgroup capacity, and a wrapped [`CsdError`] if a device cannot hold
    /// its shard.
    pub fn new(
        initial_params: &FlatTensor,
        optimizer: Optimizer,
        num_csds: usize,
        subgroup_elems: usize,
    ) -> Result<Self, TrainError> {
        if num_csds == 0 {
            return Err(TrainError::config("at least one CSD is required"));
        }
        if subgroup_elems == 0 {
            return Err(TrainError::config("subgroup capacity must be positive"));
        }
        let (partitioner, csds, feedback) =
            init_csd_shards(initial_params, &optimizer, num_csds).map_err(TrainError::from)?;
        let params_fp16 = FlatTensor::from_bytes(&initial_params.to_bytes(Dtype::F16), Dtype::F16);
        let scratch = vec![FlatTensor::default(); num_csds];
        Ok(Self {
            csds,
            partitioner,
            optimizer,
            params_fp16,
            compressor: None,
            feedback,
            scratch,
            subgroup_elems,
            pool: ParExecutor::serial(),
            step: 0,
        })
    }

    /// Enables SmartComp: each lane Top-K-compresses its shard's gradients
    /// (with error feedback) before they cross the host interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] if `keep_ratio` is not in `(0, 1]`.
    pub fn with_compression(self, keep_ratio: f64) -> Result<Self, TrainError> {
        if !gradcomp::valid_keep_ratio(keep_ratio) {
            return Err(TrainError::config(format!(
                "Top-K keep ratio must be in (0, 1], got {keep_ratio}"
            )));
        }
        Ok(self.with_compressor(Compressor::top_k(keep_ratio)))
    }

    /// Enables SmartComp with an explicit coordinate selector (exact Top-K,
    /// threshold-accelerated Top-K, Random-K) instead of the default exact
    /// Top-K.
    pub fn with_compressor(mut self, compressor: Compressor) -> Self {
        self.compressor = Some(compressor);
        self
    }

    /// Sets the number of host worker threads the pipeline lanes fan out
    /// across. The *lanes* are the unit of parallelism: each lane's kernels
    /// run serially inside it (fanning out twice would oversubscribe the
    /// workers), and results are bit-identical for every thread count.
    ///
    /// Lanes are scheduled by the default size-aware work-stealing executor:
    /// heavier shards are dealt first and idle workers steal queued lanes, so
    /// one skewed shard does not serialize the pipeline. Use
    /// [`PipelinedTrainer::with_executor`] to pin the schedule instead.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.pool = ParExecutor::new(num_threads);
        self
    }

    /// Sets the lane executor explicitly — e.g.
    /// [`ParExecutor::deterministic`] for bit-equivalence suites that want
    /// the lane→worker schedule pinned as well as the results (the results
    /// are identical in every mode regardless).
    pub fn with_executor(mut self, pool: ParExecutor) -> Self {
        self.pool = pool;
        self
    }

    /// The host worker-thread count of the execution backend.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Number of parameters being trained.
    pub fn num_params(&self) -> usize {
        self.partitioner.total()
    }

    /// Number of CSDs (pipeline lanes).
    pub fn num_csds(&self) -> usize {
        self.csds.len()
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step
    }

    /// The FP16 working copy of the parameters.
    pub fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    /// Whether SmartComp is enabled.
    pub fn is_compressed(&self) -> bool {
        self.compressor.is_some()
    }

    /// Reassembles the FP32 master copy from all CSDs.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`CsdError`] if a shard read fails.
    pub fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        Ok(reassemble_master_params(&mut self.csds, &self.partitioner)?)
    }

    /// Aggregated CSD-internal P2P traffic statistics across all devices.
    pub fn aggregate_stats(&self) -> CsdTrafficStats {
        aggregate_csd_stats(&self.csds)
    }

    /// Runs one pipelined training step with an explicitly provided dense
    /// gradient. All lanes run concurrently on the worker pool; the returned
    /// [`StepReport`] carries the per-stage byte telemetry in
    /// [`StepReport::stages`].
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed lane's error if any device operation fails
    /// (deterministic regardless of scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn train_step_with_grads(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        assert_eq!(grads.len(), self.num_params(), "gradient length mismatch");
        self.step += 1;
        let step = self.step;
        let optimizer = self.optimizer;
        let subgroup_elems = self.subgroup_elems;
        let compressor = self.compressor;

        // Carve the step into lanes: shard i owns csds[i], feedback[i],
        // scratch[i] and its contiguous slice of the FP16 working copy.
        let shards = self.partitioner.shards().to_vec();
        let mut lanes = Vec::with_capacity(shards.len());
        let mut fp16_rest = self.params_fp16.as_mut_slice();
        let mut csds = self.csds.iter_mut();
        let mut feedback = self.feedback.iter_mut();
        let mut scratch = self.scratch.iter_mut();
        for shard in shards {
            let (fp16_out, rest) = fp16_rest.split_at_mut(shard.len);
            fp16_rest = rest;
            lanes.push(Lane {
                shard,
                csd: csds.next().expect("one CSD per shard"),
                feedback: feedback.next().expect("one residual per shard"),
                scratch: scratch.next().expect("one scratch buffer per shard"),
                fp16_out,
            });
        }
        let active_lanes = lanes.iter().filter(|l| l.shard.len > 0).count();

        // Cost-weighted dispatch: a lane's work is proportional to its shard
        // size, so heavier shards are scheduled first (and stealable) rather
        // than letting one skewed shard serialize the step.
        let weights: Vec<usize> = lanes.iter().map(|l| l.shard.len).collect();
        let results = self.pool.map_weighted(lanes, &weights, |_, lane| {
            Self::run_lane(lane, grads, compressor, optimizer, subgroup_elems, step)
        });

        let mut stages = StageReport {
            lanes: self.pool.num_threads().min(active_lanes).max(1),
            ..StageReport::default()
        };
        let mut kept = 0u64;
        let mut storage_bytes_read = 0u64;
        let mut storage_bytes_written = 0u64;
        for result in results {
            let lane = result.map_err(TrainError::from)?;
            stages.write_bytes += lane.write_bytes;
            stages.update_bytes += lane.update_read_bytes + lane.update_write_bytes;
            stages.read_back_bytes += lane.read_back_bytes;
            storage_bytes_read += lane.update_read_bytes;
            storage_bytes_written += lane.update_write_bytes;
            kept += lane.kept;
        }
        Ok(StepReport {
            step,
            gradient_bytes: stages.write_bytes,
            storage_bytes_read,
            storage_bytes_written,
            compression_kept: compressor.map(|_| kept),
            threads: self.pool.num_threads(),
            kernel_path: tensorlib::KernelPath::active(),
            stages: Some(stages),
        })
    }

    /// One lane's trip through the pipeline: write → compress/update →
    /// read-back, entirely on this lane's own device state.
    fn run_lane(
        lane: Lane<'_>,
        grads: &FlatTensor,
        compressor: Option<Compressor>,
        optimizer: Optimizer,
        subgroup_elems: usize,
        step: u64,
    ) -> Result<LaneReport, CsdError> {
        let Lane { shard, csd, feedback, scratch, fp16_out } = lane;
        if shard.len == 0 {
            return Ok(LaneReport::default());
        }
        let before = csd.stats();

        // Stage 1 — write: the shard's gradient crosses the host interconnect
        // downstream, dense or as the Top-K stream (identical math to the
        // serial trainer: error feedback, then a selection that is
        // bit-identical for any executor).
        grads.slice_into(shard.offset, shard.len, scratch);
        let compressed = match &compressor {
            None => None,
            Some(c) => {
                feedback.apply_in_place(scratch);
                let compressed = c.try_compress(scratch)?;
                feedback.update(scratch, &compressed);
                Some(compressed)
            }
        };
        let (write_bytes, kept) = match &compressed {
            None => (4 * shard.len as u64, 0),
            Some(c) => (c.compressed_bytes() as u64, c.num_selected() as u64),
        };
        if compressed.is_none() {
            csd.store_gradients("shard", scratch)?;
        }

        // Stage 2 — update: subgroup-by-subgroup near-storage optimizer step
        // over CSD-internal P2P.
        for subgroup in Chunker::new(shard.len, subgroup_elems).subgroups() {
            csd.update_subgroup(SubgroupUpdate {
                shard: "shard",
                offset: subgroup.offset,
                len: subgroup.len,
                optimizer,
                step,
                compressed: compressed.as_ref(),
            })?;
        }

        // Stage 3 — read-back: the refreshed FP16 working copy returns to
        // host memory, rounded straight into this lane's output slice.
        let updated = csd.load_parameters("shard", 0, shard.len)?;
        updated.roundtrip_f16_into(fp16_out);

        let after = csd.stats();
        Ok(LaneReport {
            write_bytes,
            kept,
            update_read_bytes: after.p2p_read_bytes - before.p2p_read_bytes,
            update_write_bytes: after.p2p_write_bytes - before.p2p_write_bytes,
            read_back_bytes: 2 * shard.len as u64,
        })
    }
}

impl Trainer for PipelinedTrainer {
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        self.train_step_with_grads(grads)
    }

    fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        PipelinedTrainer::master_params(self)
    }

    fn steps_completed(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{StorageOffloadTrainer, SyntheticGradients};

    #[test]
    fn pipelined_is_bit_identical_to_the_host_baseline() {
        // Without compression the near-storage update is numerically the
        // baseline update, so the pipelined backend must match it bit for bit.
        let n = 5000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 1);
        let mut baseline = StorageOffloadTrainer::new(&initial, optimizer, 2, 1024).unwrap();
        let mut pipelined =
            PipelinedTrainer::new(&initial, optimizer, 3, 700).unwrap().with_threads(4);
        for step in 0..4u64 {
            let grads = FlatTensor::randn(n, 0.01, 100 + step);
            baseline.train_step_with_grads(&grads).unwrap();
            pipelined.train_step_with_grads(&grads).unwrap();
        }
        assert_eq!(
            pipelined.master_params().unwrap().as_slice(),
            baseline.master_params().unwrap().as_slice()
        );
        assert_eq!(pipelined.params_fp16().as_slice(), baseline.params_fp16().as_slice());
        assert_eq!(pipelined.steps_completed(), 4);
        assert_eq!(pipelined.num_csds(), 3);
        assert_eq!(pipelined.num_params(), n);
        assert!(!pipelined.is_compressed());
    }

    #[test]
    fn thread_count_never_changes_results() {
        let n = 4000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 7);
        let run = |threads: usize, keep: Option<f64>| {
            let mut t = PipelinedTrainer::new(&initial, optimizer, 3, 600).unwrap();
            if let Some(k) = keep {
                t = t.with_compression(k).unwrap();
            }
            t = t.with_threads(threads);
            assert_eq!(t.num_threads(), threads.max(1));
            let mut source = SyntheticGradients::new(n, 0.01, 55);
            let mut last = StepReport::default();
            for _ in 0..3 {
                last = t.step_from(&mut source).unwrap();
            }
            (t.master_params().unwrap(), t.params_fp16().clone(), last)
        };
        for keep in [None, Some(0.05)] {
            let (serial_master, serial_fp16, serial_report) = run(1, keep);
            for threads in [2usize, 4, 7] {
                let (master, fp16, report) = run(threads, keep);
                assert_eq!(master.as_slice(), serial_master.as_slice(), "{keep:?} t={threads}");
                assert_eq!(fp16.as_slice(), serial_fp16.as_slice(), "{keep:?} t={threads}");
                // Telemetry: identical bytes, different lane concurrency.
                let (s, r) = (serial_report.stages.unwrap(), report.stages.unwrap());
                assert_eq!(s.write_bytes, r.write_bytes);
                assert_eq!(s.update_bytes, r.update_bytes);
                assert_eq!(s.read_back_bytes, r.read_back_bytes);
                assert_eq!(s.lanes, 1);
                assert_eq!(r.lanes, threads.min(3));
                assert_eq!(report.threads, threads);
            }
        }
    }

    #[test]
    fn work_stealing_matches_the_deterministic_schedule_bit_for_bit() {
        // Same trainer, same gradients, every thread count, both scheduling
        // modes — the master copy and FP16 working copy must agree exactly.
        let n = 4000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 21);
        let run = |pool: ParExecutor| {
            let mut t = PipelinedTrainer::new(&initial, optimizer, 4, 600)
                .unwrap()
                .with_compression(0.05)
                .unwrap()
                .with_executor(pool);
            let mut source = SyntheticGradients::new(n, 0.01, 99);
            let mut last = StepReport::default();
            for _ in 0..3 {
                last = t.step_from(&mut source).unwrap();
            }
            (t.master_params().unwrap(), t.params_fp16().clone(), last)
        };
        let (ref_master, ref_fp16, _) = run(ParExecutor::deterministic(1));
        for threads in [1usize, 2, 4, 7] {
            for pool in [ParExecutor::new(threads), ParExecutor::deterministic(threads)] {
                let (master, fp16, report) = run(pool);
                assert_eq!(
                    master.as_slice(),
                    ref_master.as_slice(),
                    "master diverged: threads={threads} mode={:?}",
                    pool.mode()
                );
                assert_eq!(
                    fp16.as_slice(),
                    ref_fp16.as_slice(),
                    "fp16 diverged: threads={threads} mode={:?}",
                    pool.mode()
                );
                // The report pins the runtime-detected SIMD path either way.
                assert_eq!(report.kernel_path, tensorlib::KernelPath::active());
            }
        }
    }

    #[test]
    fn stage_telemetry_matches_the_analytic_accounting() {
        let n = 6000;
        let optimizer = Optimizer::adam_default();
        let mut t = PipelinedTrainer::new(&FlatTensor::zeros(n), optimizer, 3, 1000)
            .unwrap()
            .with_threads(2);
        let report = t.train_step_with_grads(&FlatTensor::zeros(n)).unwrap();
        let stages = report.stages.expect("pipelined steps report stages");
        assert!(report.is_pipelined());
        // Dense Adam: 4n gradient down, 16n read + 12n written internally,
        // 2n FP16 up.
        assert_eq!(stages.write_bytes, 4 * n as u64);
        assert_eq!(stages.update_bytes, 28 * n as u64);
        assert_eq!(stages.read_back_bytes, 2 * n as u64);
        assert_eq!(stages.total_bytes(), 34 * n as u64);
        assert!(stages.is_overlapped());
        assert_eq!(stages.lanes, 2);
        // The flat counters agree with the stage split.
        assert_eq!(report.gradient_bytes, stages.write_bytes);
        assert_eq!(report.storage_bytes_total(), stages.update_bytes);
        let stats = t.aggregate_stats();
        assert_eq!(stats.elements_updated, n as u64);
        assert_eq!(stats.updates_run, 6); // 3 shards x 2 subgroups
    }

    #[test]
    fn invalid_configuration_is_an_error_not_a_panic() {
        let initial = FlatTensor::zeros(16);
        let optimizer = Optimizer::adam_default();
        let e = PipelinedTrainer::new(&initial, optimizer, 0, 8).unwrap_err();
        assert!(matches!(e, TrainError::Config { .. }), "{e}");
        let e = PipelinedTrainer::new(&initial, optimizer, 2, 0).unwrap_err();
        assert!(matches!(e, TrainError::Config { .. }), "{e}");
        let e = PipelinedTrainer::new(&initial, optimizer, 2, 8)
            .unwrap()
            .with_compression(0.0)
            .unwrap_err();
        assert!(matches!(e, TrainError::Config { .. }), "{e}");
        let e = PipelinedTrainer::new(&initial, optimizer, 2, 8)
            .unwrap()
            .with_compression(1.5)
            .unwrap_err();
        assert!(e.to_string().contains("keep ratio"), "{e}");
    }

    #[test]
    fn more_lanes_than_parameters_still_works() {
        // Degenerate split: 7 devices, 3 parameters — four lanes are empty
        // and must neither panic nor contribute telemetry.
        let initial = FlatTensor::randn(3, 0.05, 3);
        let grads = FlatTensor::randn(3, 0.01, 4);
        let optimizer = Optimizer::adam_default();
        let mut wide = PipelinedTrainer::new(&initial, optimizer, 7, 4).unwrap().with_threads(4);
        let mut narrow = PipelinedTrainer::new(&initial, optimizer, 1, 4).unwrap();
        let report = wide.train_step_with_grads(&grads).unwrap();
        narrow.train_step_with_grads(&grads).unwrap();
        assert_eq!(
            wide.master_params().unwrap().as_slice(),
            narrow.master_params().unwrap().as_slice()
        );
        assert_eq!(report.stages.unwrap().lanes, 3, "only non-empty shards count as lanes");
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn wrong_gradient_length_panics() {
        let mut t = PipelinedTrainer::new(&FlatTensor::zeros(10), Optimizer::adam_default(), 1, 10)
            .unwrap();
        let _ = t.train_step_with_grads(&FlatTensor::zeros(5));
    }
}
