//! The unified training contract shared by every functional execution
//! substrate.
//!
//! Smart-Infinity's core claim is that one training loop can be retargeted
//! across substrates — host-CPU RAID0 baseline, near-storage SmartUpdate,
//! SmartComp — without the caller changing. This module is that seam:
//!
//! * [`Trainer`] — the object-safe trait implemented by
//!   [`StorageOffloadTrainer`](crate::StorageOffloadTrainer) and
//!   `smart_infinity::SmartInfinityTrainer`, so callers can hold a
//!   `Box<dyn Trainer>` and never care where the update runs.
//! * [`StepReport`] — per-step telemetry (bytes moved, compression
//!   keep-count, threads used) returned by every step, replacing the
//!   per-engine accessors that previously each spoke their own dialect.
//! * [`TrainError`] — the workspace-level error type. Every substrate error
//!   ([`SsdError`], [`CsdError`], [`SimError`]) converts into it, so the `?`
//!   operator works across layer boundaries and `source()` walks back down
//!   to the device that actually failed.

use csd::CsdError;
use fabric::FabricError;
use gradcomp::CompressError;
use serde::Serialize;
use simkit::SimError;
use ssd::SsdError;
use std::error::Error;
use std::fmt;
use tensorlib::FlatTensor;

/// Per-stage byte telemetry of one pipelined training step.
///
/// The pipelined execution backend splits each device shard's step into three
/// stages — **write** (gradient ingest over the host interconnect),
/// **update** (CSD-internal optimizer update) and **read-back** (refreshed
/// FP16 parameters upstream) — and overlaps the stages of different shards.
/// This report records how many bytes each stage moved and how many pipeline
/// lanes ran concurrently; serial backends leave it `None` on the
/// [`StepReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageReport {
    /// Bytes the write stage pushed downstream over the shared host
    /// interconnect (dense gradients, or the Top-K index+value stream).
    pub write_bytes: u64,
    /// CSD-internal P2P bytes (reads + writes) the update stage moved.
    pub update_bytes: u64,
    /// FP16 parameter bytes the read-back stage returned upstream.
    pub read_back_bytes: u64,
    /// Concurrent pipeline lanes: device shards whose stages were in flight
    /// at once (`min(worker threads, non-empty shards)`).
    pub lanes: usize,
}

impl StageReport {
    /// Total bytes moved across all three stages.
    pub fn total_bytes(&self) -> u64 {
        self.write_bytes + self.update_bytes + self.read_back_bytes
    }

    /// Whether more than one pipeline lane was in flight (i.e. stages of
    /// different shards actually overlapped).
    pub fn is_overlapped(&self) -> bool {
        self.lanes > 1
    }
}

/// Recovery telemetry of one step that survived injected faults.
///
/// Every counter records *modeled* recovery work, so the report is
/// deterministic for a given fault plan: `backoff_ms` is the exponential
/// backoff a production host would have slept, not wall-clock time, and
/// `rebuild_bytes` is the data migrated off worn or dropped devices. A step
/// with no fault events carries `None` in [`StepReport::degraded`], keeping
/// fault-free telemetry bit-identical to a run without any fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DegradedReport {
    /// Injected transient faults that were absorbed by retry.
    pub transient_faults: u64,
    /// Total operation retries (transient retries + post-rebuild retries).
    pub retries: u64,
    /// Modeled exponential-backoff delay accumulated across retries, in
    /// milliseconds.
    pub backoff_ms: u64,
    /// Devices rebuilt after wear-out or dropout during this step.
    pub devices_rebuilt: u64,
    /// Bytes migrated onto replacement hardware by those rebuilds.
    pub rebuild_bytes: u64,
}

impl DegradedReport {
    /// Whether any recovery work actually happened.
    pub fn is_degraded(&self) -> bool {
        *self != DegradedReport::default()
    }

    /// Merges another report's counters into this one (used when a step is
    /// assembled from several recovered operations).
    pub fn absorb(&mut self, other: &DegradedReport) {
        self.transient_faults += other.transient_faults;
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
        self.devices_rebuilt += other.devices_rebuilt;
        self.rebuild_bytes += other.rebuild_bytes;
    }

    /// Converts to the optional form used on [`StepReport`]: `None` when no
    /// recovery happened, so fault-free reports stay bit-identical.
    pub fn into_option(self) -> Option<DegradedReport> {
        if self.is_degraded() {
            Some(self)
        } else {
            None
        }
    }
}

/// Per-step telemetry returned by [`Trainer::step`].
///
/// The byte counters mirror what the substrate-specific accessors used to
/// report, but scoped to one step and in one place:
///
/// * For the host baseline, `storage_bytes_*` is RAID0 traffic — which all
///   crosses the shared host interconnect.
/// * For the near-storage trainers, `storage_bytes_*` is CSD-internal P2P
///   traffic (SSD ↔ FPGA over the private switch) — the bytes the paper
///   keeps *off* the shared interconnect.
/// * `gradient_bytes` is always the gradient volume that crossed the host
///   interconnect (dense, or the index+value stream when SmartComp is on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StepReport {
    /// 1-based index of the step this report describes.
    pub step: u64,
    /// Bytes of gradient data that crossed the shared host interconnect this
    /// step. Dense gradients count 4 bytes per element per crossing (the
    /// baseline offloads them to storage and reads them back: two crossings;
    /// the near-storage path sends them downstream once); compressed
    /// gradients count the actual index+value stream.
    pub gradient_bytes: u64,
    /// Bytes read from storage this step (RAID0 reads for the baseline,
    /// CSD-internal P2P reads for the near-storage trainers).
    pub storage_bytes_read: u64,
    /// Bytes written to storage this step (RAID0 writes for the baseline,
    /// CSD-internal P2P writes for the near-storage trainers).
    pub storage_bytes_written: u64,
    /// Number of gradient elements kept by the Top-K selection this step,
    /// summed over shards; `None` when compression is disabled.
    pub compression_kept: Option<u64>,
    /// Host worker threads the execution backend used for this step.
    pub threads: usize,
    /// SIMD kernel path the hot loops (optimizer update, f16 conversion,
    /// candidate filtering) dispatched to this step — `scalar`, `sse2` or
    /// `avx2`, chosen at runtime by CPU feature detection (see
    /// [`tensorlib::KernelPath::active`]).
    pub kernel_path: tensorlib::KernelPath,
    /// Per-stage overlap telemetry of the pipelined execution backend;
    /// `None` for backends that execute the step's phases serially.
    pub stages: Option<StageReport>,
    /// Recovery telemetry when injected faults fired during this step;
    /// `None` when the step ran fault-free.
    pub degraded: Option<DegradedReport>,
}

impl StepReport {
    /// Total storage bytes moved this step (read + written).
    pub fn storage_bytes_total(&self) -> u64 {
        self.storage_bytes_read + self.storage_bytes_written
    }

    /// Whether this step's gradients were compressed before crossing the
    /// interconnect.
    pub fn is_compressed(&self) -> bool {
        self.compression_kept.is_some()
    }

    /// Whether the step was executed by a pipelined backend (per-stage
    /// telemetry is present).
    pub fn is_pipelined(&self) -> bool {
        self.stages.is_some()
    }

    /// Whether injected faults fired (and were recovered from) this step.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// The workspace-level training error: one type for every substrate, so a
/// training loop over a `dyn Trainer` — or code that mixes the functional and
/// timed stacks — can use `?` throughout and still recover the layer that
/// failed via [`Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A host-side storage (SSD / RAID0) operation failed.
    Storage(SsdError),
    /// A computational-storage-device operation failed.
    Device(CsdError),
    /// The discrete-event simulation of the timed stack failed.
    Simulation(SimError),
    /// A PCIe-fabric topology or routing operation failed (degraded or
    /// partitioned links).
    Fabric(FabricError),
    /// The requested training configuration is invalid.
    Config {
        /// What was wrong with the configuration.
        message: String,
    },
}

impl TrainError {
    /// Convenience constructor for configuration errors.
    pub fn config(message: impl Into<String>) -> Self {
        TrainError::Config { message: message.into() }
    }

    /// Whether bounded retry with backoff can clear this error — true only
    /// for injected transient faults surfacing from the storage or device
    /// layer.
    pub fn is_transient(&self) -> bool {
        match self {
            TrainError::Storage(e) => e.is_transient(),
            TrainError::Device(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Whether the error means a device is dead (dropped out or worn-out
    /// media) and must be rebuilt before the operation can succeed.
    pub fn needs_rebuild(&self) -> bool {
        match self {
            TrainError::Storage(e) => matches!(e, SsdError::WornOut { .. }),
            TrainError::Device(e) => e.needs_rebuild(),
            _ => false,
        }
    }
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Storage(e) => write!(f, "storage error: {e}"),
            TrainError::Device(e) => write!(f, "device error: {e}"),
            TrainError::Simulation(e) => write!(f, "simulation error: {e}"),
            TrainError::Fabric(e) => write!(f, "fabric error: {e}"),
            TrainError::Config { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Storage(e) => Some(e),
            TrainError::Device(e) => Some(e),
            TrainError::Simulation(e) => Some(e),
            TrainError::Fabric(e) => Some(e),
            TrainError::Config { .. } => None,
        }
    }
}

impl From<SsdError> for TrainError {
    fn from(e: SsdError) -> Self {
        TrainError::Storage(e)
    }
}

impl From<CsdError> for TrainError {
    fn from(e: CsdError) -> Self {
        TrainError::Device(e)
    }
}

impl From<SimError> for TrainError {
    fn from(e: SimError) -> Self {
        TrainError::Simulation(e)
    }
}

impl From<FabricError> for TrainError {
    fn from(e: FabricError) -> Self {
        TrainError::Fabric(e)
    }
}

impl From<CompressError> for TrainError {
    /// Compression representation errors (e.g. a shard longer than the u32
    /// index space) surface through the device layer, preserving the
    /// `TrainError` → [`CsdError`] → [`CompressError`] source chain.
    fn from(e: CompressError) -> Self {
        TrainError::Device(CsdError::Compression(e))
    }
}

/// One functional training substrate: something that owns an FP16 working
/// copy plus an offloaded FP32 master copy and can apply a dense gradient.
///
/// The trait is object-safe on purpose — `smart_infinity::Session` hands out
/// `Box<dyn Trainer>` so that the same loop drives the RAID0 baseline and
/// every Smart-Infinity configuration, and the integration tests assert the
/// substrates are interchangeable (bit-identical without compression).
pub trait Trainer: fmt::Debug {
    /// Runs one training step with an explicitly provided dense gradient and
    /// reports the step's telemetry.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping whatever substrate operation failed.
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError>;

    /// The FP16 working copy of the parameters (what the GPU computes with).
    fn params_fp16(&self) -> &FlatTensor;

    /// Reads the FP32 master copy back from the substrate's storage.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if a shard or block read fails.
    fn master_params(&mut self) -> Result<FlatTensor, TrainError>;

    /// Number of completed steps.
    fn steps_completed(&self) -> u64;

    /// Number of parameters being trained.
    fn num_params(&self) -> usize {
        self.params_fp16().len()
    }

    /// Serialises the trainer's resumable state — step counter, FP32 master
    /// parameters, optimizer auxiliary state and (when gradient compression
    /// is on) the error-feedback residuals — into a portable
    /// [`TrainerCheckpoint`](crate::TrainerCheckpoint).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for substrates that do not support
    /// checkpointing, or a substrate error if reading the state back fails.
    fn checkpoint(&mut self) -> Result<crate::TrainerCheckpoint, TrainError> {
        Err(TrainError::config("this trainer does not support checkpointing"))
    }

    /// Restores the trainer's state from a checkpoint taken by
    /// [`Trainer::checkpoint`], after which continued training is
    /// bit-identical to a run that was never interrupted.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] if the checkpoint does not match this
    /// trainer (wrong parameter count or state shape) or the substrate does
    /// not support restore.
    fn restore(&mut self, checkpoint: &crate::TrainerCheckpoint) -> Result<(), TrainError> {
        let _ = checkpoint;
        Err(TrainError::config("this trainer does not support checkpoint restore"))
    }

    /// Runs one training step pulling gradients from a
    /// [`GradientSource`](crate::GradientSource).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping whatever substrate operation failed.
    ///
    /// # Panics
    ///
    /// Panics if the source's parameter count differs from the trainer's.
    fn step_from(
        &mut self,
        source: &mut dyn crate::GradientSource,
    ) -> Result<StepReport, TrainError> {
        assert_eq!(source.num_params(), self.num_params(), "gradient source size mismatch");
        let grads = source.gradients(self.steps_completed() + 1, self.params_fp16());
        self.step(&grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        let e: TrainError = SsdError::EmptyArray.into();
        assert!(e.to_string().starts_with("storage error"));
        let e: TrainError = CsdError::MissingShard { shard: "s".into() }.into();
        assert!(e.to_string().starts_with("device error"));
        let e: TrainError = SimError::UnknownId { kind: "link", index: 1 }.into();
        assert!(e.to_string().starts_with("simulation error"));
        let e = TrainError::config("zero params");
        assert!(e.to_string().contains("zero params"));
    }

    #[test]
    fn source_chains_reach_the_originating_error() {
        // Two layers: TrainError -> CsdError -> SsdError.
        let e: TrainError = CsdError::from(SsdError::EmptyArray).into();
        let csd = e.source().expect("device layer");
        assert!(csd.downcast_ref::<CsdError>().is_some());
        let ssd = csd.source().expect("storage layer");
        assert_eq!(ssd.downcast_ref::<SsdError>(), Some(&SsdError::EmptyArray));
        assert!(ssd.source().is_none());
    }

    #[test]
    fn question_mark_converts_across_layer_boundaries() {
        fn storage_layer() -> Result<(), SsdError> {
            Err(SsdError::EmptyArray)
        }
        fn training_layer() -> Result<(), TrainError> {
            storage_layer()?;
            Ok(())
        }
        assert_eq!(training_layer(), Err(TrainError::Storage(SsdError::EmptyArray)));
    }

    #[test]
    fn step_report_helpers() {
        let dense = StepReport {
            storage_bytes_read: 16,
            storage_bytes_written: 12,
            ..StepReport::default()
        };
        assert_eq!(dense.storage_bytes_total(), 28);
        assert!(!dense.is_compressed());
        assert!(!dense.is_pipelined());
        let sparse = StepReport { compression_kept: Some(10), ..StepReport::default() };
        assert!(sparse.is_compressed());
    }

    #[test]
    fn stage_report_helpers() {
        let stages = StageReport { write_bytes: 8, update_bytes: 28, read_back_bytes: 4, lanes: 3 };
        assert_eq!(stages.total_bytes(), 40);
        assert!(stages.is_overlapped());
        assert!(!StageReport { lanes: 1, ..StageReport::default() }.is_overlapped());
        let report = StepReport { stages: Some(stages), ..StepReport::default() };
        assert!(report.is_pipelined());
        assert_eq!(report.stages.unwrap().update_bytes, 28);
    }

    #[test]
    fn compression_errors_chain_through_the_device_layer() {
        let compress = CompressError::IndexSpaceExceeded { original_len: 1 << 40 };
        let e: TrainError = compress.into();
        assert!(e.to_string().starts_with("device error"));
        let device = e.source().expect("device layer");
        assert!(device.downcast_ref::<CsdError>().is_some());
        let origin = device.source().expect("compression layer");
        assert_eq!(origin.downcast_ref::<CompressError>(), Some(&compress));
        assert!(origin.source().is_none());
    }

    #[test]
    fn trainer_is_object_safe() {
        // Compiles only if `dyn Trainer` is a valid type.
        fn _takes_dyn(_t: &mut dyn Trainer) {}
    }

    #[test]
    fn fabric_errors_convert_and_chain() {
        let e: TrainError = FabricError::Partitioned { from: 0, to: 5 }.into();
        assert!(e.to_string().starts_with("fabric error"));
        let origin = e.source().expect("fabric layer");
        assert_eq!(
            origin.downcast_ref::<FabricError>(),
            Some(&FabricError::Partitioned { from: 0, to: 5 })
        );
        assert!(!e.is_transient());
        assert!(!e.needs_rebuild());
    }

    #[test]
    fn fault_classification_spans_every_layer() {
        let injected = faultkit::FaultPlan::new({
            let mut s = faultkit::FaultSpec::empty(1);
            s.transient_per_mille = Some(1000);
            s.max_transient_burst = Some(1);
            s
        })
        .injector(0)
        .check(faultkit::FaultOpKind::Write)
        .unwrap_err();
        let transient: TrainError =
            SsdError::Injected { device: "d".into(), fault: injected }.into();
        assert!(transient.is_transient() && !transient.needs_rebuild());
        // The source chain reaches the injected-fault leaf three layers down.
        let ssd = transient.source().expect("storage layer");
        assert!(ssd
            .source()
            .expect("fault leaf")
            .downcast_ref::<faultkit::InjectedFault>()
            .is_some());

        let worn: TrainError = SsdError::WornOut { device: "d".into() }.into();
        assert!(!worn.is_transient() && worn.needs_rebuild());
        let dropped: TrainError = CsdError::Dropout { device: "c".into() }.into();
        assert!(!dropped.is_transient() && dropped.needs_rebuild());
        let wrapped: TrainError = CsdError::Ssd(SsdError::WornOut { device: "d".into() }).into();
        assert!(wrapped.needs_rebuild());
        assert!(!TrainError::config("x").is_transient());
    }

    #[test]
    fn degraded_report_helpers() {
        let mut d = DegradedReport::default();
        assert!(!d.is_degraded());
        assert_eq!(d.into_option(), None);
        d.transient_faults = 2;
        d.retries = 2;
        d.backoff_ms = 6;
        assert!(d.is_degraded());
        let mut total =
            DegradedReport { devices_rebuilt: 1, rebuild_bytes: 64, ..Default::default() };
        total.absorb(&d);
        assert_eq!(total.transient_faults, 2);
        assert_eq!(total.retries, 2);
        assert_eq!(total.backoff_ms, 6);
        assert_eq!(total.devices_rebuilt, 1);
        assert_eq!(total.rebuild_bytes, 64);
        assert_eq!(total.into_option(), Some(total));
        let report = StepReport { degraded: Some(total), ..StepReport::default() };
        assert!(report.is_degraded());
        assert!(!StepReport::default().is_degraded());
    }
}
