//! The unified training contract shared by every functional execution
//! substrate.
//!
//! Smart-Infinity's core claim is that one training loop can be retargeted
//! across substrates — host-CPU RAID0 baseline, near-storage SmartUpdate,
//! SmartComp — without the caller changing. This module is that seam:
//!
//! * [`Trainer`] — the object-safe trait implemented by
//!   [`StorageOffloadTrainer`](crate::StorageOffloadTrainer) and
//!   `smart_infinity::SmartInfinityTrainer`, so callers can hold a
//!   `Box<dyn Trainer>` and never care where the update runs.
//! * [`StepReport`] — per-step telemetry (bytes moved, compression
//!   keep-count, threads used) returned by every step, replacing the
//!   per-engine accessors that previously each spoke their own dialect.
//! * [`TrainError`] — the workspace-level error type. Every substrate error
//!   ([`SsdError`], [`CsdError`], [`SimError`]) converts into it, so the `?`
//!   operator works across layer boundaries and `source()` walks back down
//!   to the device that actually failed.

use csd::CsdError;
use gradcomp::CompressError;
use serde::Serialize;
use simkit::SimError;
use ssd::SsdError;
use std::error::Error;
use std::fmt;
use tensorlib::FlatTensor;

/// Per-stage byte telemetry of one pipelined training step.
///
/// The pipelined execution backend splits each device shard's step into three
/// stages — **write** (gradient ingest over the host interconnect),
/// **update** (CSD-internal optimizer update) and **read-back** (refreshed
/// FP16 parameters upstream) — and overlaps the stages of different shards.
/// This report records how many bytes each stage moved and how many pipeline
/// lanes ran concurrently; serial backends leave it `None` on the
/// [`StepReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageReport {
    /// Bytes the write stage pushed downstream over the shared host
    /// interconnect (dense gradients, or the Top-K index+value stream).
    pub write_bytes: u64,
    /// CSD-internal P2P bytes (reads + writes) the update stage moved.
    pub update_bytes: u64,
    /// FP16 parameter bytes the read-back stage returned upstream.
    pub read_back_bytes: u64,
    /// Concurrent pipeline lanes: device shards whose stages were in flight
    /// at once (`min(worker threads, non-empty shards)`).
    pub lanes: usize,
}

impl StageReport {
    /// Total bytes moved across all three stages.
    pub fn total_bytes(&self) -> u64 {
        self.write_bytes + self.update_bytes + self.read_back_bytes
    }

    /// Whether more than one pipeline lane was in flight (i.e. stages of
    /// different shards actually overlapped).
    pub fn is_overlapped(&self) -> bool {
        self.lanes > 1
    }
}

/// Per-step telemetry returned by [`Trainer::step`].
///
/// The byte counters mirror what the substrate-specific accessors used to
/// report, but scoped to one step and in one place:
///
/// * For the host baseline, `storage_bytes_*` is RAID0 traffic — which all
///   crosses the shared host interconnect.
/// * For the near-storage trainers, `storage_bytes_*` is CSD-internal P2P
///   traffic (SSD ↔ FPGA over the private switch) — the bytes the paper
///   keeps *off* the shared interconnect.
/// * `gradient_bytes` is always the gradient volume that crossed the host
///   interconnect (dense, or the index+value stream when SmartComp is on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StepReport {
    /// 1-based index of the step this report describes.
    pub step: u64,
    /// Bytes of gradient data that crossed the shared host interconnect this
    /// step. Dense gradients count 4 bytes per element per crossing (the
    /// baseline offloads them to storage and reads them back: two crossings;
    /// the near-storage path sends them downstream once); compressed
    /// gradients count the actual index+value stream.
    pub gradient_bytes: u64,
    /// Bytes read from storage this step (RAID0 reads for the baseline,
    /// CSD-internal P2P reads for the near-storage trainers).
    pub storage_bytes_read: u64,
    /// Bytes written to storage this step (RAID0 writes for the baseline,
    /// CSD-internal P2P writes for the near-storage trainers).
    pub storage_bytes_written: u64,
    /// Number of gradient elements kept by the Top-K selection this step,
    /// summed over shards; `None` when compression is disabled.
    pub compression_kept: Option<u64>,
    /// Host worker threads the execution backend used for this step.
    pub threads: usize,
    /// SIMD kernel path the hot loops (optimizer update, f16 conversion,
    /// candidate filtering) dispatched to this step — `scalar`, `sse2` or
    /// `avx2`, chosen at runtime by CPU feature detection (see
    /// [`tensorlib::KernelPath::active`]).
    pub kernel_path: tensorlib::KernelPath,
    /// Per-stage overlap telemetry of the pipelined execution backend;
    /// `None` for backends that execute the step's phases serially.
    pub stages: Option<StageReport>,
}

impl StepReport {
    /// Total storage bytes moved this step (read + written).
    pub fn storage_bytes_total(&self) -> u64 {
        self.storage_bytes_read + self.storage_bytes_written
    }

    /// Whether this step's gradients were compressed before crossing the
    /// interconnect.
    pub fn is_compressed(&self) -> bool {
        self.compression_kept.is_some()
    }

    /// Whether the step was executed by a pipelined backend (per-stage
    /// telemetry is present).
    pub fn is_pipelined(&self) -> bool {
        self.stages.is_some()
    }
}

/// The workspace-level training error: one type for every substrate, so a
/// training loop over a `dyn Trainer` — or code that mixes the functional and
/// timed stacks — can use `?` throughout and still recover the layer that
/// failed via [`Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A host-side storage (SSD / RAID0) operation failed.
    Storage(SsdError),
    /// A computational-storage-device operation failed.
    Device(CsdError),
    /// The discrete-event simulation of the timed stack failed.
    Simulation(SimError),
    /// The requested training configuration is invalid.
    Config {
        /// What was wrong with the configuration.
        message: String,
    },
}

impl TrainError {
    /// Convenience constructor for configuration errors.
    pub fn config(message: impl Into<String>) -> Self {
        TrainError::Config { message: message.into() }
    }
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Storage(e) => write!(f, "storage error: {e}"),
            TrainError::Device(e) => write!(f, "device error: {e}"),
            TrainError::Simulation(e) => write!(f, "simulation error: {e}"),
            TrainError::Config { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Storage(e) => Some(e),
            TrainError::Device(e) => Some(e),
            TrainError::Simulation(e) => Some(e),
            TrainError::Config { .. } => None,
        }
    }
}

impl From<SsdError> for TrainError {
    fn from(e: SsdError) -> Self {
        TrainError::Storage(e)
    }
}

impl From<CsdError> for TrainError {
    fn from(e: CsdError) -> Self {
        TrainError::Device(e)
    }
}

impl From<SimError> for TrainError {
    fn from(e: SimError) -> Self {
        TrainError::Simulation(e)
    }
}

impl From<CompressError> for TrainError {
    /// Compression representation errors (e.g. a shard longer than the u32
    /// index space) surface through the device layer, preserving the
    /// `TrainError` → [`CsdError`] → [`CompressError`] source chain.
    fn from(e: CompressError) -> Self {
        TrainError::Device(CsdError::Compression(e))
    }
}

/// One functional training substrate: something that owns an FP16 working
/// copy plus an offloaded FP32 master copy and can apply a dense gradient.
///
/// The trait is object-safe on purpose — `smart_infinity::Session` hands out
/// `Box<dyn Trainer>` so that the same loop drives the RAID0 baseline and
/// every Smart-Infinity configuration, and the integration tests assert the
/// substrates are interchangeable (bit-identical without compression).
pub trait Trainer: fmt::Debug {
    /// Runs one training step with an explicitly provided dense gradient and
    /// reports the step's telemetry.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping whatever substrate operation failed.
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError>;

    /// The FP16 working copy of the parameters (what the GPU computes with).
    fn params_fp16(&self) -> &FlatTensor;

    /// Reads the FP32 master copy back from the substrate's storage.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if a shard or block read fails.
    fn master_params(&mut self) -> Result<FlatTensor, TrainError>;

    /// Number of completed steps.
    fn steps_completed(&self) -> u64;

    /// Number of parameters being trained.
    fn num_params(&self) -> usize {
        self.params_fp16().len()
    }

    /// Runs one training step pulling gradients from a
    /// [`GradientSource`](crate::GradientSource).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping whatever substrate operation failed.
    ///
    /// # Panics
    ///
    /// Panics if the source's parameter count differs from the trainer's.
    fn step_from(
        &mut self,
        source: &mut dyn crate::GradientSource,
    ) -> Result<StepReport, TrainError> {
        assert_eq!(source.num_params(), self.num_params(), "gradient source size mismatch");
        let grads = source.gradients(self.steps_completed() + 1, self.params_fp16());
        self.step(&grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        let e: TrainError = SsdError::EmptyArray.into();
        assert!(e.to_string().starts_with("storage error"));
        let e: TrainError = CsdError::MissingShard { shard: "s".into() }.into();
        assert!(e.to_string().starts_with("device error"));
        let e: TrainError = SimError::UnknownId { kind: "link", index: 1 }.into();
        assert!(e.to_string().starts_with("simulation error"));
        let e = TrainError::config("zero params");
        assert!(e.to_string().contains("zero params"));
    }

    #[test]
    fn source_chains_reach_the_originating_error() {
        // Two layers: TrainError -> CsdError -> SsdError.
        let e: TrainError = CsdError::from(SsdError::EmptyArray).into();
        let csd = e.source().expect("device layer");
        assert!(csd.downcast_ref::<CsdError>().is_some());
        let ssd = csd.source().expect("storage layer");
        assert_eq!(ssd.downcast_ref::<SsdError>(), Some(&SsdError::EmptyArray));
        assert!(ssd.source().is_none());
    }

    #[test]
    fn question_mark_converts_across_layer_boundaries() {
        fn storage_layer() -> Result<(), SsdError> {
            Err(SsdError::EmptyArray)
        }
        fn training_layer() -> Result<(), TrainError> {
            storage_layer()?;
            Ok(())
        }
        assert_eq!(training_layer(), Err(TrainError::Storage(SsdError::EmptyArray)));
    }

    #[test]
    fn step_report_helpers() {
        let dense = StepReport {
            storage_bytes_read: 16,
            storage_bytes_written: 12,
            ..StepReport::default()
        };
        assert_eq!(dense.storage_bytes_total(), 28);
        assert!(!dense.is_compressed());
        assert!(!dense.is_pipelined());
        let sparse = StepReport { compression_kept: Some(10), ..StepReport::default() };
        assert!(sparse.is_compressed());
    }

    #[test]
    fn stage_report_helpers() {
        let stages = StageReport { write_bytes: 8, update_bytes: 28, read_back_bytes: 4, lanes: 3 };
        assert_eq!(stages.total_bytes(), 40);
        assert!(stages.is_overlapped());
        assert!(!StageReport { lanes: 1, ..StageReport::default() }.is_overlapped());
        let report = StepReport { stages: Some(stages), ..StepReport::default() };
        assert!(report.is_pipelined());
        assert_eq!(report.stages.unwrap().update_bytes, 28);
    }

    #[test]
    fn compression_errors_chain_through_the_device_layer() {
        let compress = CompressError::IndexSpaceExceeded { original_len: 1 << 40 };
        let e: TrainError = compress.into();
        assert!(e.to_string().starts_with("device error"));
        let device = e.source().expect("device layer");
        assert!(device.downcast_ref::<CsdError>().is_some());
        let origin = device.source().expect("compression layer");
        assert_eq!(origin.downcast_ref::<CompressError>(), Some(&compress));
        assert!(origin.source().is_none());
    }

    #[test]
    fn trainer_is_object_safe() {
        // Compiles only if `dyn Trainer` is a valid type.
        fn _takes_dyn(_t: &mut dyn Trainer) {}
    }
}
