//! The timed model of the ZeRO-Infinity + RAID0 baseline (paper Fig. 1).

use crate::machine::MachineConfig;
use crate::platform::TimedPlatform;
use crate::report::IterationReport;
use faultkit::TimedFaultEffects;
use llm::Workload;
use optim::OptimizerKind;
use simkit::{PhaseId, SimError, TaskId};

/// The storage-offloaded training baseline: forward and backward passes on
/// the GPU with block-wise parameter streaming, gradient offload to RAID0
/// SSDs, and a host-CPU update phase that uploads the optimizer states from
/// the SSDs, updates them with the AVX kernel and offloads them back.
#[derive(Debug, Clone)]
pub struct BaselineEngine {
    machine: MachineConfig,
    workload: Workload,
    optimizer: OptimizerKind,
    fault_effects: Option<TimedFaultEffects>,
}

impl BaselineEngine {
    /// Creates an engine for the given machine, workload and optimizer.
    pub fn new(machine: MachineConfig, workload: Workload, optimizer: OptimizerKind) -> Self {
        Self { machine, workload, optimizer, fault_effects: None }
    }

    /// Applies a fault plan's timed effects. The baseline has no in-storage
    /// compute, so only the host-uplink derating can bite; a straggler factor
    /// is carried but has nothing to slow down.
    #[must_use]
    pub fn with_fault_effects(mut self, effects: TimedFaultEffects) -> Self {
        if !effects.is_empty() {
            self.fault_effects = Some(effects);
        }
        self
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The workload description.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Simulates one training iteration and returns the phase breakdown.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation kernel (which only occurs
    /// for malformed task graphs and would indicate a bug in this engine).
    pub fn simulate_iteration(&self) -> Result<IterationReport, SimError> {
        let mut plat = TimedPlatform::new_with_faults(&self.machine, self.fault_effects.as_ref());
        let fw_phase = plat.add_phase("forward");
        let bw_phase = plat.add_phase("backward+grad_offload");
        let up_phase = plat.add_phase("update+opt_transfer");

        let fw_end = build_forward(&mut plat, &self.workload, fw_phase, &[]);
        let bw_end =
            build_backward_with_raid_offload(&mut plat, &self.workload, bw_phase, &[fw_end]);
        let up_end = self.build_update(&mut plat, up_phase, &[bw_end]);

        let timeline = plat.run()?;
        let t_fw = timeline.finish_time(fw_end);
        let t_bw = timeline.finish_time(bw_end);
        let t_up = timeline.finish_time(up_end);
        Ok(IterationReport::new(t_fw, t_bw - t_fw, t_up - t_bw))
    }

    /// The baseline update phase: for every block, upload gradients and
    /// optimizer states from the RAID0 array, update on the CPU, offload the
    /// states back. Uploads of the next block overlap with the CPU update and
    /// offload of the previous one (DeepSpeed's double-buffered pipeline).
    fn build_update(&self, plat: &mut TimedPlatform, phase: PhaseId, deps: &[TaskId]) -> TaskId {
        let n_dev = plat.num_devices();
        let blocks = self.workload.block_bytes_fp16();
        let state_per_m = self.optimizer.state_size_in_m(); // 6 for Adam, 4 for SGD/AdaGrad
        let mut prev_upload: Option<TaskId> = None;
        let mut last_tasks: Vec<TaskId> = Vec::new();
        for block_m in blocks {
            let block_m = block_m as f64; // FP16 bytes of this block = "1M" for the block
            let upload_bytes = (state_per_m + 2.0) * block_m; // states + FP32 gradients
            let offload_bytes = state_per_m * block_m;
            // Striped upload from every device.
            let mut upload_deps: Vec<TaskId> = deps.to_vec();
            if let Some(prev) = prev_upload {
                upload_deps.push(prev);
            }
            let uploads: Vec<TaskId> = (0..n_dev)
                .map(|d| plat.ssd_to_host(d, upload_bytes / n_dev as f64, &upload_deps, phase))
                .collect();
            let upload_done = plat.barrier(&uploads);
            prev_upload = Some(upload_done);
            // CPU update streams the states + gradients through the AVX kernel.
            let update = plat.cpu_update(upload_bytes, &[upload_done], phase);
            // Striped offload of the refreshed optimizer states.
            let offloads: Vec<TaskId> = (0..n_dev)
                .map(|d| plat.host_to_ssd(d, offload_bytes / n_dev as f64, &[update], phase))
                .collect();
            last_tasks = offloads;
            last_tasks.push(update);
        }
        plat.barrier(&last_tasks)
    }
}

/// Builds the forward pass: for each block, stream the FP16 parameters from
/// host memory to the GPU(s) and run the block's forward compute, overlapping
/// the next block's transfer with the current block's compute. With tensor
/// parallelism each GPU receives its slice of the block and exchanges
/// activations with its peers.
///
/// Returns a barrier task marking the end of the phase.
pub fn build_forward(
    plat: &mut TimedPlatform,
    workload: &Workload,
    phase: PhaseId,
    deps: &[TaskId],
) -> TaskId {
    build_pass(plat, workload, phase, deps, 1.0)
}

/// Builds the backward pass *without* gradient offload (compute and parameter
/// re-streaming only). Returns the end-of-compute barrier.
pub fn build_backward_compute(
    plat: &mut TimedPlatform,
    workload: &Workload,
    phase: PhaseId,
    deps: &[TaskId],
) -> TaskId {
    build_pass(plat, workload, phase, deps, 2.0)
}

fn build_pass(
    plat: &mut TimedPlatform,
    workload: &Workload,
    phase: PhaseId,
    deps: &[TaskId],
    flops_multiplier: f64,
) -> TaskId {
    let n_gpus = plat.num_gpus();
    let blocks = workload.block_bytes_fp16();
    let total_fp16: u64 = blocks.iter().sum();
    let flops_per_byte = flops_multiplier * workload.forward_flops() / total_fp16 as f64;
    let act_bytes_per_block =
        2.0 * (workload.batch_size() * workload.seq_len() * workload.model().hidden_size()) as f64;

    let mut prev_compute: Vec<Option<TaskId>> = vec![None; n_gpus];
    let mut prev_load: Vec<Option<TaskId>> = vec![None; n_gpus];
    let mut last: Vec<TaskId> = Vec::new();
    for block_bytes in blocks {
        let block_bytes = block_bytes as f64;
        let block_flops = block_bytes * flops_per_byte;
        let mut block_tasks = Vec::new();
        for gpu in 0..n_gpus {
            let mut load_deps: Vec<TaskId> = deps.to_vec();
            if let Some(p) = prev_load[gpu] {
                load_deps.push(p);
            }
            // Tensor parallelism: each GPU streams 1/n of the block weights.
            let load = plat.host_to_gpu(gpu, block_bytes / n_gpus as f64, &load_deps, phase);
            prev_load[gpu] = Some(load);
            let mut compute_deps = vec![load];
            if let Some(p) = prev_compute[gpu] {
                compute_deps.push(p);
            }
            let compute = plat.gpu_compute(gpu, block_flops / n_gpus as f64, &compute_deps, phase);
            prev_compute[gpu] = Some(compute);
            block_tasks.push(compute);
            // Tensor-parallel activation exchange with GPU 0 after the block.
            if n_gpus > 1 && gpu != 0 {
                let xfer = plat.gpu_to_gpu(gpu, 0, act_bytes_per_block, &[compute], phase);
                block_tasks.push(xfer);
            }
        }
        last = block_tasks;
    }
    plat.barrier(&last)
}

/// Builds the backward pass with RAID0 gradient offload: the block's FP32
/// gradients are staged to host memory and striped across all SSDs.
pub fn build_backward_with_raid_offload(
    plat: &mut TimedPlatform,
    workload: &Workload,
    phase: PhaseId,
    deps: &[TaskId],
) -> TaskId {
    let compute_end = build_backward_compute(plat, workload, phase, deps);
    let n_dev = plat.num_devices();
    let blocks = workload.block_bytes_fp16();
    // Gradient offload overlaps with backward compute in DeepSpeed; modelling it
    // as starting when the backward compute of the corresponding block region
    // finishes is approximated by letting the whole offload stream overlap the
    // backward compute tail: the offload of block i depends only on `deps` plus
    // the previous offload, and the phase ends when both compute and offload end.
    let mut prev: Option<TaskId> = None;
    let mut all = vec![compute_end];
    for block_m in blocks {
        // FP32 gradients = 2 x FP16 block bytes.
        let grad_bytes = 2.0 * block_m as f64;
        // Stage from GPU to host memory (FP16 on the wire), then stripe to SSDs.
        let mut stage_deps: Vec<TaskId> = deps.to_vec();
        if let Some(p) = prev {
            stage_deps.push(p);
        }
        let stage = plat.gpu_to_host(0, block_m as f64, &stage_deps, phase);
        let writes: Vec<TaskId> = (0..n_dev)
            .map(|d| plat.host_to_ssd(d, grad_bytes / n_dev as f64, &[stage], phase))
            .collect();
        let done = plat.barrier(&writes);
        prev = Some(done);
        all.push(done);
    }
    plat.barrier(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelConfig;

    fn small_workload() -> Workload {
        Workload::new(ModelConfig::gpt2_0_34b(), 4, 1024)
    }

    #[test]
    fn report_phases_are_positive_and_ordered() {
        let engine = BaselineEngine::new(
            MachineConfig::baseline_raid0(2),
            small_workload(),
            OptimizerKind::Adam,
        );
        let report = engine.simulate_iteration().unwrap();
        assert!(report.forward_s > 0.0);
        assert!(report.backward_s > 0.0);
        assert!(report.update_s > 0.0);
        // Backward costs at least as much compute as forward plus the offload.
        assert!(report.backward_s > report.forward_s);
        assert_eq!(engine.machine().num_devices, 2);
        assert_eq!(engine.workload().batch_size(), 4);
    }

    #[test]
    fn update_time_shrinks_with_more_ssds_until_saturation() {
        let time_update = |n: usize| {
            BaselineEngine::new(
                MachineConfig::baseline_raid0(n),
                small_workload(),
                OptimizerKind::Adam,
            )
            .simulate_iteration()
            .unwrap()
            .update_s
        };
        let u1 = time_update(1);
        let u2 = time_update(2);
        let u4 = time_update(4);
        let u8 = time_update(8);
        assert!(u1 > 1.5 * u2, "1 -> 2 SSDs should nearly halve the update: {u1} vs {u2}");
        assert!(u2 > u4);
        // Saturation: 4 -> 8 gives little.
        assert!(u4 / u8 < 1.35, "u4={u4} u8={u8}");
    }

    #[test]
    fn sgd_moves_less_state_than_adam() {
        let machine = MachineConfig::baseline_raid0(4);
        let adam = BaselineEngine::new(machine.clone(), small_workload(), OptimizerKind::Adam)
            .simulate_iteration()
            .unwrap();
        let sgd = BaselineEngine::new(machine, small_workload(), OptimizerKind::SgdMomentum)
            .simulate_iteration()
            .unwrap();
        assert!(sgd.update_s < adam.update_s);
        // Forward/backward are unaffected by the optimizer choice.
        assert!((sgd.forward_s - adam.forward_s).abs() < 1e-6);
    }

    #[test]
    fn faster_gpu_shrinks_compute_but_not_update() {
        let workload = Workload::paper_default(ModelConfig::gpt2_4b());
        let a5000 = BaselineEngine::new(
            MachineConfig::baseline_raid0(6),
            workload.clone(),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        let a100 = BaselineEngine::new(
            MachineConfig::baseline_raid0(6).with_gpu(llm::GpuSpec::a100()),
            workload,
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        assert!(a100.forward_s < a5000.forward_s);
        assert!((a100.update_s - a5000.update_s).abs() / a5000.update_s < 0.05);
        // The update fraction therefore grows on the faster GPU (Section VII-E).
        assert!(a100.update_fraction() > a5000.update_fraction());
    }

    #[test]
    fn larger_models_take_proportionally_longer() {
        let small = BaselineEngine::new(
            MachineConfig::baseline_raid0(4),
            Workload::paper_default(ModelConfig::gpt2_2_5b()),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        let large = BaselineEngine::new(
            MachineConfig::baseline_raid0(4),
            Workload::paper_default(ModelConfig::gpt2_8_3b()),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        let ratio = large.total_s() / small.total_s();
        assert!(ratio > 2.5 && ratio < 4.5, "expected roughly 3.3x, got {ratio:.2}");
    }
}
