//! The timed model of the ZeRO-Infinity + RAID0 baseline (paper Fig. 1).

use crate::machine::MachineConfig;
use crate::platform::TimedPlatform;
use crate::report::IterationReport;
use crate::schedule::{
    build_iteration_graph, GraphKnobs, HostUpdateScheduler, IterPhases, PlatformLowering, SiteMap,
};
use faultkit::TimedFaultEffects;
use llm::Workload;
use optim::OptimizerKind;
use simkit::SimError;

/// The storage-offloaded training baseline: forward and backward passes on
/// the GPU with block-wise parameter streaming, gradient offload to RAID0
/// SSDs, and a host-CPU update phase that uploads the optimizer states from
/// the SSDs, updates them with the AVX kernel and offloads them back.
#[derive(Debug, Clone)]
pub struct BaselineEngine {
    machine: MachineConfig,
    workload: Workload,
    optimizer: OptimizerKind,
    fault_effects: Option<TimedFaultEffects>,
}

impl BaselineEngine {
    /// Creates an engine for the given machine, workload and optimizer.
    pub fn new(machine: MachineConfig, workload: Workload, optimizer: OptimizerKind) -> Self {
        Self { machine, workload, optimizer, fault_effects: None }
    }

    /// Applies a fault plan's timed effects. The baseline has no in-storage
    /// compute, so only the host-uplink derating can bite; a straggler factor
    /// is carried but has nothing to slow down.
    #[must_use]
    pub fn with_fault_effects(mut self, effects: TimedFaultEffects) -> Self {
        if !effects.is_empty() {
            self.fault_effects = Some(effects);
        }
        self
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The workload description.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Simulates one training iteration and returns the phase breakdown.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation kernel (which only occurs
    /// for malformed task graphs and would indicate a bug in this engine).
    pub fn simulate_iteration(&self) -> Result<IterationReport, SimError> {
        let mut plat = TimedPlatform::new_with_faults(&self.machine, self.fault_effects.as_ref());
        let phases = IterPhases {
            forward: plat.add_phase("forward"),
            backward: plat.add_phase("backward+grad_offload"),
            update: plat.add_phase("update+opt_transfer"),
        };
        let sites = SiteMap::new(plat.num_gpus(), plat.num_devices());
        let graph = build_iteration_graph(
            &self.workload,
            sites,
            self.optimizer,
            &GraphKnobs::host_update(),
            phases,
        );
        let resources = plat.resource_catalog();
        let mut scheduler = HostUpdateScheduler::new(&graph.layout);
        let outcome = {
            let mut lowering = PlatformLowering::new(&mut plat);
            simkit::execute(&graph.dag, &resources, &mut scheduler, &mut lowering)?
        };

        let timeline = plat.run()?;
        let finish = |id| {
            let task = outcome.task(id).expect("executor schedules every DAG task");
            timeline.finish_time(task)
        };
        let t_fw = finish(graph.layout.fw_end);
        let t_bw = finish(graph.layout.bw_end);
        let t_up = finish(graph.layout.up_end);
        Ok(IterationReport::new(t_fw, t_bw - t_fw, t_up - t_bw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelConfig;

    fn small_workload() -> Workload {
        Workload::new(ModelConfig::gpt2_0_34b(), 4, 1024)
    }

    #[test]
    fn report_phases_are_positive_and_ordered() {
        let engine = BaselineEngine::new(
            MachineConfig::baseline_raid0(2),
            small_workload(),
            OptimizerKind::Adam,
        );
        let report = engine.simulate_iteration().unwrap();
        assert!(report.forward_s > 0.0);
        assert!(report.backward_s > 0.0);
        assert!(report.update_s > 0.0);
        // Backward costs at least as much compute as forward plus the offload.
        assert!(report.backward_s > report.forward_s);
        assert_eq!(engine.machine().num_devices, 2);
        assert_eq!(engine.workload().batch_size(), 4);
    }

    #[test]
    fn update_time_shrinks_with_more_ssds_until_saturation() {
        let time_update = |n: usize| {
            BaselineEngine::new(
                MachineConfig::baseline_raid0(n),
                small_workload(),
                OptimizerKind::Adam,
            )
            .simulate_iteration()
            .unwrap()
            .update_s
        };
        let u1 = time_update(1);
        let u2 = time_update(2);
        let u4 = time_update(4);
        let u8 = time_update(8);
        assert!(u1 > 1.5 * u2, "1 -> 2 SSDs should nearly halve the update: {u1} vs {u2}");
        assert!(u2 > u4);
        // Saturation: 4 -> 8 gives little.
        assert!(u4 / u8 < 1.35, "u4={u4} u8={u8}");
    }

    #[test]
    fn sgd_moves_less_state_than_adam() {
        let machine = MachineConfig::baseline_raid0(4);
        let adam = BaselineEngine::new(machine.clone(), small_workload(), OptimizerKind::Adam)
            .simulate_iteration()
            .unwrap();
        let sgd = BaselineEngine::new(machine, small_workload(), OptimizerKind::SgdMomentum)
            .simulate_iteration()
            .unwrap();
        assert!(sgd.update_s < adam.update_s);
        // Forward/backward are unaffected by the optimizer choice.
        assert!((sgd.forward_s - adam.forward_s).abs() < 1e-6);
    }

    #[test]
    fn faster_gpu_shrinks_compute_but_not_update() {
        let workload = Workload::paper_default(ModelConfig::gpt2_4b());
        let a5000 = BaselineEngine::new(
            MachineConfig::baseline_raid0(6),
            workload.clone(),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        let a100 = BaselineEngine::new(
            MachineConfig::baseline_raid0(6).with_gpu(llm::GpuSpec::a100()),
            workload,
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        assert!(a100.forward_s < a5000.forward_s);
        assert!((a100.update_s - a5000.update_s).abs() / a5000.update_s < 0.05);
        // The update fraction therefore grows on the faster GPU (Section VII-E).
        assert!(a100.update_fraction() > a5000.update_fraction());
    }

    #[test]
    fn larger_models_take_proportionally_longer() {
        let small = BaselineEngine::new(
            MachineConfig::baseline_raid0(4),
            Workload::paper_default(ModelConfig::gpt2_2_5b()),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        let large = BaselineEngine::new(
            MachineConfig::baseline_raid0(4),
            Workload::paper_default(ModelConfig::gpt2_8_3b()),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .unwrap();
        let ratio = large.total_s() / small.total_s();
        assert!(ratio > 2.5 && ratio < 4.5, "expected roughly 3.3x, got {ratio:.2}");
    }
}
