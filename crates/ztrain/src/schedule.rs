//! The shared iteration task graph and the method schedulers over it.
//!
//! Every timed engine in the workspace — the ZeRO-Infinity baseline and all
//! Smart-Infinity variants — describes one training iteration as the *same*
//! [`simkit::Dag`]: forward pass, backward pass, per-block gradient offload
//! towards the storage class, and a parameter/optimizer update placed either
//! on the host CPU or inside the storage devices. What differs between the
//! paper's methods is not the work but the *schedule*: where storage-class
//! transfers land ([`OffloadRouting`]), how consecutive update tasklets
//! synchronise ([`ChainSync`]), and which synchronisation anchors realise the
//! declared soft dataflow. Those choices live in [`MethodPolicy`], an
//! implementation of [`simkit::Scheduler`] consulted by [`simkit::execute`],
//! and are lowered onto a [`TimedPlatform`] by [`PlatformLowering`].
//!
//! The graph builder mirrors the historical hand-rolled schedule builders
//! task for task, so lowering a policy over the shared graph reproduces the
//! legacy timelines bit for bit (pinned by the golden tests in
//! `smart_infinity/tests/integration_sched.rs`).

use std::collections::HashMap;

use crate::platform::TimedPlatform;
use llm::Workload;
use optim::OptimizerKind;
use simkit::{
    Anchor, Dag, DagTaskId, DagWork, DataId, Decision, Lowered, Lowering, PhaseId, ScatterPlan,
    ScheduleDecision, Scheduler, SetupDelay, SimError, SystemView, TaskId, SITE_STORAGE,
};
use tensorlib::{Chunker, Partitioner};

/// Maps the abstract site indices used by iteration DAGs onto the components
/// of one training server.
///
/// Site 0 is the host; GPUs, storage devices, FPGA updaters and FPGA
/// decompressors follow in contiguous ranges. [`SITE_STORAGE`] stands for
/// the storage class as a whole; transfers touching it are placed onto
/// concrete device sites by the scheduler's [`ScatterPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMap {
    /// Number of GPUs in the server.
    pub num_gpus: usize,
    /// Number of storage devices (SSDs or CSDs).
    pub num_devices: usize,
}

/// What kind of component a concrete site index denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// The host CPU + DRAM.
    Host,
    /// GPU `g`.
    Gpu(usize),
    /// Storage device `d` (its NAND media).
    Storage(usize),
    /// The FPGA updater of CSD `d`.
    Fpga(usize),
    /// The FPGA decompressor of CSD `d`.
    Decompressor(usize),
}

impl SiteMap {
    /// A site map for a server with `num_gpus` GPUs and `num_devices`
    /// storage devices.
    pub fn new(num_gpus: usize, num_devices: usize) -> Self {
        Self { num_gpus, num_devices }
    }

    /// The host site.
    pub fn host(&self) -> usize {
        0
    }

    /// The site of GPU `g`.
    pub fn gpu(&self, g: usize) -> usize {
        1 + g
    }

    /// The site of storage device `d`.
    pub fn dev(&self, d: usize) -> usize {
        1 + self.num_gpus + d
    }

    /// The site of CSD `d`'s FPGA updater.
    pub fn fpga(&self, d: usize) -> usize {
        1 + self.num_gpus + self.num_devices + d
    }

    /// The site of CSD `d`'s FPGA decompressor.
    pub fn decomp(&self, d: usize) -> usize {
        1 + self.num_gpus + 2 * self.num_devices + d
    }

    /// Total number of concrete sites.
    pub fn len(&self) -> usize {
        1 + self.num_gpus + 3 * self.num_devices
    }

    /// Whether the map contains no sites (never true: the host always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decodes a concrete site index back into the component it denotes.
    pub fn classify(&self, site: usize) -> Option<SiteKind> {
        if site == 0 {
            return Some(SiteKind::Host);
        }
        let mut s = site - 1;
        if s < self.num_gpus {
            return Some(SiteKind::Gpu(s));
        }
        s -= self.num_gpus;
        if s < self.num_devices {
            return Some(SiteKind::Storage(s));
        }
        s -= self.num_devices;
        if s < self.num_devices {
            return Some(SiteKind::Fpga(s));
        }
        s -= self.num_devices;
        if s < self.num_devices {
            return Some(SiteKind::Decompressor(s));
        }
        None
    }
}

/// Where the parameter/optimizer update of the shared iteration graph runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePlacement {
    /// On the host CPU, with optimizer-state upload/offload per block
    /// (ZeRO-Infinity baseline).
    HostCpu,
    /// Inside the storage devices, subgroup by subgroup on the CSD FPGAs
    /// (Smart-Infinity).
    InStorage,
}

/// The *what* of an iteration: knobs that change which tasks exist and how
/// many bytes they carry, as opposed to scheduling policy (which only decides
/// where and when).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphKnobs {
    /// Update placement.
    pub placement: UpdatePlacement,
    /// SmartComp top-k keep ratio; `None` disables gradient compression.
    pub keep_ratio: Option<f64>,
    /// Elements per in-storage update subgroup (tasklet granularity).
    pub subgroup_elems: usize,
}

impl GraphKnobs {
    /// Knobs for the host-CPU update graph (no compression, whole-shard
    /// tasklets — the baseline has no subgroup pipeline).
    pub fn host_update() -> Self {
        Self { placement: UpdatePlacement::HostCpu, keep_ratio: None, subgroup_elems: usize::MAX }
    }

    /// Knobs for the in-storage update graph.
    pub fn in_storage(keep_ratio: Option<f64>, subgroup_elems: usize) -> Self {
        Self { placement: UpdatePlacement::InStorage, keep_ratio, subgroup_elems }
    }

    /// Fraction of the dense gradient volume that crosses the interconnect
    /// during offload (1.0 without SmartComp, `2·keep_ratio` with it).
    pub fn transfer_ratio(&self) -> f64 {
        self.keep_ratio.map_or(1.0, |k| (2.0 * k).min(1.0))
    }
}

/// Phase attribution for the three stages of one iteration.
#[derive(Debug, Clone, Copy)]
pub struct IterPhases {
    /// Forward pass.
    pub forward: PhaseId,
    /// Backward pass + gradient offload.
    pub backward: PhaseId,
    /// Parameter/optimizer update (+ state transfers).
    pub update: PhaseId,
}

/// Layout of one backward-pass gradient-offload block in the shared graph.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    /// First task of the block's offload stage (the GPU compression when
    /// SmartComp is on, otherwise the staging transfer itself). Block-to-block
    /// chaining anchors attach here.
    pub head: DagTaskId,
    /// The GPU top-k compression task, when SmartComp is on.
    pub compress: Option<DagTaskId>,
    /// The GPU→host staging transfer.
    pub stage: DagTaskId,
    /// The host→storage-class gradient scatter (placed by the scheduler).
    pub scatter: DagTaskId,
    /// The scattered-gradients data item.
    pub stored: DataId,
    /// Striped placement: `(device site, bytes)` with every device receiving
    /// an even slice of the block's gradients.
    pub striped: Vec<(usize, f64)>,
    /// Owner-routed placement: `(device site, bytes)` for the devices whose
    /// contiguous parameter shard intersects this block's flattened range.
    pub owned: Vec<(usize, f64)>,
}

/// Layout of one in-storage update tasklet chain (one subgroup of a shard).
#[derive(Debug, Clone, Copy)]
pub struct ChainPlan {
    /// P2P load of gradients + optimizer states (media → FPGA).
    pub load: DagTaskId,
    /// SmartComp decompression, when compression is on.
    pub decompress: Option<DagTaskId>,
    /// The FPGA optimizer update kernel.
    pub update: DagTaskId,
    /// Urgent FP32 master-parameter write-back (FPGA → media).
    pub wb_param: DagTaskId,
    /// FP16 parameter upstream to host memory.
    pub upstream: DagTaskId,
    /// Deferred optimizer-state write-back (FPGA → media).
    pub wb_state: DagTaskId,
    /// End-of-chain join.
    pub chain_end: DagTaskId,
}

/// Layout of one device's in-storage update work.
#[derive(Debug, Clone)]
pub struct DevicePlan {
    /// Device index.
    pub dev: usize,
    /// The device's storage site.
    pub site: usize,
    /// Gradient scatters of the blocks whose flattened range intersects this
    /// device's shard, in block order.
    pub grad_scatters: Vec<DagTaskId>,
    /// Tasklet chains, one per subgroup of the device's shard.
    pub chains: Vec<ChainPlan>,
}

/// Layout of one block's host-CPU update (the baseline's upload → update →
/// offload pipeline stage).
#[derive(Debug, Clone)]
pub struct HostUpdatePlan {
    /// Striped upload of gradients + optimizer states from the array.
    pub gather: DagTaskId,
    /// The host-CPU (AVX) update kernel.
    pub update: DagTaskId,
    /// Striped offload of the refreshed optimizer states.
    pub offload: DagTaskId,
    /// `(device site, bytes)` placement of the upload.
    pub upload_striped: Vec<(usize, f64)>,
    /// `(device site, bytes)` placement of the offload.
    pub offload_striped: Vec<(usize, f64)>,
}

/// Everything a method scheduler needs to know about the shared iteration
/// graph beyond the graph itself: which task plays which role.
#[derive(Debug, Clone)]
pub struct IterLayout {
    /// The site map the graph was built against.
    pub sites: SiteMap,
    /// Update placement the graph was built with.
    pub placement: UpdatePlacement,
    /// End-of-forward join.
    pub fw_end: DagTaskId,
    /// End of backward *compute* (re-streaming + FLOPs, before offload).
    pub bw_compute_end: DagTaskId,
    /// End of the backward phase (compute and gradient offload).
    pub bw_end: DagTaskId,
    /// End of the update phase.
    pub up_end: DagTaskId,
    /// End of the whole iteration (backward and update both drained); only
    /// present for in-storage graphs, whose update can overlap backward.
    pub phase_end: Option<DagTaskId>,
    /// Gradient-offload blocks, in backward order.
    pub blocks: Vec<BlockPlan>,
    /// Per-device in-storage update plans (devices with empty shards are
    /// omitted). Empty for host-update graphs.
    pub devices: Vec<DevicePlan>,
    /// Per-block host-update plans. Empty for in-storage graphs.
    pub host_updates: Vec<HostUpdatePlan>,
}

/// The shared iteration graph plus its layout.
#[derive(Debug)]
pub struct IterationGraph {
    /// The task graph.
    pub dag: Dag,
    /// Role layout for scheduler construction.
    pub layout: IterLayout,
}

/// Builds the forward or backward parameter-streaming pass: for each block,
/// stream the FP16 parameters from host memory to the GPU(s) and run the
/// block's compute, overlapping the next block's transfer with the current
/// block's compute; with tensor parallelism each GPU exchanges activations
/// with GPU 0 after each block.
fn build_pass(
    dag: &mut Dag,
    workload: &Workload,
    sites: SiteMap,
    phase: PhaseId,
    pass_dep: Option<DagTaskId>,
    flops_multiplier: f64,
    label: &str,
) -> DagTaskId {
    let n_gpus = sites.num_gpus;
    let blocks = workload.block_bytes_fp16();
    let total_fp16: u64 = blocks.iter().sum();
    let flops_per_byte = flops_multiplier * workload.forward_flops() / total_fp16 as f64;
    let act_bytes_per_block =
        2.0 * (workload.batch_size() * workload.seq_len() * workload.model().hidden_size()) as f64;

    let mut prev_compute: Vec<Option<DagTaskId>> = vec![None; n_gpus];
    let mut prev_load: Vec<Option<DagTaskId>> = vec![None; n_gpus];
    let mut last: Vec<DagTaskId> = Vec::new();
    for (b, block_bytes) in blocks.iter().copied().enumerate() {
        let block_bytes = block_bytes as f64;
        let block_flops = block_bytes * flops_per_byte;
        let mut block_tasks = Vec::new();
        for gpu in 0..n_gpus {
            // Tensor parallelism: each GPU streams 1/n of the block weights.
            let load = dag.add_task(
                format!("{label}.load.b{b}.g{gpu}"),
                DagWork::Transfer {
                    from: sites.host(),
                    to: sites.gpu(gpu),
                    bytes: block_bytes / n_gpus as f64,
                },
            );
            dag.set_phase(load, phase);
            if let Some(d) = pass_dep {
                dag.add_after(load, d);
            }
            if let Some(p) = prev_load[gpu] {
                dag.add_after(load, p);
            }
            let weights = dag.add_output(
                load,
                format!("{label}.weights.b{b}.g{gpu}"),
                block_bytes / n_gpus as f64,
                Some(sites.gpu(gpu)),
            );
            prev_load[gpu] = Some(load);
            let compute = dag.add_task(
                format!("{label}.compute.b{b}.g{gpu}"),
                DagWork::Compute { site: sites.gpu(gpu), amount: block_flops / n_gpus as f64 },
            );
            dag.set_phase(compute, phase);
            dag.connect(compute, weights);
            if let Some(p) = prev_compute[gpu] {
                dag.add_after(compute, p);
            }
            prev_compute[gpu] = Some(compute);
            block_tasks.push(compute);
            // Tensor-parallel activation exchange with GPU 0 after the block.
            if n_gpus > 1 && gpu != 0 {
                let acts = dag.add_output(
                    compute,
                    format!("{label}.acts.b{b}.g{gpu}"),
                    act_bytes_per_block,
                    Some(sites.gpu(gpu)),
                );
                let xfer = dag.add_task(
                    format!("{label}.actxfer.b{b}.g{gpu}"),
                    DagWork::Transfer {
                        from: sites.gpu(gpu),
                        to: sites.gpu(0),
                        bytes: act_bytes_per_block,
                    },
                );
                dag.set_phase(xfer, phase);
                dag.connect(xfer, acts);
                block_tasks.push(xfer);
            }
        }
        last = block_tasks;
    }
    let end = dag.add_task(format!("{label}.end"), DagWork::Join);
    for t in last {
        dag.add_after(end, t);
    }
    end
}

/// Builds the shared iteration graph: forward pass, backward pass with
/// per-block gradient offload towards the storage class, and the update
/// placed per `knobs.placement`. Task creation order mirrors the historical
/// schedule builders exactly, so any policy lowered over this graph in
/// ready-order reproduces the legacy timelines bit for bit.
pub fn build_iteration_graph(
    workload: &Workload,
    sites: SiteMap,
    optimizer: OptimizerKind,
    knobs: &GraphKnobs,
    phases: IterPhases,
) -> IterationGraph {
    let mut dag = Dag::new();
    let fw_end = build_pass(&mut dag, workload, sites, phases.forward, None, 1.0, "fw");
    let bw_compute_end =
        build_pass(&mut dag, workload, sites, phases.backward, Some(fw_end), 2.0, "bw");

    // Backward gradient offload: per block, (compress →) stage to host →
    // scatter towards the storage class. The scatter's placement — striped
    // or owner-routed — is the scheduler's call.
    let n_dev = sites.num_devices;
    let transfer_ratio = knobs.transfer_ratio();
    let compressed = knobs.keep_ratio.is_some();
    let block_sizes = workload.block_bytes_fp16();
    let total_params = workload.model().num_params() as usize;
    let partitioner = Partitioner::contiguous(total_params, n_dev);
    let mut blocks: Vec<BlockPlan> = Vec::new();
    let mut cursor = 0usize; // flattened-parameter offset of the block
    for (b, block_m) in block_sizes.iter().copied().enumerate() {
        let block_params = (block_m / 2) as usize;
        let block_start = cursor.min(total_params);
        let block_end = (cursor + block_params).min(total_params);
        cursor += block_params;
        let block_m = block_m as f64;
        let dense_grad_bytes = 2.0 * block_m;
        // SmartComp: sort/select on the GPU before offloading, modelled as a
        // few extra passes over the block's gradients.
        let (head, compress, stage) = if compressed {
            let sort_flops = 16.0 * (block_m / 2.0);
            let compress = dag.add_task(
                format!("compress.b{b}"),
                DagWork::Compute { site: sites.gpu(0), amount: sort_flops },
            );
            dag.set_phase(compress, phases.backward);
            dag.add_after(compress, fw_end);
            let compact = dag.add_output(
                compress,
                format!("topk.b{b}"),
                block_m * transfer_ratio.max(0.02),
                Some(sites.gpu(0)),
            );
            let stage = dag.add_task(
                format!("stage.b{b}"),
                DagWork::Transfer {
                    from: sites.gpu(0),
                    to: sites.host(),
                    bytes: block_m * transfer_ratio.max(0.02),
                },
            );
            dag.set_phase(stage, phases.backward);
            dag.connect(stage, compact);
            (compress, Some(compress), stage)
        } else {
            let stage = dag.add_task(
                format!("stage.b{b}"),
                DagWork::Transfer { from: sites.gpu(0), to: sites.host(), bytes: block_m },
            );
            dag.set_phase(stage, phases.backward);
            dag.add_after(stage, fw_end);
            (stage, None, stage)
        };
        let staged = dag.add_output(
            stage,
            format!("grads.b{b}@host"),
            dense_grad_bytes * transfer_ratio,
            Some(sites.host()),
        );
        let scatter = dag.add_task(
            format!("offload.b{b}"),
            DagWork::Transfer {
                from: sites.host(),
                to: SITE_STORAGE,
                bytes: dense_grad_bytes * transfer_ratio,
            },
        );
        dag.set_phase(scatter, phases.backward);
        dag.connect(scatter, staged);
        let stored = dag.add_output(
            scatter,
            format!("grads.b{b}@storage"),
            dense_grad_bytes * transfer_ratio,
            None,
        );
        let striped: Vec<(usize, f64)> = (0..n_dev)
            .map(|d| (sites.dev(d), dense_grad_bytes * transfer_ratio / n_dev as f64))
            .collect();
        let mut owned: Vec<(usize, f64)> = Vec::new();
        for d in 0..n_dev {
            let shard = partitioner.shard(d);
            let lo = block_start.max(shard.offset);
            let hi = block_end.min(shard.offset + shard.len);
            if hi <= lo {
                continue;
            }
            owned.push((sites.dev(d), 4.0 * (hi - lo) as f64 * transfer_ratio));
        }
        blocks.push(BlockPlan { head, compress, stage, scatter, stored, striped, owned });
    }
    let bw_end = dag.add_task("bw.offload_end", DagWork::Join);
    dag.add_after(bw_end, bw_compute_end);
    for plan in &blocks {
        dag.connect_soft(bw_end, plan.stored);
    }

    // Update phase.
    let (up_end, phase_end, devices, host_updates) = match knobs.placement {
        UpdatePlacement::InStorage => {
            let state_bytes_per_param = optimizer.state_bytes_per_param() as f64;
            let mut devices: Vec<DevicePlan> = Vec::new();
            let mut chain_ends: Vec<DagTaskId> = Vec::new();
            for dev in 0..n_dev {
                let shard = partitioner.shard(dev);
                if shard.len == 0 {
                    continue;
                }
                let site = sites.dev(dev);
                let grad_scatters: Vec<DagTaskId> = blocks
                    .iter()
                    .filter(|p| p.owned.iter().any(|&(s, _)| s == site))
                    .map(|p| p.scatter)
                    .collect();
                let owning: Vec<DataId> = blocks
                    .iter()
                    .filter(|p| p.owned.iter().any(|&(s, _)| s == site))
                    .map(|p| p.stored)
                    .collect();
                let chunker = Chunker::new(shard.len, knobs.subgroup_elems);
                let mut chains: Vec<ChainPlan> = Vec::new();
                for subgroup in chunker.subgroups() {
                    let s = subgroup.index;
                    let elems = subgroup.len as f64;
                    let state_bytes = elems * state_bytes_per_param;
                    let grad_load_bytes = elems * 4.0 * transfer_ratio;
                    let dense_grad_bytes = elems * 4.0;
                    let param_writeback_bytes = elems * 4.0; // FP32 master copy (urgent)
                    let deferred_state_bytes = state_bytes - param_writeback_bytes;
                    let upstream_bytes = elems * 2.0; // FP16 parameters to host memory

                    // 1. P2P load of gradients + optimizer states (media → FPGA).
                    let load = dag.add_task(
                        format!("load.d{dev}.s{s}"),
                        DagWork::Transfer {
                            from: site,
                            to: sites.fpga(dev),
                            bytes: state_bytes + grad_load_bytes,
                        },
                    );
                    dag.set_phase(load, phases.update);
                    if s == 0 {
                        // The first tasklet consumes the gradients this
                        // device received during backward; when exactly it
                        // may start is the scheduler's call.
                        for &item in &owning {
                            dag.connect_soft(load, item);
                        }
                    }
                    let loaded = dag.add_output(
                        load,
                        format!("states.d{dev}.s{s}@fpga"),
                        state_bytes + grad_load_bytes,
                        Some(sites.fpga(dev)),
                    );
                    // 2. Decompression (SmartComp only), then the update kernel.
                    let (update_src, decompress) = if compressed {
                        let dec = dag.add_task(
                            format!("decompress.d{dev}.s{s}"),
                            DagWork::Compute { site: sites.decomp(dev), amount: dense_grad_bytes },
                        );
                        dag.set_phase(dec, phases.update);
                        dag.connect(dec, loaded);
                        let dense = dag.add_output(
                            dec,
                            format!("dense_grads.d{dev}.s{s}"),
                            dense_grad_bytes,
                            Some(sites.fpga(dev)),
                        );
                        (dense, Some(dec))
                    } else {
                        (loaded, None)
                    };
                    let update = dag.add_task(
                        format!("update.d{dev}.s{s}"),
                        DagWork::Compute {
                            site: sites.fpga(dev),
                            amount: state_bytes + dense_grad_bytes,
                        },
                    );
                    dag.set_phase(update, phases.update);
                    dag.connect(update, update_src);
                    let updated = dag.add_output(
                        update,
                        format!("states.d{dev}.s{s}@fpga.fresh"),
                        state_bytes,
                        Some(sites.fpga(dev)),
                    );
                    // 3. Urgent parameter write-back, then upstream to host.
                    let wb_param = dag.add_task(
                        format!("wb_param.d{dev}.s{s}"),
                        DagWork::Transfer {
                            from: sites.fpga(dev),
                            to: site,
                            bytes: param_writeback_bytes,
                        },
                    );
                    dag.set_phase(wb_param, phases.update);
                    dag.connect(wb_param, updated);
                    let params_ssd = dag.add_output(
                        wb_param,
                        format!("params.d{dev}.s{s}@media"),
                        param_writeback_bytes,
                        Some(site),
                    );
                    let upstream = dag.add_task(
                        format!("upstream.d{dev}.s{s}"),
                        DagWork::Transfer { from: site, to: sites.host(), bytes: upstream_bytes },
                    );
                    dag.set_phase(upstream, phases.update);
                    dag.connect(upstream, params_ssd);
                    // 4. Deferred write-back of the remaining optimizer
                    // states: consumes the updated states, but whether it
                    // waits on the update kernel or on the urgent write-back
                    // is the handler policy's call.
                    let wb_state = dag.add_task(
                        format!("wb_state.d{dev}.s{s}"),
                        DagWork::Transfer {
                            from: sites.fpga(dev),
                            to: site,
                            bytes: deferred_state_bytes,
                        },
                    );
                    dag.set_phase(wb_state, phases.update);
                    dag.connect_soft(wb_state, updated);
                    let chain_end = dag.add_task(format!("chain_end.d{dev}.s{s}"), DagWork::Join);
                    dag.add_after(chain_end, upstream);
                    dag.add_after(chain_end, wb_state);
                    chains.push(ChainPlan {
                        load,
                        decompress,
                        update,
                        wb_param,
                        upstream,
                        wb_state,
                        chain_end,
                    });
                    chain_ends.push(chain_end);
                }
                devices.push(DevicePlan { dev, site, grad_scatters, chains });
            }
            let up_end = dag.add_task("update.end", DagWork::Join);
            for &ce in &chain_ends {
                dag.add_after(up_end, ce);
            }
            let phase_end = dag.add_task("iter.end", DagWork::Join);
            dag.add_after(phase_end, bw_end);
            dag.add_after(phase_end, up_end);
            (up_end, Some(phase_end), devices, Vec::new())
        }
        UpdatePlacement::HostCpu => {
            let state_per_m = optimizer.state_size_in_m(); // 6 for Adam, 4 for SGD/AdaGrad
            let mut host_updates: Vec<HostUpdatePlan> = Vec::new();
            let mut prev_gather: Option<DagTaskId> = None;
            for (b, block_m) in block_sizes.iter().copied().enumerate() {
                let block_m = block_m as f64; // FP16 bytes of this block = "1M"
                let upload_bytes = (state_per_m + 2.0) * block_m; // states + FP32 gradients
                let offload_bytes = state_per_m * block_m;
                // Striped upload from the array; the next block's upload
                // overlaps the CPU update and offload of the previous one
                // (DeepSpeed's double-buffered pipeline).
                let gather = dag.add_task(
                    format!("gather.b{b}"),
                    DagWork::Transfer { from: SITE_STORAGE, to: sites.host(), bytes: upload_bytes },
                );
                dag.set_phase(gather, phases.update);
                dag.add_after(gather, bw_end);
                if let Some(p) = prev_gather {
                    dag.add_after(gather, p);
                }
                prev_gather = Some(gather);
                let gathered = dag.add_output(
                    gather,
                    format!("states.b{b}@host"),
                    upload_bytes,
                    Some(sites.host()),
                );
                // CPU update streams states + gradients through the AVX kernel.
                let update = dag.add_task(
                    format!("cpu_update.b{b}"),
                    DagWork::Compute { site: sites.host(), amount: upload_bytes },
                );
                dag.set_phase(update, phases.update);
                dag.connect(update, gathered);
                let fresh = dag.add_output(
                    update,
                    format!("states.b{b}@host.fresh"),
                    offload_bytes,
                    Some(sites.host()),
                );
                // Striped offload of the refreshed optimizer states.
                let offload = dag.add_task(
                    format!("writeback.b{b}"),
                    DagWork::Transfer {
                        from: sites.host(),
                        to: SITE_STORAGE,
                        bytes: offload_bytes,
                    },
                );
                dag.set_phase(offload, phases.update);
                dag.connect(offload, fresh);
                let upload_striped: Vec<(usize, f64)> =
                    (0..n_dev).map(|d| (sites.dev(d), upload_bytes / n_dev as f64)).collect();
                let offload_striped: Vec<(usize, f64)> =
                    (0..n_dev).map(|d| (sites.dev(d), offload_bytes / n_dev as f64)).collect();
                host_updates.push(HostUpdatePlan {
                    gather,
                    update,
                    offload,
                    upload_striped,
                    offload_striped,
                });
            }
            let up_end = dag.add_task("update.end", DagWork::Join);
            (up_end, None, Vec::new(), host_updates)
        }
    };

    let layout = IterLayout {
        sites,
        placement: knobs.placement,
        fw_end,
        bw_compute_end,
        bw_end,
        up_end,
        phase_end,
        blocks,
        devices,
        host_updates,
    };
    IterationGraph { dag, layout }
}

/// How a policy places storage-class gradient scatters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadRouting {
    /// Every block's gradients are striped evenly across all devices and the
    /// writes are joined before the next block may stage (one staging
    /// buffer).
    Striped,
    /// Each block's bytes are routed to the devices owning its flattened
    /// parameter range; writes drain asynchronously while later blocks stage
    /// (pre-allocated per-device buffers).
    OwnerRouted,
}

/// How consecutive in-storage update tasklets on one device synchronise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainSync {
    /// Buffer reuse: the next load starts as soon as the previous update
    /// kernel freed its buffers, and deferred state write-back overlaps the
    /// urgent one (the paper's optimized internal handler).
    Overlapped,
    /// Fresh buffers per tasklet: the next tasklet waits for the whole
    /// previous chain to drain and pays `setup_s` of buffer-allocation and
    /// kernel-launch overhead (the naive handler).
    Sequential {
        /// Per-tasklet setup latency in seconds.
        setup_s: f64,
    },
}

/// The scheduling role a DAG task plays, if any. Tasks without a role carry
/// all their ordering structurally and schedule as-is.
#[derive(Debug, Clone, Copy)]
enum Role {
    /// First task of gradient-offload block `b` (chains on the previous
    /// block per the routing policy).
    BlockHead(usize),
    /// Gradient scatter of block `b` (placed per the routing policy).
    BlockScatter(usize),
    /// End-of-backward join (synchronises on scatters per the routing).
    BwEnd,
    /// In-storage tasklet load: chain `chain` of `layout.devices[device]`.
    ChainLoad {
        /// Index into [`IterLayout::devices`].
        device: usize,
        /// Chain index within the device.
        chain: usize,
    },
    /// Deferred state write-back of a tasklet chain.
    ChainWbState {
        /// Index into [`IterLayout::devices`].
        device: usize,
        /// Chain index within the device.
        chain: usize,
    },
    /// Host-update upload of block `b` (striped from the array).
    HostGather(usize),
    /// Host-update state offload of block `b` (striped to the array).
    HostOffload(usize),
    /// End-of-update join of the host-update graph.
    HostUpEnd,
}

/// A method schedule over the shared iteration graph: one of the paper's
/// execution strategies, expressed as placement + ordering decisions.
///
/// The four methods are instances of this policy:
///
/// | scheduler        | routing                        | chain sync                   |
/// |------------------|--------------------------------|------------------------------|
/// | `host-update`    | [`OffloadRouting::Striped`]    | — (host CPU update)          |
/// | `serial-naive`   | [`OffloadRouting::Striped`]    | [`ChainSync::Sequential`]    |
/// | `serial-overlap` | [`OffloadRouting::Striped`]    | [`ChainSync::Overlapped`]    |
/// | `pipelined`      | [`OffloadRouting::OwnerRouted`]| [`ChainSync::Overlapped`]    |
#[derive(Debug)]
pub struct MethodPolicy<'a> {
    name: &'static str,
    routing: OffloadRouting,
    chain: ChainSync,
    layout: &'a IterLayout,
    roles: HashMap<usize, Role>,
}

impl<'a> MethodPolicy<'a> {
    /// The ZeRO-Infinity baseline schedule: striped gradient offload and the
    /// double-buffered host-CPU update pipeline.
    pub fn host_update(layout: &'a IterLayout) -> Self {
        let mut roles = HashMap::new();
        Self::insert_block_roles(&mut roles, layout);
        for (b, plan) in layout.host_updates.iter().enumerate() {
            roles.insert(plan.gather.index(), Role::HostGather(b));
            roles.insert(plan.offload.index(), Role::HostOffload(b));
        }
        roles.insert(layout.up_end.index(), Role::HostUpEnd);
        Self {
            name: "host-update",
            routing: OffloadRouting::Striped,
            chain: ChainSync::Overlapped,
            layout,
            roles,
        }
    }

    /// An in-storage update schedule with the given routing and chain
    /// synchronisation.
    pub fn in_storage(
        layout: &'a IterLayout,
        routing: OffloadRouting,
        chain: ChainSync,
        name: &'static str,
    ) -> Self {
        let mut roles = HashMap::new();
        Self::insert_block_roles(&mut roles, layout);
        for (di, dev) in layout.devices.iter().enumerate() {
            for (ci, c) in dev.chains.iter().enumerate() {
                roles.insert(c.load.index(), Role::ChainLoad { device: di, chain: ci });
                roles.insert(c.wb_state.index(), Role::ChainWbState { device: di, chain: ci });
            }
        }
        Self { name, routing, chain, layout, roles }
    }

    fn insert_block_roles(roles: &mut HashMap<usize, Role>, layout: &IterLayout) {
        for (b, plan) in layout.blocks.iter().enumerate() {
            roles.insert(plan.head.index(), Role::BlockHead(b));
            roles.insert(plan.scatter.index(), Role::BlockScatter(b));
        }
        roles.insert(layout.bw_end.index(), Role::BwEnd);
    }

    /// The layout this policy schedules over.
    pub fn layout(&self) -> &IterLayout {
        self.layout
    }

    /// What device `dev`'s first tasklet waits for: the global end of
    /// backward when striped, the device's own gradient writes when
    /// owner-routed.
    fn grad_anchors(&self, dev: &DevicePlan) -> Vec<Anchor> {
        match self.routing {
            OffloadRouting::Striped => vec![Anchor::Task(self.layout.bw_end)],
            OffloadRouting::OwnerRouted => {
                if dev.grad_scatters.is_empty() {
                    vec![Anchor::Task(self.layout.bw_end)]
                } else {
                    dev.grad_scatters.iter().map(|&s| Anchor::TaskAtSite(s, dev.site)).collect()
                }
            }
        }
    }
}

impl Scheduler for MethodPolicy<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_task_ready(
        &mut self,
        task: DagTaskId,
        _dag: &Dag,
        _system: &SystemView<'_>,
    ) -> Vec<Decision> {
        let Some(role) = self.roles.get(&task.index()).copied() else {
            return vec![Decision::Schedule(ScheduleDecision::new(task))];
        };
        let decision = match role {
            Role::BlockHead(b) => {
                let mut d = ScheduleDecision::new(task);
                if b > 0 {
                    let prev = &self.layout.blocks[b - 1];
                    d = d.after(match self.routing {
                        // One staging buffer: wait for the previous block's
                        // joined writes.
                        OffloadRouting::Striped => Anchor::Task(prev.scatter),
                        // Per-device buffers: chain on the previous staging
                        // transfer only; its writes drain asynchronously.
                        OffloadRouting::OwnerRouted => Anchor::Task(prev.stage),
                    });
                }
                d
            }
            Role::BlockScatter(b) => {
                let plan = &self.layout.blocks[b];
                let (transfers, join) = match self.routing {
                    OffloadRouting::Striped => (plan.striped.clone(), true),
                    OffloadRouting::OwnerRouted => (plan.owned.clone(), false),
                };
                ScheduleDecision::new(task).scatter(ScatterPlan { transfers, join })
            }
            Role::BwEnd => {
                let anchors: Vec<Anchor> = match self.routing {
                    OffloadRouting::Striped => {
                        self.layout.blocks.iter().map(|p| Anchor::Task(p.scatter)).collect()
                    }
                    OffloadRouting::OwnerRouted => self
                        .layout
                        .blocks
                        .iter()
                        .flat_map(|p| {
                            p.owned.iter().map(|&(site, _)| Anchor::TaskAtSite(p.scatter, site))
                        })
                        .collect(),
                };
                ScheduleDecision::new(task).after_all(anchors)
            }
            Role::ChainLoad { device, chain } => {
                let dev = &self.layout.devices[device];
                let grads = self.grad_anchors(dev);
                match self.chain {
                    ChainSync::Overlapped => {
                        let mut d = ScheduleDecision::new(task).after_all(grads);
                        if chain > 0 {
                            d = d.after(Anchor::Task(dev.chains[chain - 1].update));
                        }
                        d
                    }
                    ChainSync::Sequential { setup_s } => {
                        let mut setup_after = grads.clone();
                        if chain > 0 {
                            setup_after.push(Anchor::Task(dev.chains[chain - 1].chain_end));
                        }
                        ScheduleDecision::new(task)
                            .after_all(grads)
                            .setup(SetupDelay { seconds: setup_s, after: setup_after })
                    }
                }
            }
            Role::ChainWbState { device, chain } => {
                let c = &self.layout.devices[device].chains[chain];
                let anchor = match self.chain {
                    ChainSync::Overlapped => Anchor::Task(c.update),
                    ChainSync::Sequential { .. } => Anchor::Task(c.wb_param),
                };
                ScheduleDecision::new(task).after(anchor)
            }
            Role::HostGather(b) => {
                let plan = &self.layout.host_updates[b];
                ScheduleDecision::new(task)
                    .scatter(ScatterPlan { transfers: plan.upload_striped.clone(), join: true })
            }
            Role::HostOffload(b) => {
                let plan = &self.layout.host_updates[b];
                ScheduleDecision::new(task)
                    .scatter(ScatterPlan { transfers: plan.offload_striped.clone(), join: false })
            }
            Role::HostUpEnd => {
                // The phase drains when the last block's offload writes and
                // CPU update are all done.
                let last = self
                    .layout
                    .host_updates
                    .last()
                    .expect("host-update layout has at least one block");
                let mut anchors: Vec<Anchor> = last
                    .offload_striped
                    .iter()
                    .map(|&(site, _)| Anchor::TaskAtSite(last.offload, site))
                    .collect();
                anchors.push(Anchor::Task(last.update));
                ScheduleDecision::new(task).after_all(anchors)
            }
        };
        vec![Decision::Schedule(decision)]
    }
}

/// The ZeRO-Infinity baseline schedule as a named [`Scheduler`]: striped
/// gradient offload and the double-buffered host-CPU update pipeline.
#[derive(Debug)]
pub struct HostUpdateScheduler<'a>(MethodPolicy<'a>);

impl<'a> HostUpdateScheduler<'a> {
    /// A host-update scheduler over `layout` (which must have been built
    /// with [`UpdatePlacement::HostCpu`]).
    pub fn new(layout: &'a IterLayout) -> Self {
        Self(MethodPolicy::host_update(layout))
    }
}

impl Scheduler for HostUpdateScheduler<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn on_task_ready(
        &mut self,
        task: DagTaskId,
        dag: &Dag,
        system: &SystemView<'_>,
    ) -> Vec<Decision> {
        self.0.on_task_ready(task, dag, system)
    }
}

/// Lowers scheduled DAG tasks onto a [`TimedPlatform`]: computes map to the
/// GPU / CPU / FPGA resources, transfers to the fabric path helpers, and
/// storage-class scatters to per-device media writes/reads.
#[derive(Debug)]
pub struct PlatformLowering<'a> {
    plat: &'a mut TimedPlatform,
    sites: SiteMap,
}

impl<'a> PlatformLowering<'a> {
    /// A lowering onto `plat`, with sites mapped per its machine config.
    pub fn new(plat: &'a mut TimedPlatform) -> Self {
        let sites = SiteMap::new(plat.num_gpus(), plat.num_devices());
        Self { plat, sites }
    }

    fn classify(&self, site: usize) -> Result<SiteKind, SimError> {
        self.sites.classify(site).ok_or(SimError::UnknownId { kind: "site", index: site })
    }

    fn require_phase(task: &simkit::DagTask) -> Result<PhaseId, SimError> {
        task.phase.ok_or_else(|| SimError::InvalidParameter {
            message: format!("task '{}' carries work but no phase attribution", task.name),
        })
    }

    fn lower_scatter(
        &mut self,
        from: usize,
        to: usize,
        plan: &ScatterPlan,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> Result<Lowered, SimError> {
        let mut flows: Vec<(usize, TaskId)> = Vec::with_capacity(plan.transfers.len());
        for &(site, bytes) in &plan.transfers {
            let SiteKind::Storage(d) = self.classify(site)? else {
                return Err(SimError::InvalidParameter {
                    message: format!("scatter target site {site} is not a storage device"),
                });
            };
            let flow = if to == SITE_STORAGE {
                match self.classify(from)? {
                    SiteKind::Host => self.plat.host_to_ssd(d, bytes, deps, phase),
                    SiteKind::Gpu(g) => self.plat.gpu_to_ssd(g, d, bytes, deps, phase),
                    _ => {
                        return Err(SimError::InvalidParameter {
                            message: format!("unsupported scatter source site {from}"),
                        })
                    }
                }
            } else {
                match self.classify(to)? {
                    SiteKind::Host => self.plat.ssd_to_host(d, bytes, deps, phase),
                    _ => {
                        return Err(SimError::InvalidParameter {
                            message: format!("unsupported gather target site {to}"),
                        })
                    }
                }
            };
            flows.push((site, flow));
        }
        let main = if flows.is_empty() {
            self.plat.barrier(deps)
        } else if plan.join {
            let ids: Vec<TaskId> = flows.iter().map(|&(_, t)| t).collect();
            self.plat.barrier(&ids)
        } else {
            flows.last().map(|&(_, t)| t).expect("non-empty flows")
        };
        Ok(Lowered { main, per_site: flows })
    }
}

impl Lowering for PlatformLowering<'_> {
    fn lower(
        &mut self,
        dag: &Dag,
        task: DagTaskId,
        scatter: Option<&ScatterPlan>,
        deps: &[TaskId],
    ) -> Result<Lowered, SimError> {
        let node =
            dag.task(task).ok_or(SimError::UnknownId { kind: "task", index: task.index() })?;
        match node.work {
            DagWork::Join => Ok(Lowered::single(self.plat.barrier(deps))),
            DagWork::Delay { seconds } => {
                let phase = Self::require_phase(node)?;
                Ok(Lowered::single(self.plat.delay(seconds, deps, phase)))
            }
            DagWork::Compute { site, amount } => {
                let phase = Self::require_phase(node)?;
                let id = match self.classify(site)? {
                    SiteKind::Host => self.plat.cpu_update(amount, deps, phase),
                    SiteKind::Gpu(g) => self.plat.gpu_compute(g, amount, deps, phase),
                    SiteKind::Fpga(d) => self.plat.fpga_update(d, amount, deps, phase),
                    SiteKind::Decompressor(d) => self.plat.fpga_decompress(d, amount, deps, phase),
                    SiteKind::Storage(_) => {
                        return Err(SimError::InvalidParameter {
                            message: format!(
                                "task '{}': storage media cannot run compute",
                                node.name
                            ),
                        })
                    }
                };
                Ok(Lowered::single(id))
            }
            DagWork::Transfer { from, to, bytes } => {
                let phase = Self::require_phase(node)?;
                if from == SITE_STORAGE || to == SITE_STORAGE {
                    let plan = scatter.ok_or_else(|| SimError::InvalidParameter {
                        message: format!(
                            "task '{}': storage-class transfer scheduled without a scatter plan",
                            node.name
                        ),
                    })?;
                    return self.lower_scatter(from, to, plan, deps, phase);
                }
                let id = match (self.classify(from)?, self.classify(to)?) {
                    (SiteKind::Host, SiteKind::Gpu(g)) => {
                        self.plat.host_to_gpu(g, bytes, deps, phase)
                    }
                    (SiteKind::Gpu(g), SiteKind::Host) => {
                        self.plat.gpu_to_host(g, bytes, deps, phase)
                    }
                    (SiteKind::Gpu(a), SiteKind::Gpu(b)) => {
                        self.plat.gpu_to_gpu(a, b, bytes, deps, phase)
                    }
                    (SiteKind::Host, SiteKind::Storage(d)) => {
                        self.plat.host_to_ssd(d, bytes, deps, phase)
                    }
                    (SiteKind::Storage(d), SiteKind::Host) => {
                        self.plat.ssd_to_host(d, bytes, deps, phase)
                    }
                    (SiteKind::Gpu(g), SiteKind::Storage(d)) => {
                        self.plat.gpu_to_ssd(g, d, bytes, deps, phase)
                    }
                    (SiteKind::Storage(a), SiteKind::Fpga(b)) if a == b => {
                        self.plat.ssd_to_fpga(a, bytes, deps, phase)
                    }
                    (SiteKind::Fpga(a), SiteKind::Storage(b)) if a == b => {
                        self.plat.fpga_to_ssd(a, bytes, deps, phase)
                    }
                    (f, t) => {
                        return Err(SimError::InvalidParameter {
                            message: format!(
                                "task '{}': no fabric route from {f:?} to {t:?}",
                                node.name
                            ),
                        })
                    }
                };
                Ok(Lowered::single(id))
            }
        }
    }

    fn lower_delay(
        &mut self,
        seconds: f64,
        deps: &[TaskId],
        phase: Option<PhaseId>,
    ) -> Result<TaskId, SimError> {
        let phase = phase.ok_or_else(|| SimError::InvalidParameter {
            message: "setup delay requires a phase attribution".to_string(),
        })?;
        Ok(self.plat.delay(seconds, deps, phase))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use llm::{ModelConfig, Workload};

    fn workload() -> Workload {
        Workload::new(ModelConfig::gpt2_0_34b(), 4, 1024)
    }

    #[test]
    fn site_map_round_trips() {
        let sites = SiteMap::new(2, 3);
        assert_eq!(sites.classify(sites.host()), Some(SiteKind::Host));
        assert_eq!(sites.classify(sites.gpu(1)), Some(SiteKind::Gpu(1)));
        assert_eq!(sites.classify(sites.dev(2)), Some(SiteKind::Storage(2)));
        assert_eq!(sites.classify(sites.fpga(0)), Some(SiteKind::Fpga(0)));
        assert_eq!(sites.classify(sites.decomp(2)), Some(SiteKind::Decompressor(2)));
        assert_eq!(sites.classify(sites.len()), None);
        assert!(!sites.is_empty());
    }

    #[test]
    fn shared_graph_validates_for_both_placements() {
        let machine = MachineConfig::smart_infinity(2);
        let mut plat = TimedPlatform::new(&machine);
        let sites = SiteMap::new(plat.num_gpus(), plat.num_devices());
        let phases = IterPhases {
            forward: plat.add_phase("fw"),
            backward: plat.add_phase("bw"),
            update: plat.add_phase("up"),
        };
        for knobs in [
            GraphKnobs::host_update(),
            GraphKnobs::in_storage(None, 100_000_000),
            GraphKnobs::in_storage(Some(0.1), 50_000_000),
        ] {
            let graph = build_iteration_graph(
                &workload(),
                sites,
                optim::OptimizerKind::Adam,
                &knobs,
                phases,
            );
            graph.dag.validate().expect("iteration graph is well formed");
            assert!(graph.dag.len() > 10);
            match knobs.placement {
                UpdatePlacement::HostCpu => {
                    assert!(graph.layout.phase_end.is_none());
                    assert!(!graph.layout.host_updates.is_empty());
                    assert!(graph.layout.devices.is_empty());
                }
                UpdatePlacement::InStorage => {
                    assert!(graph.layout.phase_end.is_some());
                    assert!(graph.layout.host_updates.is_empty());
                    assert!(!graph.layout.devices.is_empty());
                }
            }
        }
    }

    #[test]
    fn owner_routing_conserves_gradient_bytes() {
        let sites = SiteMap::new(1, 4);
        let mut plat = TimedPlatform::new(&MachineConfig::smart_infinity(4));
        let phases = IterPhases {
            forward: plat.add_phase("fw"),
            backward: plat.add_phase("bw"),
            update: plat.add_phase("up"),
        };
        let knobs = GraphKnobs::in_storage(None, 100_000_000);
        let graph =
            build_iteration_graph(&workload(), sites, optim::OptimizerKind::Adam, &knobs, phases);
        for block in &graph.layout.blocks {
            let striped: f64 = block.striped.iter().map(|&(_, b)| b).sum();
            let owned: f64 = block.owned.iter().map(|&(_, b)| b).sum();
            // Striping conserves the block's dense volume exactly; owner
            // routing conserves the clamped flattened intersection, which can
            // only fall short when parameter-count rounding truncates a block.
            assert!(owned <= striped + 1.0);
            assert!(striped > 0.0);
        }
    }

    #[test]
    fn transfer_ratio_matches_smartcomp_model() {
        assert_eq!(GraphKnobs::host_update().transfer_ratio(), 1.0);
        assert_eq!(GraphKnobs::in_storage(Some(0.1), 1).transfer_ratio(), 0.2);
        assert_eq!(GraphKnobs::in_storage(Some(0.9), 1).transfer_ratio(), 1.0);
    }
}
