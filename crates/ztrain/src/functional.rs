//! The functional baseline: storage-offloaded training that really moves the
//! bytes and really runs the optimizer.
//!
//! This engine is deliberately slow and literal. It exists so that the
//! Smart-Infinity functional engine can be proven numerically equivalent to
//! the baseline (SmartUpdate) and quantifiably close to it (SmartComp), and
//! so the per-iteration traffic counters can be checked against the analytic
//! Table I model.

use crate::trainer::{StepReport, TrainError, Trainer};
use optim::{Optimizer, OptimizerKind};
use ssd::{RaidArray, SsdDevice, SsdError};
use tensorlib::{Chunker, Dtype, FlatTensor};

/// Produces the flat gradient for one training step.
///
/// The functional engines are agnostic to where gradients come from: the
/// equivalence tests use deterministic synthetic gradients, while the
/// accuracy studies plug in a real model's backward pass.
pub trait GradientSource {
    /// Number of parameters the source produces gradients for.
    fn num_params(&self) -> usize;

    /// Computes the gradient for `step` given the current FP16 working copy
    /// of the parameters.
    fn gradients(&mut self, step: u64, params_fp16: &FlatTensor) -> FlatTensor;
}

/// Deterministic, parameter-independent pseudo-random gradients.
///
/// Useful for equivalence testing at realistic sizes: two engines fed the same
/// seed observe exactly the same gradient stream.
#[derive(Debug, Clone)]
pub struct SyntheticGradients {
    num_params: usize,
    std: f32,
    seed: u64,
}

impl SyntheticGradients {
    /// Creates a source of `N(0, std^2)` gradients for `num_params` parameters.
    pub fn new(num_params: usize, std: f32, seed: u64) -> Self {
        Self { num_params, std, seed }
    }
}

impl GradientSource for SyntheticGradients {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn gradients(&mut self, step: u64, _params_fp16: &FlatTensor) -> FlatTensor {
        FlatTensor::randn(self.num_params, self.std, self.seed.wrapping_add(step))
    }
}

/// The functional ZeRO-Infinity-style trainer: FP16 working copy in host
/// memory, FP32 master copy and optimizer states on a RAID0 array, block-wise
/// CPU updates.
#[derive(Debug)]
pub struct StorageOffloadTrainer {
    raid: RaidArray,
    params_fp16: FlatTensor,
    optimizer: Optimizer,
    chunker: Chunker,
    step: u64,
}

impl StorageOffloadTrainer {
    /// Region name of the FP32 master copy for a block.
    fn master_region(block: usize) -> String {
        format!("block{block}/master")
    }

    fn aux_region(block: usize, aux: usize) -> String {
        format!("block{block}/aux{aux}")
    }

    fn grad_region(block: usize) -> String {
        format!("block{block}/grad")
    }

    /// Creates a trainer: stores the FP32 master copy and zeroed optimizer
    /// states on a fresh RAID0 array of `num_ssds` devices and keeps an FP16
    /// working copy in (simulated) host memory.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if the devices cannot hold the optimizer state.
    pub fn new(
        initial_params: &FlatTensor,
        optimizer: Optimizer,
        num_ssds: usize,
        block_elems: usize,
    ) -> Result<Self, SsdError> {
        let devices: Vec<SsdDevice> =
            (0..num_ssds.max(1)).map(|i| SsdDevice::new(format!("ssd{i}"), u64::MAX / 4)).collect();
        let mut raid = RaidArray::new(devices, 1 << 20)?;
        let chunker = Chunker::new(initial_params.len(), block_elems.max(1));
        for block in chunker.subgroups() {
            let master = initial_params.slice(block.offset, block.len);
            raid.write_region(&Self::master_region(block.index), &master.to_bytes(Dtype::F32))?;
            for aux in 0..optimizer.kind().num_aux() {
                let zeros = FlatTensor::zeros(block.len);
                raid.write_region(
                    &Self::aux_region(block.index, aux),
                    &zeros.to_bytes(Dtype::F32),
                )?;
            }
        }
        // The FP16 working copy is derived from the master copy, exactly as
        // mixed-precision training does.
        let params_fp16 = FlatTensor::from_bytes(&initial_params.to_bytes(Dtype::F16), Dtype::F16);
        Ok(Self { raid, params_fp16, optimizer, chunker, step: 0 })
    }

    /// Number of parameters being trained.
    pub fn num_params(&self) -> usize {
        self.chunker.total()
    }

    /// The optimizer in use.
    pub fn optimizer_kind(&self) -> OptimizerKind {
        self.optimizer.kind()
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step
    }

    /// The FP16 working copy of the parameters (what the GPU would compute with).
    pub fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    /// Reads the FP32 master copy back from storage.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if a block region is missing (which would
    /// indicate a bug in this trainer).
    pub fn master_params(&mut self) -> Result<FlatTensor, SsdError> {
        let mut out = FlatTensor::zeros(self.chunker.total());
        for block in self.chunker.subgroups() {
            let bytes = self.raid.read_region(&Self::master_region(block.index))?;
            let tensor = FlatTensor::from_bytes(&bytes, Dtype::F32);
            out.write_slice(block.offset, tensor.as_slice());
        }
        Ok(out)
    }

    /// Runs one full training step with gradients from `source`: offloads the
    /// gradients block-wise to storage, then uploads states + gradients per
    /// block, updates them on the CPU and offloads the refreshed states.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if any storage operation fails.
    pub fn train_step(&mut self, source: &mut dyn GradientSource) -> Result<StepReport, SsdError> {
        assert_eq!(source.num_params(), self.num_params(), "gradient source size mismatch");
        let grads = source.gradients(self.step + 1, &self.params_fp16);
        self.train_step_with_grads(&grads)
    }

    /// Runs one training step with an explicitly provided dense gradient and
    /// reports the step's traffic telemetry.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if any storage operation fails.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn train_step_with_grads(&mut self, grads: &FlatTensor) -> Result<StepReport, SsdError> {
        assert_eq!(grads.len(), self.num_params(), "gradient length mismatch");
        let counters_before = self.raid.counters();
        self.step += 1;
        // Backward: offload the gradients of each block to storage (Fig. 1b).
        for block in self.chunker.subgroups() {
            let g = grads.slice(block.offset, block.len);
            self.raid.write_region(&Self::grad_region(block.index), &g.to_bytes(Dtype::F32))?;
        }
        // Update: per block, upload states+gradients, update on the CPU,
        // offload the states and refresh the FP16 working copy (Fig. 1c).
        for block in self.chunker.subgroups() {
            let master_bytes = self.raid.read_region(&Self::master_region(block.index))?;
            let mut master = FlatTensor::from_bytes(&master_bytes, Dtype::F32);
            let mut aux = Vec::with_capacity(self.optimizer.kind().num_aux());
            for a in 0..self.optimizer.kind().num_aux() {
                let bytes = self.raid.read_region(&Self::aux_region(block.index, a))?;
                aux.push(FlatTensor::from_bytes(&bytes, Dtype::F32));
            }
            let grad_bytes = self.raid.read_region(&Self::grad_region(block.index))?;
            let block_grads = FlatTensor::from_bytes(&grad_bytes, Dtype::F32);

            self.optimizer.step(master.as_mut_slice(), &block_grads, &mut aux, self.step);

            self.raid
                .write_region(&Self::master_region(block.index), &master.to_bytes(Dtype::F32))?;
            for (a, aux_tensor) in aux.iter().enumerate() {
                self.raid.write_region(
                    &Self::aux_region(block.index, a),
                    &aux_tensor.to_bytes(Dtype::F32),
                )?;
            }
            // Refresh the FP16 working copy from the new master values,
            // rounding straight into the working-copy buffer (no intermediate
            // byte stream or temporary tensor).
            let dst = &mut self.params_fp16.as_mut_slice()[block.offset..block.offset + block.len];
            master.roundtrip_f16_into(dst);
        }
        let delta = self.raid.counters().delta_since(&counters_before);
        Ok(StepReport {
            step: self.step,
            // The gradient crosses the shared host interconnect twice on this
            // substrate: offloaded to storage after backward, read back for
            // the CPU update (Table I's G write + G read).
            gradient_bytes: 8 * grads.len() as u64,
            storage_bytes_read: delta.bytes_read,
            storage_bytes_written: delta.bytes_written,
            compression_kept: None,
            threads: 1,
            kernel_path: tensorlib::KernelPath::active(),
            stages: None,
        })
    }

    /// Total bytes written to storage since creation.
    pub fn storage_bytes_written(&self) -> u64 {
        self.raid.total_bytes_written()
    }

    /// Total bytes read from storage since creation.
    pub fn storage_bytes_read(&self) -> u64 {
        self.raid.total_bytes_read()
    }
}

impl Trainer for StorageOffloadTrainer {
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        Ok(self.train_step_with_grads(grads)?)
    }

    fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        Ok(StorageOffloadTrainer::master_params(self)?)
    }

    fn steps_completed(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optim::HyperParams;

    fn reference_training(
        initial: &FlatTensor,
        optimizer: Optimizer,
        grads_per_step: &[FlatTensor],
    ) -> FlatTensor {
        let mut master = initial.clone();
        let mut aux = optimizer.init_aux(initial.len());
        for (i, grads) in grads_per_step.iter().enumerate() {
            optimizer.step(master.as_mut_slice(), grads, &mut aux, (i + 1) as u64);
        }
        master
    }

    #[test]
    fn offloaded_training_matches_in_memory_training_exactly() {
        let n = 3000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 100);
        let grads: Vec<FlatTensor> = (0..5).map(|s| FlatTensor::randn(n, 0.01, 200 + s)).collect();

        let reference = reference_training(&initial, optimizer, &grads);

        let mut trainer = StorageOffloadTrainer::new(&initial, optimizer, 3, 700).unwrap();
        for g in &grads {
            trainer.train_step_with_grads(g).unwrap();
        }
        assert_eq!(trainer.master_params().unwrap().as_slice(), reference.as_slice());
        assert_eq!(trainer.steps_completed(), 5);
        assert_eq!(trainer.num_params(), n);
        assert_eq!(trainer.optimizer_kind(), OptimizerKind::Adam);
    }

    #[test]
    fn block_count_does_not_change_the_result() {
        let n = 1024;
        let optimizer = Optimizer::new(
            OptimizerKind::SgdMomentum,
            HyperParams { lr: 0.1, ..Default::default() },
        );
        let initial = FlatTensor::randn(n, 0.05, 7);
        let grads = FlatTensor::randn(n, 0.01, 8);
        let mut small_blocks = StorageOffloadTrainer::new(&initial, optimizer, 2, 64).unwrap();
        let mut one_block = StorageOffloadTrainer::new(&initial, optimizer, 4, n).unwrap();
        small_blocks.train_step_with_grads(&grads).unwrap();
        one_block.train_step_with_grads(&grads).unwrap();
        assert_eq!(
            small_blocks.master_params().unwrap().as_slice(),
            one_block.master_params().unwrap().as_slice()
        );
    }

    #[test]
    fn fp16_working_copy_tracks_the_master_copy() {
        let n = 256;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 3);
        let mut trainer = StorageOffloadTrainer::new(&initial, optimizer, 1, 128).unwrap();
        let mut source = SyntheticGradients::new(n, 0.01, 77);
        trainer.train_step(&mut source).unwrap();
        let master = trainer.master_params().unwrap();
        let expected_fp16 = FlatTensor::from_bytes(&master.to_bytes(Dtype::F16), Dtype::F16);
        assert_eq!(trainer.params_fp16().as_slice(), expected_fp16.as_slice());
    }

    #[test]
    fn traffic_counters_match_the_table_one_accounting() {
        let n = 4096;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::zeros(n);
        let mut trainer = StorageOffloadTrainer::new(&initial, optimizer, 2, 1024).unwrap();
        // Setup wrote master (4n) + 2 aux (8n).
        let setup_written = trainer.storage_bytes_written();
        assert_eq!(setup_written, 12 * n as u64);
        let report = trainer.train_step_with_grads(&FlatTensor::zeros(n)).unwrap();
        // Per step: write grads (4n) + write back states (12n) = 16n  -> "8M" in
        // paper units (M = 2n bytes); read grads + states = 16n.
        assert_eq!(trainer.storage_bytes_written() - setup_written, 16 * n as u64);
        assert_eq!(trainer.storage_bytes_read(), 16 * n as u64);
        // The per-step report carries exactly the same accounting.
        assert_eq!(report.step, 1);
        assert_eq!(report.storage_bytes_written, 16 * n as u64);
        assert_eq!(report.storage_bytes_read, 16 * n as u64);
        assert_eq!(report.gradient_bytes, 8 * n as u64);
        assert_eq!(report.compression_kept, None);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn synthetic_gradients_are_deterministic_per_step() {
        let mut a = SyntheticGradients::new(100, 1.0, 5);
        let mut b = SyntheticGradients::new(100, 1.0, 5);
        let params = FlatTensor::zeros(100);
        assert_eq!(a.gradients(1, &params), b.gradients(1, &params));
        assert_ne!(a.gradients(1, &params), a.gradients(2, &params));
        assert_eq!(a.num_params(), 100);
    }
}
