//! The functional baseline: storage-offloaded training that really moves the
//! bytes and really runs the optimizer.
//!
//! This engine is deliberately slow and literal. It exists so that the
//! Smart-Infinity functional engine can be proven numerically equivalent to
//! the baseline (SmartUpdate) and quantifiably close to it (SmartComp), and
//! so the per-iteration traffic counters can be checked against the analytic
//! Table I model.

use crate::checkpoint::{bits_to_tensor, tensor_to_bits, TrainerCheckpoint};
use crate::recover::recover;
use crate::trainer::{DegradedReport, StepReport, TrainError, Trainer};
use faultkit::FaultPlan;
use optim::{Optimizer, OptimizerKind};
use ssd::{RaidArray, SsdDevice, SsdError};
use tensorlib::{Chunker, Dtype, FlatTensor};

/// Rebuilds whichever RAID member wore out (no-op if none did).
fn rebuild_worn(raid: &mut RaidArray) -> u64 {
    raid.worn_member().map_or(0, |i| raid.rebuild_member(i))
}

/// Produces the flat gradient for one training step.
///
/// The functional engines are agnostic to where gradients come from: the
/// equivalence tests use deterministic synthetic gradients, while the
/// accuracy studies plug in a real model's backward pass.
pub trait GradientSource {
    /// Number of parameters the source produces gradients for.
    fn num_params(&self) -> usize;

    /// Computes the gradient for `step` given the current FP16 working copy
    /// of the parameters.
    fn gradients(&mut self, step: u64, params_fp16: &FlatTensor) -> FlatTensor;
}

/// Deterministic, parameter-independent pseudo-random gradients.
///
/// Useful for equivalence testing at realistic sizes: two engines fed the same
/// seed observe exactly the same gradient stream.
#[derive(Debug, Clone)]
pub struct SyntheticGradients {
    num_params: usize,
    std: f32,
    seed: u64,
}

impl SyntheticGradients {
    /// Creates a source of `N(0, std^2)` gradients for `num_params` parameters.
    pub fn new(num_params: usize, std: f32, seed: u64) -> Self {
        Self { num_params, std, seed }
    }
}

impl GradientSource for SyntheticGradients {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn gradients(&mut self, step: u64, _params_fp16: &FlatTensor) -> FlatTensor {
        FlatTensor::randn(self.num_params, self.std, self.seed.wrapping_add(step))
    }
}

/// The functional ZeRO-Infinity-style trainer: FP16 working copy in host
/// memory, FP32 master copy and optimizer states on a RAID0 array, block-wise
/// CPU updates.
#[derive(Debug)]
pub struct StorageOffloadTrainer {
    raid: RaidArray,
    params_fp16: FlatTensor,
    optimizer: Optimizer,
    chunker: Chunker,
    step: u64,
    fault_plan: Option<FaultPlan>,
}

impl StorageOffloadTrainer {
    /// Region name of the FP32 master copy for a block.
    fn master_region(block: usize) -> String {
        format!("block{block}/master")
    }

    fn aux_region(block: usize, aux: usize) -> String {
        format!("block{block}/aux{aux}")
    }

    fn grad_region(block: usize) -> String {
        format!("block{block}/grad")
    }

    /// Creates a trainer: stores the FP32 master copy and zeroed optimizer
    /// states on a fresh RAID0 array of `num_ssds` devices and keeps an FP16
    /// working copy in (simulated) host memory.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if the devices cannot hold the optimizer state.
    pub fn new(
        initial_params: &FlatTensor,
        optimizer: Optimizer,
        num_ssds: usize,
        block_elems: usize,
    ) -> Result<Self, SsdError> {
        let devices: Vec<SsdDevice> =
            (0..num_ssds.max(1)).map(|i| SsdDevice::new(format!("ssd{i}"), u64::MAX / 4)).collect();
        let mut raid = RaidArray::new(devices, 1 << 20)?;
        let chunker = Chunker::new(initial_params.len(), block_elems.max(1));
        for block in chunker.subgroups() {
            let master = initial_params.slice(block.offset, block.len);
            raid.write_region(&Self::master_region(block.index), &master.to_bytes(Dtype::F32))?;
            for aux in 0..optimizer.kind().num_aux() {
                let zeros = FlatTensor::zeros(block.len);
                raid.write_region(
                    &Self::aux_region(block.index, aux),
                    &zeros.to_bytes(Dtype::F32),
                )?;
            }
        }
        // The FP16 working copy is derived from the master copy, exactly as
        // mixed-precision training does.
        let params_fp16 = FlatTensor::from_bytes(&initial_params.to_bytes(Dtype::F16), Dtype::F16);
        Ok(Self { raid, params_fp16, optimizer, chunker, step: 0, fault_plan: None })
    }

    /// Installs a fault plan: deterministic per-device injectors on the RAID
    /// members, plus scheduled wear-out. An empty plan is a no-op, so the
    /// fault-free path stays bit-identical.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if !plan.is_empty() {
            self.raid.install_fault_injectors(&plan);
            self.fault_plan = Some(plan);
        }
        self
    }

    fn max_retries(&self) -> u32 {
        self.fault_plan.as_ref().map_or(0, FaultPlan::max_retries)
    }

    /// Fires scheduled wear-out at the start of the step it is planned for.
    fn trigger_scheduled_faults(&mut self) {
        if let Some(plan) = &self.fault_plan {
            if plan.wearout_step() == Some(self.step) {
                if let Some(dev) = plan.wearout_device(self.raid.num_devices()) {
                    self.raid.inject_wearout(dev);
                }
            }
        }
    }

    /// Number of parameters being trained.
    pub fn num_params(&self) -> usize {
        self.chunker.total()
    }

    /// The optimizer in use.
    pub fn optimizer_kind(&self) -> OptimizerKind {
        self.optimizer.kind()
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step
    }

    /// The FP16 working copy of the parameters (what the GPU would compute with).
    pub fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    /// Reads the FP32 master copy back from storage.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if a block region is missing (which would
    /// indicate a bug in this trainer).
    pub fn master_params(&mut self) -> Result<FlatTensor, SsdError> {
        // Reassembly is maintenance traffic: it observes state rather than
        // training, so it must neither fail on nor consume fault decisions.
        self.raid.suspend_faults(true);
        let result = self.master_params_inner();
        self.raid.suspend_faults(false);
        result
    }

    fn master_params_inner(&mut self) -> Result<FlatTensor, SsdError> {
        let mut out = FlatTensor::zeros(self.chunker.total());
        for block in self.chunker.subgroups() {
            let bytes = self.raid.read_region(&Self::master_region(block.index))?;
            let tensor = FlatTensor::from_bytes(&bytes, Dtype::F32);
            out.write_slice(block.offset, tensor.as_slice());
        }
        Ok(out)
    }

    /// Runs one full training step with gradients from `source`: offloads the
    /// gradients block-wise to storage, then uploads states + gradients per
    /// block, updates them on the CPU and offloads the refreshed states.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if any storage operation fails.
    pub fn train_step(&mut self, source: &mut dyn GradientSource) -> Result<StepReport, SsdError> {
        assert_eq!(source.num_params(), self.num_params(), "gradient source size mismatch");
        let grads = source.gradients(self.step + 1, &self.params_fp16);
        self.train_step_with_grads(&grads)
    }

    /// Runs one training step with an explicitly provided dense gradient and
    /// reports the step's traffic telemetry.
    ///
    /// # Errors
    ///
    /// Returns an [`SsdError`] if any storage operation fails.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn train_step_with_grads(&mut self, grads: &FlatTensor) -> Result<StepReport, SsdError> {
        assert_eq!(grads.len(), self.num_params(), "gradient length mismatch");
        let counters_before = self.raid.counters();
        self.step += 1;
        self.trigger_scheduled_faults();
        let retries = self.max_retries();
        let mut deg = DegradedReport::default();
        // Backward: offload the gradients of each block to storage (Fig. 1b).
        // Every storage operation is wrapped in the recovery policy; RAID
        // region writes are idempotent whole-region writes, so a retry (or a
        // post-rebuild replay) lands on exactly the same bytes.
        for block in self.chunker.subgroups() {
            let g = grads.slice(block.offset, block.len);
            let bytes = g.to_bytes(Dtype::F32);
            let region = Self::grad_region(block.index);
            recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                raid.write_region(&region, &bytes)
            })?;
        }
        // Update: per block, upload states+gradients, update on the CPU,
        // offload the states and refresh the FP16 working copy (Fig. 1c).
        for block in self.chunker.subgroups() {
            let region = Self::master_region(block.index);
            let master_bytes = recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                raid.read_region(&region)
            })?;
            let mut master = FlatTensor::from_bytes(&master_bytes, Dtype::F32);
            let mut aux = Vec::with_capacity(self.optimizer.kind().num_aux());
            for a in 0..self.optimizer.kind().num_aux() {
                let region = Self::aux_region(block.index, a);
                let bytes = recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                    raid.read_region(&region)
                })?;
                aux.push(FlatTensor::from_bytes(&bytes, Dtype::F32));
            }
            let region = Self::grad_region(block.index);
            let grad_bytes = recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                raid.read_region(&region)
            })?;
            let block_grads = FlatTensor::from_bytes(&grad_bytes, Dtype::F32);

            self.optimizer.step(master.as_mut_slice(), &block_grads, &mut aux, self.step);

            let region = Self::master_region(block.index);
            let bytes = master.to_bytes(Dtype::F32);
            recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                raid.write_region(&region, &bytes)
            })?;
            for (a, aux_tensor) in aux.iter().enumerate() {
                let region = Self::aux_region(block.index, a);
                let bytes = aux_tensor.to_bytes(Dtype::F32);
                recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                    raid.write_region(&region, &bytes)
                })?;
            }
            // Refresh the FP16 working copy from the new master values,
            // rounding straight into the working-copy buffer (no intermediate
            // byte stream or temporary tensor).
            let dst = &mut self.params_fp16.as_mut_slice()[block.offset..block.offset + block.len];
            master.roundtrip_f16_into(dst);
        }
        // Transient faults are absorbed per member op inside the RAID (see
        // `RaidArray::install_fault_injectors`); fold the absorbed events into
        // the step's degradation report.
        let (fault_retries, backoff_ms) = self.raid.take_fault_events();
        deg.transient_faults += fault_retries;
        deg.retries += fault_retries;
        deg.backoff_ms += backoff_ms;
        let delta = self.raid.counters().delta_since(&counters_before);
        Ok(StepReport {
            step: self.step,
            // The gradient crosses the shared host interconnect twice on this
            // substrate: offloaded to storage after backward, read back for
            // the CPU update (Table I's G write + G read).
            gradient_bytes: 8 * grads.len() as u64,
            storage_bytes_read: delta.bytes_read,
            storage_bytes_written: delta.bytes_written,
            compression_kept: None,
            threads: 1,
            kernel_path: tensorlib::KernelPath::active(),
            stages: None,
            degraded: deg.into_option(),
        })
    }

    /// Total bytes written to storage since creation.
    pub fn storage_bytes_written(&self) -> u64 {
        self.raid.total_bytes_written()
    }

    /// Total bytes read from storage since creation.
    pub fn storage_bytes_read(&self) -> u64 {
        self.raid.total_bytes_read()
    }
}

impl Trainer for StorageOffloadTrainer {
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        Ok(self.train_step_with_grads(grads)?)
    }

    fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        Ok(StorageOffloadTrainer::master_params(self)?)
    }

    fn steps_completed(&self) -> u64 {
        self.step
    }

    fn checkpoint(&mut self) -> Result<TrainerCheckpoint, TrainError> {
        let retries = self.max_retries();
        let mut deg = DegradedReport::default();
        let num_aux = self.optimizer.kind().num_aux();
        let n = self.chunker.total();
        let mut master_bits = Vec::with_capacity(n);
        let mut aux_bits = vec![Vec::with_capacity(n); num_aux];
        // Maintenance traffic must not consume fault decisions, or a
        // checkpointed-then-resumed run would see a shifted fault schedule
        // relative to an uninterrupted one.
        self.raid.suspend_faults(true);
        // Blocks are contiguous chunks in order, so concatenating per-block
        // reads yields the global tensors.
        let result: Result<(), SsdError> = (|| {
            for block in self.chunker.subgroups() {
                let region = Self::master_region(block.index);
                let bytes = recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                    raid.read_region(&region)
                })?;
                master_bits.extend(tensor_to_bits(&FlatTensor::from_bytes(&bytes, Dtype::F32)));
                for (a, bits) in aux_bits.iter_mut().enumerate() {
                    let region = Self::aux_region(block.index, a);
                    let bytes = recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                        raid.read_region(&region)
                    })?;
                    bits.extend(tensor_to_bits(&FlatTensor::from_bytes(&bytes, Dtype::F32)));
                }
            }
            Ok(())
        })();
        self.raid.suspend_faults(false);
        result?;
        Ok(TrainerCheckpoint {
            step: self.step,
            num_params: n as u64,
            master_bits,
            aux_bits,
            // The baseline neither compresses gradients nor keeps residuals.
            residual_bits: Vec::new(),
        })
    }

    fn restore(&mut self, checkpoint: &TrainerCheckpoint) -> Result<(), TrainError> {
        checkpoint.check_matches(self.num_params(), self.optimizer.kind().num_aux())?;
        let retries = self.max_retries();
        let mut deg = DegradedReport::default();
        let master = bits_to_tensor(&checkpoint.master_bits);
        self.raid.suspend_faults(true);
        let result: Result<(), SsdError> = (|| {
            for block in self.chunker.subgroups() {
                let region = Self::master_region(block.index);
                let bytes = master.slice(block.offset, block.len).to_bytes(Dtype::F32);
                recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                    raid.write_region(&region, &bytes)
                })?;
                for (a, bits) in checkpoint.aux_bits.iter().enumerate() {
                    let region = Self::aux_region(block.index, a);
                    let aux = bits_to_tensor(&bits[block.offset..block.offset + block.len]);
                    let bytes = aux.to_bytes(Dtype::F32);
                    recover(retries, &mut deg, &mut self.raid, rebuild_worn, |raid| {
                        raid.write_region(&region, &bytes)
                    })?;
                }
            }
            Ok(())
        })();
        self.raid.suspend_faults(false);
        result?;
        self.params_fp16 = FlatTensor::from_bytes(&master.to_bytes(Dtype::F16), Dtype::F16);
        self.step = checkpoint.step;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optim::HyperParams;

    fn reference_training(
        initial: &FlatTensor,
        optimizer: Optimizer,
        grads_per_step: &[FlatTensor],
    ) -> FlatTensor {
        let mut master = initial.clone();
        let mut aux = optimizer.init_aux(initial.len());
        for (i, grads) in grads_per_step.iter().enumerate() {
            optimizer.step(master.as_mut_slice(), grads, &mut aux, (i + 1) as u64);
        }
        master
    }

    #[test]
    fn offloaded_training_matches_in_memory_training_exactly() {
        let n = 3000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 100);
        let grads: Vec<FlatTensor> = (0..5).map(|s| FlatTensor::randn(n, 0.01, 200 + s)).collect();

        let reference = reference_training(&initial, optimizer, &grads);

        let mut trainer = StorageOffloadTrainer::new(&initial, optimizer, 3, 700).unwrap();
        for g in &grads {
            trainer.train_step_with_grads(g).unwrap();
        }
        assert_eq!(trainer.master_params().unwrap().as_slice(), reference.as_slice());
        assert_eq!(trainer.steps_completed(), 5);
        assert_eq!(trainer.num_params(), n);
        assert_eq!(trainer.optimizer_kind(), OptimizerKind::Adam);
    }

    #[test]
    fn block_count_does_not_change_the_result() {
        let n = 1024;
        let optimizer = Optimizer::new(
            OptimizerKind::SgdMomentum,
            HyperParams { lr: 0.1, ..Default::default() },
        );
        let initial = FlatTensor::randn(n, 0.05, 7);
        let grads = FlatTensor::randn(n, 0.01, 8);
        let mut small_blocks = StorageOffloadTrainer::new(&initial, optimizer, 2, 64).unwrap();
        let mut one_block = StorageOffloadTrainer::new(&initial, optimizer, 4, n).unwrap();
        small_blocks.train_step_with_grads(&grads).unwrap();
        one_block.train_step_with_grads(&grads).unwrap();
        assert_eq!(
            small_blocks.master_params().unwrap().as_slice(),
            one_block.master_params().unwrap().as_slice()
        );
    }

    #[test]
    fn fp16_working_copy_tracks_the_master_copy() {
        let n = 256;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 3);
        let mut trainer = StorageOffloadTrainer::new(&initial, optimizer, 1, 128).unwrap();
        let mut source = SyntheticGradients::new(n, 0.01, 77);
        trainer.train_step(&mut source).unwrap();
        let master = trainer.master_params().unwrap();
        let expected_fp16 = FlatTensor::from_bytes(&master.to_bytes(Dtype::F16), Dtype::F16);
        assert_eq!(trainer.params_fp16().as_slice(), expected_fp16.as_slice());
    }

    #[test]
    fn traffic_counters_match_the_table_one_accounting() {
        let n = 4096;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::zeros(n);
        let mut trainer = StorageOffloadTrainer::new(&initial, optimizer, 2, 1024).unwrap();
        // Setup wrote master (4n) + 2 aux (8n).
        let setup_written = trainer.storage_bytes_written();
        assert_eq!(setup_written, 12 * n as u64);
        let report = trainer.train_step_with_grads(&FlatTensor::zeros(n)).unwrap();
        // Per step: write grads (4n) + write back states (12n) = 16n  -> "8M" in
        // paper units (M = 2n bytes); read grads + states = 16n.
        assert_eq!(trainer.storage_bytes_written() - setup_written, 16 * n as u64);
        assert_eq!(trainer.storage_bytes_read(), 16 * n as u64);
        // The per-step report carries exactly the same accounting.
        assert_eq!(report.step, 1);
        assert_eq!(report.storage_bytes_written, 16 * n as u64);
        assert_eq!(report.storage_bytes_read, 16 * n as u64);
        assert_eq!(report.gradient_bytes, 8 * n as u64);
        assert_eq!(report.compression_kept, None);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn injected_faults_are_recovered_and_do_not_change_the_numbers() {
        let n = 1024;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 15);
        let grads: Vec<FlatTensor> = (0..4).map(|s| FlatTensor::randn(n, 0.01, 60 + s)).collect();

        let mut clean = StorageOffloadTrainer::new(&initial, optimizer, 3, 256).unwrap();
        let mut faulty = StorageOffloadTrainer::new(&initial, optimizer, 3, 256)
            .unwrap()
            .with_fault_plan(faultkit::FaultPlan::new({
                let mut s = faultkit::FaultSpec::empty(9);
                s.transient_per_mille = Some(150);
                s.ssd_wearout_step = Some(3);
                s
            }));
        let mut saw_transient = false;
        let mut saw_rebuild = false;
        for (i, g) in grads.iter().enumerate() {
            let clean_report = clean.train_step_with_grads(g).unwrap();
            assert!(clean_report.degraded.is_none());
            let report = faulty.train_step_with_grads(g).unwrap();
            if let Some(d) = report.degraded {
                saw_transient |= d.transient_faults > 0;
                if (i + 1) as u64 == 3 {
                    saw_rebuild |= d.devices_rebuilt > 0;
                }
            }
        }
        assert!(saw_transient, "a 15% fault rate over many ops must fire");
        assert!(saw_rebuild, "the scheduled wear-out at step 3 must trigger a rebuild");
        // Recovery is invisible to the training numbers.
        assert_eq!(
            faulty.master_params().unwrap().as_slice(),
            clean.master_params().unwrap().as_slice()
        );
        assert_eq!(faulty.params_fp16().as_slice(), clean.params_fp16().as_slice());
    }

    #[test]
    fn empty_fault_plan_is_a_no_op() {
        let n = 256;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 16);
        let grads = FlatTensor::randn(n, 0.01, 17);
        let mut plain = StorageOffloadTrainer::new(&initial, optimizer, 2, 64).unwrap();
        let mut with_empty = StorageOffloadTrainer::new(&initial, optimizer, 2, 64)
            .unwrap()
            .with_fault_plan(faultkit::FaultPlan::new(faultkit::FaultSpec::empty(99)));
        let a = plain.train_step_with_grads(&grads).unwrap();
        let b = with_empty.train_step_with_grads(&grads).unwrap();
        assert_eq!(a, b, "step reports must be bit-identical");
        assert_eq!(
            plain.master_params().unwrap().as_slice(),
            with_empty.master_params().unwrap().as_slice()
        );
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let n = 900;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 21);
        let grads: Vec<FlatTensor> = (0..6).map(|s| FlatTensor::randn(n, 0.01, 80 + s)).collect();

        // Uninterrupted run.
        let mut straight = StorageOffloadTrainer::new(&initial, optimizer, 2, 200).unwrap();
        for g in &grads {
            straight.train_step_with_grads(g).unwrap();
        }

        // Interrupted run: checkpoint after 3 steps, restore into a *fresh*
        // trainer (different device count), continue.
        let mut first = StorageOffloadTrainer::new(&initial, optimizer, 2, 200).unwrap();
        for g in &grads[..3] {
            first.train_step_with_grads(g).unwrap();
        }
        let ckpt = Trainer::checkpoint(&mut first).unwrap();
        let json = ckpt.to_json().unwrap();
        let parsed = crate::TrainerCheckpoint::from_json(&json).unwrap();
        assert_eq!(parsed, ckpt);

        let mut resumed = StorageOffloadTrainer::new(&initial, optimizer, 4, 200).unwrap();
        Trainer::restore(&mut resumed, &parsed).unwrap();
        assert_eq!(resumed.steps_completed(), 3);
        for g in &grads[3..] {
            resumed.train_step_with_grads(g).unwrap();
        }
        assert_eq!(
            resumed.master_params().unwrap().as_slice(),
            straight.master_params().unwrap().as_slice()
        );
        assert_eq!(resumed.params_fp16().as_slice(), straight.params_fp16().as_slice());

        // A mismatched checkpoint is rejected.
        let mut wrong =
            StorageOffloadTrainer::new(&FlatTensor::zeros(10), optimizer, 1, 10).unwrap();
        assert!(Trainer::restore(&mut wrong, &parsed).is_err());
    }

    #[test]
    fn synthetic_gradients_are_deterministic_per_step() {
        let mut a = SyntheticGradients::new(100, 1.0, 5);
        let mut b = SyntheticGradients::new(100, 1.0, 5);
        let params = FlatTensor::zeros(100);
        assert_eq!(a.gradients(1, &params), b.gradients(1, &params));
        assert_ne!(a.gradients(1, &params), a.gradients(2, &params));
        assert_eq!(a.num_params(), 100);
    }
}
