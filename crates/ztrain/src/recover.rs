//! Bounded-retry recovery around substrate operations.
//!
//! The fault plan injects three classes of failure (see `faultkit`):
//! transient per-operation faults, worn-out media and device dropouts. This
//! module implements the recovery policy the trainers wrap around every
//! storage / device operation:
//!
//! * **Transient** faults are retried with exponential backoff, up to
//!   [`FaultPlan::max_retries`](faultkit::FaultPlan::max_retries) attempts.
//!   Because a valid plan caps the fault burst below the retry budget,
//!   recovery from transients is guaranteed — and because the injector
//!   re-decides only after an operation *succeeds*, the retry sequence is
//!   deterministic.
//! * **Dead-device** errors (worn-out media, dropout) trigger an in-place
//!   rebuild — migrating the device's regions onto replacement hardware and
//!   accounting the traffic — then retry the operation.
//! * Anything else propagates unchanged.
//!
//! The backoff is *modeled*, not slept: the would-be delay is accumulated
//! into [`DegradedReport::backoff_ms`] so the telemetry is deterministic and
//! tests run at full speed.

use crate::trainer::{DegradedReport, TrainError};
use csd::CsdError;
use ssd::SsdError;

/// Classification hooks the recovery loop needs from an error type; every
/// substrate error in the workspace implements it, so [`recover`] can wrap an
/// operation at whatever layer it naturally fails.
pub trait Recoverable {
    /// Whether bounded retry can clear this error.
    fn transient(&self) -> bool;
    /// Whether the failing device must be rebuilt before a retry can work.
    fn rebuildable(&self) -> bool;
}

impl Recoverable for SsdError {
    fn transient(&self) -> bool {
        self.is_transient()
    }
    fn rebuildable(&self) -> bool {
        matches!(self, SsdError::WornOut { .. })
    }
}

impl Recoverable for CsdError {
    fn transient(&self) -> bool {
        self.is_transient()
    }
    fn rebuildable(&self) -> bool {
        self.needs_rebuild()
    }
}

impl Recoverable for TrainError {
    fn transient(&self) -> bool {
        self.is_transient()
    }
    fn rebuildable(&self) -> bool {
        self.needs_rebuild()
    }
}

/// Runs `op` against `ctx`, absorbing recoverable faults per the policy
/// above.
///
/// Both closures receive `ctx` (the substrate — a RAID array, a CSD, …) so
/// the rebuild path and the operation can share one mutable borrow. `rebuild`
/// is invoked when a dead-device error occurs; it must bring the failing
/// device back online and return the number of bytes migrated. Recovery
/// events accumulate into `degraded`; an entirely fault-free call leaves it
/// untouched.
///
/// # Errors
///
/// Returns the final error once `max_retries` attempts are exhausted, or the
/// original error immediately if it is not recoverable.
pub fn recover<C, T, E: Recoverable>(
    max_retries: u32,
    degraded: &mut DegradedReport,
    ctx: &mut C,
    mut rebuild: impl FnMut(&mut C) -> u64,
    mut op: impl FnMut(&mut C) -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt: u32 = 0;
    loop {
        match op(ctx) {
            Ok(v) => return Ok(v),
            Err(e) if attempt < max_retries && e.transient() => {
                attempt += 1;
                degraded.transient_faults += 1;
                degraded.retries += 1;
                // Exponential backoff: 2, 4, 8, ... ms (modeled, not slept).
                degraded.backoff_ms += 1u64 << attempt.min(16);
            }
            Err(e) if attempt < max_retries && e.rebuildable() => {
                attempt += 1;
                degraded.rebuild_bytes += rebuild(ctx);
                degraded.devices_rebuilt += 1;
                degraded.retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultkit::{FaultOpKind, FaultPlan, FaultSpec};

    fn always_faulting_plan(seed: u64) -> FaultPlan {
        let mut s = FaultSpec::empty(seed);
        s.transient_per_mille = Some(1000);
        s.max_transient_burst = Some(1);
        FaultPlan::new(s)
    }

    #[test]
    fn success_leaves_the_report_untouched() {
        let mut deg = DegradedReport::default();
        let v = recover(4, &mut deg, &mut (), |_| panic!("no rebuild"), |_| Ok::<_, TrainError>(7))
            .unwrap();
        assert_eq!(v, 7);
        assert!(!deg.is_degraded());
    }

    #[test]
    fn transient_faults_retry_with_backoff_until_cleared() {
        let mut deg = DegradedReport::default();
        let fault = always_faulting_plan(3).injector(0).check(FaultOpKind::Write).unwrap_err();
        let mut failures = 2u32;
        let v = recover(
            4,
            &mut deg,
            &mut (),
            |_| panic!("transients never rebuild"),
            |_| {
                if failures > 0 {
                    failures -= 1;
                    Err(SsdError::Injected { device: "d".into(), fault })
                } else {
                    Ok(42)
                }
            },
        )
        .unwrap();
        assert_eq!(v, 42);
        assert_eq!(deg.transient_faults, 2);
        assert_eq!(deg.retries, 2);
        assert_eq!(deg.backoff_ms, 2 + 4);
        assert_eq!(deg.devices_rebuilt, 0);
    }

    #[test]
    fn dead_devices_are_rebuilt_then_retried() {
        let mut deg = DegradedReport::default();
        // ctx is the device state: alive flag shared by rebuild and op.
        let mut dead = true;
        let v = recover(
            4,
            &mut deg,
            &mut dead,
            |dead| {
                *dead = false;
                96
            },
            |dead| {
                if *dead {
                    Err(CsdError::Dropout { device: "c".into() })
                } else {
                    Ok("ok")
                }
            },
        )
        .unwrap();
        assert_eq!(v, "ok");
        assert_eq!(deg.devices_rebuilt, 1);
        assert_eq!(deg.rebuild_bytes, 96);
        assert_eq!(deg.retries, 1);
        assert_eq!(deg.transient_faults, 0);
    }

    #[test]
    fn unrecoverable_errors_propagate_immediately() {
        let mut deg = DegradedReport::default();
        let err = recover(
            4,
            &mut deg,
            &mut (),
            |_| panic!("config errors never rebuild"),
            |_| Err::<(), _>(TrainError::config("bad")),
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::Config { .. }));
        assert!(!deg.is_degraded());
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut deg = DegradedReport::default();
        let fault = always_faulting_plan(5).injector(0).check(FaultOpKind::Read).unwrap_err();
        let err = recover(
            2,
            &mut deg,
            &mut (),
            |_| 0,
            |_| Err::<(), _>(SsdError::Injected { device: "d".into(), fault }),
        )
        .unwrap_err();
        assert!(err.transient(), "the final error is surfaced");
        assert_eq!(deg.retries, 2, "exactly max_retries retries were attempted");
    }

    #[test]
    fn recovery_works_end_to_end_against_a_real_device() {
        // A worn-out SSD: the first write fails, rebuild clears it, retry lands.
        let mut ssd = ssd::SsdDevice::new("s", 1 << 16);
        ssd.write_region("r", vec![1u8; 64]).unwrap();
        ssd.inject_wearout();
        let mut deg = DegradedReport::default();
        recover(
            2,
            &mut deg,
            &mut ssd,
            |ssd| ssd.rebuild(),
            |ssd| ssd.write_region("r", vec![2u8; 64]),
        )
        .unwrap();
        assert_eq!(deg.devices_rebuilt, 1);
        assert_eq!(deg.rebuild_bytes, 64);
        assert_eq!(ssd.read_region("r").unwrap(), vec![2u8; 64]);
    }
}
