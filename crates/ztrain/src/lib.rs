//! # ztrain — storage-offloaded LLM training substrate
//!
//! This crate implements the *baseline* the paper compares against — a
//! ZeRO-Infinity-style storage-offloaded training engine with host-CPU
//! parameter updates and RAID0 SSDs — plus the shared machinery the
//! Smart-Infinity engines in the `smart_infinity` crate build on:
//!
//! * [`MachineConfig`] — the hardware description (GPU, CPU, SSDs/CSDs, PCIe
//!   topology) of a training server, with presets matching the paper's
//!   test-bed (Table II).
//! * [`TimedPlatform`] — the discrete-event scaffold: a [`simkit`]
//!   simulation pre-populated with the PCIe fabric, SSD media links and GPU /
//!   CPU / FPGA compute resources, plus path helpers so engines can express
//!   "offload this block's gradients to SSD 3" as one call.
//! * [`schedule`] — the shared iteration task graph
//!   ([`schedule::build_iteration_graph`]) every timed engine runs, plus the
//!   method schedules over it: [`schedule::MethodPolicy`] implements
//!   [`simkit::Scheduler`], choosing gradient-scatter placement and tasklet
//!   synchronisation, and [`schedule::PlatformLowering`] lowers the scheduled
//!   graph onto a [`TimedPlatform`].
//! * [`BaselineEngine`] — the timed model of ZeRO-Infinity + RAID0: forward,
//!   backward + gradient offload, and the CPU update with optimizer-state
//!   upload/offload (paper Fig. 1), expressed as the
//!   [`schedule::HostUpdateScheduler`] policy and producing the per-phase
//!   [`IterationReport`] breakdowns of Fig. 3(a) and Fig. 9.
//! * [`StorageOffloadTrainer`] — a *functional* baseline that actually moves
//!   bytes through [`ssd::RaidArray`] and runs the real optimizer kernels, so
//!   Smart-Infinity's numerical equivalence can be tested end to end.
//! * [`PipelinedTrainer`] — the pipelined fabric execution backend: each
//!   device shard becomes a pipeline lane (write → compress/update →
//!   read-back) and the lanes overlap on a [`parcore::ParExecutor`],
//!   bit-identical to the serial trainers and reporting per-stage telemetry.
//! * [`Trainer`] / [`StepReport`] / [`StageReport`] / [`TrainError`] — the
//!   unified training contract every functional substrate implements, so
//!   callers hold a `dyn Trainer` and the `?` operator works across layer
//!   boundaries.
//! * [`realtrain`] — a small, genuinely trained MLP classifier on synthetic
//!   data, used to reproduce the accuracy side of the paper's fine-tuning
//!   study (Table IV, Fig. 16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod checkpoint;
mod functional;
mod machine;
mod pipeline;
mod platform;
pub mod realtrain;
mod recover;
mod report;
pub mod schedule;
mod trainer;

pub use baseline::BaselineEngine;
pub use checkpoint::{bits_to_tensor, tensor_to_bits, TrainerCheckpoint};
pub use functional::{GradientSource, StorageOffloadTrainer, SyntheticGradients};
pub use machine::MachineConfig;
pub use pipeline::{
    aggregate_csd_stats, init_csd_shards, reassemble_master_params, PipelinedTrainer,
};
pub use platform::TimedPlatform;
pub use recover::{recover, Recoverable};
pub use report::IterationReport;
pub use trainer::{DegradedReport, StageReport, StepReport, TrainError, Trainer};

#[cfg(test)]
mod tests {
    use super::*;
    use llm::{ModelConfig, Workload};
    use optim::OptimizerKind;

    /// The headline motivation result (Fig. 3a): with a single SSD, the update
    /// phase (including optimizer-state upload/offload) dominates the
    /// iteration, taking well over half of the total time.
    #[test]
    fn update_phase_dominates_baseline_training() {
        let machine = MachineConfig::baseline_raid0(1);
        let workload = Workload::paper_default(ModelConfig::gpt2_2_5b());
        let report = BaselineEngine::new(machine, workload, OptimizerKind::Adam)
            .simulate_iteration()
            .unwrap();
        assert!(
            report.update_s / report.total_s() > 0.6,
            "update fraction {:.2}",
            report.update_s / report.total_s()
        );
    }

    /// The RAID0 scaling result (Fig. 3b): speedup saturates once the
    /// aggregate SSD bandwidth reaches the shared interconnect bandwidth.
    #[test]
    fn raid0_speedup_saturates_beyond_four_ssds() {
        let workload = Workload::paper_default(ModelConfig::gpt2_4b());
        let time = |n: usize| {
            BaselineEngine::new(
                MachineConfig::baseline_raid0(n),
                workload.clone(),
                OptimizerKind::Adam,
            )
            .simulate_iteration()
            .unwrap()
            .total_s()
        };
        let t1 = time(1);
        let t2 = time(2);
        let t6 = time(6);
        let t10 = time(10);
        assert!(t1 / t2 > 1.4, "2 SSDs should be much faster than 1: {t1:.1} vs {t2:.1}");
        // Beyond the saturation point, adding SSDs barely helps.
        assert!(t6 / t10 < 1.1, "6 vs 10 SSDs: {t6:.2} vs {t10:.2}");
        assert!(t1 / t10 < 8.0, "speedup must saturate well below the device count");
    }
}
