//! Portable trainer checkpoints: exact state capture for kill/resume.
//!
//! A [`TrainerCheckpoint`] holds everything a functional trainer needs to
//! continue bit-identically after a restart: the step counter, the FP32
//! master parameters, every optimizer auxiliary tensor and — when gradient
//! compression with error feedback is on — the accumulated residuals.
//!
//! Floats are stored as their IEEE-754 bit patterns (`u32`), because the
//! JSON float round trip is not exact for every value; the bit patterns are.
//! All tensors are stored as *global* concatenated vectors (not per-device
//! shards), so a checkpoint taken on one device layout restores onto any
//! other — the restoring trainer re-slices by its own partitioner.

use crate::trainer::TrainError;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// Serialised resumable state of one functional trainer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainerCheckpoint {
    /// Completed steps at the time of the checkpoint.
    pub step: u64,
    /// Number of trained parameters (shape check on restore).
    pub num_params: u64,
    /// FP32 master parameters as IEEE-754 bit patterns, concatenated across
    /// device shards in partition order.
    pub master_bits: Vec<u32>,
    /// Optimizer auxiliary tensors (e.g. Adam first/second moments), each
    /// concatenated across device shards; outer index is the aux slot.
    pub aux_bits: Vec<Vec<u32>>,
    /// Error-feedback residuals of the gradient compressor, concatenated
    /// across shards; empty when compression (or error feedback) is off.
    pub residual_bits: Vec<u32>,
}

/// Encodes a tensor's floats as exact bit patterns.
pub fn tensor_to_bits(t: &FlatTensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Decodes bit patterns back into a tensor.
pub fn bits_to_tensor(bits: &[u32]) -> FlatTensor {
    FlatTensor::from_vec(bits.iter().map(|&b| f32::from_bits(b)).collect())
}

impl TrainerCheckpoint {
    /// Serialises the checkpoint to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, TrainError> {
        serde_json::to_string(self)
            .map_err(|e| TrainError::config(format!("checkpoint serialisation failed: {e}")))
    }

    /// Parses a checkpoint from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] if the JSON is malformed or does not
    /// describe a checkpoint.
    pub fn from_json(json: &str) -> Result<Self, TrainError> {
        let ckpt: TrainerCheckpoint = serde_json::from_str(json)
            .map_err(|e| TrainError::config(format!("malformed checkpoint: {e}")))?;
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Checks internal shape consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), TrainError> {
        let n = self.num_params as usize;
        if self.master_bits.len() != n {
            return Err(TrainError::config(format!(
                "checkpoint master has {} elements but num_params is {n}",
                self.master_bits.len()
            )));
        }
        for (i, aux) in self.aux_bits.iter().enumerate() {
            if aux.len() != n {
                return Err(TrainError::config(format!(
                    "checkpoint aux {i} has {} elements but num_params is {n}",
                    aux.len()
                )));
            }
        }
        if !self.residual_bits.is_empty() && self.residual_bits.len() != n {
            return Err(TrainError::config(format!(
                "checkpoint residuals have {} elements but num_params is {n}",
                self.residual_bits.len()
            )));
        }
        Ok(())
    }

    /// Shape check against a concrete trainer before restoring into it.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] if the parameter count or aux-slot
    /// count does not match.
    pub fn check_matches(&self, num_params: usize, num_aux: usize) -> Result<(), TrainError> {
        self.validate()?;
        if self.num_params as usize != num_params {
            return Err(TrainError::config(format!(
                "checkpoint holds {} parameters but the trainer has {num_params}",
                self.num_params
            )));
        }
        if self.aux_bits.len() != num_aux {
            return Err(TrainError::config(format!(
                "checkpoint holds {} aux tensors but the optimizer needs {num_aux}",
                self.aux_bits.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainerCheckpoint {
        let master = FlatTensor::randn(8, 0.5, 77);
        TrainerCheckpoint {
            step: 12,
            num_params: 8,
            master_bits: tensor_to_bits(&master),
            aux_bits: vec![vec![0u32; 8], vec![0u32; 8]],
            residual_bits: Vec::new(),
        }
    }

    #[test]
    fn bit_encoding_round_trips_exactly_including_awkward_floats() {
        let t = FlatTensor::from_vec(vec![
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            1.0e-42, // subnormal
            std::f32::consts::PI,
            f32::MAX,
        ]);
        let back = bits_to_tensor(&tensor_to_bits(&t));
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let ckpt = sample();
        let json = ckpt.to_json().unwrap();
        let back = TrainerCheckpoint::from_json(&json).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn validation_names_shape_mismatches() {
        let mut ckpt = sample();
        ckpt.master_bits.pop();
        assert!(ckpt.validate().unwrap_err().to_string().contains("master"));
        let mut ckpt = sample();
        ckpt.aux_bits[1].pop();
        assert!(ckpt.validate().unwrap_err().to_string().contains("aux 1"));
        let mut ckpt = sample();
        ckpt.residual_bits = vec![0; 3];
        assert!(ckpt.validate().unwrap_err().to_string().contains("residuals"));
        assert!(TrainerCheckpoint::from_json("{\"nope\":1}").is_err());
    }

    #[test]
    fn check_matches_guards_against_wrong_trainers() {
        let ckpt = sample();
        ckpt.check_matches(8, 2).unwrap();
        assert!(ckpt.check_matches(9, 2).unwrap_err().to_string().contains("8 parameters"));
        assert!(ckpt.check_matches(8, 1).unwrap_err().to_string().contains("aux tensors"));
    }
}
