//! The discrete-event scaffold shared by the baseline and Smart-Infinity
//! timed engines.

use crate::machine::MachineConfig;
use fabric::{InstalledFabric, Platform};
use faultkit::TimedFaultEffects;
use simkit::{
    ComputeSpec, FlowSpec, LinkId, PhaseId, ResourceId, SimError, Simulation, TaskId, Timeline,
};
use ssd::MediaLinks;

/// A [`simkit::Simulation`] pre-populated with the machine's PCIe fabric,
/// per-device SSD media links, GPU compute resources, the host-CPU update
/// resource, and (for CSD platforms) per-device FPGA updater/decompressor
/// resources.
///
/// Engines add flows and compute tasks through the helper methods below; the
/// helpers translate "who talks to whom" into link paths, so engine code reads
/// like the paper's dataflow description.
#[derive(Debug)]
pub struct TimedPlatform {
    sim: Simulation,
    fabric: InstalledFabric,
    platform: Platform,
    media: Vec<MediaLinks>,
    gpu_resources: Vec<ResourceId>,
    cpu_update: ResourceId,
    fpga_update: Vec<ResourceId>,
    fpga_decompress: Vec<ResourceId>,
    config: MachineConfig,
    fault_effects: TimedFaultEffects,
}

impl TimedPlatform {
    /// Builds the simulation scaffold for a machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine's platform spec cannot be built (which only
    /// happens for non-positive link bandwidths).
    pub fn new(config: &MachineConfig) -> Self {
        Self::new_with_faults(config, None)
    }

    /// Builds the simulation scaffold with a fault plan's timed effects
    /// applied: the straggler device's FPGA kernels run at `1/factor` of
    /// their configured rate, and the shared host uplink edge is derated to
    /// the remaining-bandwidth fraction *before* the fabric is installed.
    /// `None` (or empty effects) builds exactly the same platform as
    /// [`TimedPlatform::new`].
    ///
    /// # Panics
    ///
    /// Panics if the machine's platform spec cannot be built (which only
    /// happens for non-positive link bandwidths) or if the effects carry an
    /// out-of-range bandwidth factor (plans built from a validated
    /// `FaultSpec` never do).
    pub fn new_with_faults(config: &MachineConfig, effects: Option<&TimedFaultEffects>) -> Self {
        let effects = effects.copied().unwrap_or_default();
        let mut platform =
            config.platform_spec().build().expect("machine link rates must be positive");
        if let Some(factor) = effects.uplink_bandwidth_factor {
            let edge = platform
                .topology
                .edge_between(platform.host, platform.expansion)
                .expect("host and expansion switch are always directly connected");
            platform
                .topology
                .degrade_edge(edge, factor)
                .expect("fault spec validation bounds the bandwidth factor");
        }
        let mut sim = Simulation::new();
        let fabric = platform.topology.install(&mut sim);
        let media = (0..config.num_devices)
            .map(|d| config.ssd.install(&mut sim, &format!("dev{d}")))
            .collect();
        let gpu_resources = (0..config.num_gpus)
            .map(|g| sim.add_resource(format!("gpu{g}"), config.gpu.effective_flops))
            .collect();
        let cpu_update = sim.add_resource("cpu-update", config.cpu.update_bytes_per_sec);
        let (fpga_update, fpga_decompress) = if config.is_csd() {
            (
                (0..config.num_devices)
                    .map(|d| {
                        sim.add_resource(
                            format!("fpga{d}-updater"),
                            config.fpga_update_bytes_per_sec / effects.compute_slowdown(d),
                        )
                    })
                    .collect(),
                (0..config.num_devices)
                    .map(|d| {
                        sim.add_resource(
                            format!("fpga{d}-decompressor"),
                            config.fpga_decompress_bytes_per_sec / effects.compute_slowdown(d),
                        )
                    })
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            sim,
            fabric,
            platform,
            media,
            gpu_resources,
            cpu_update,
            fpga_update,
            fpga_decompress,
            config: config.clone(),
            fault_effects: effects,
        }
    }

    /// The timed fault effects this platform was built with (empty when
    /// fault-free).
    pub fn fault_effects(&self) -> &TimedFaultEffects {
        &self.fault_effects
    }

    /// The machine this platform was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of storage devices.
    pub fn num_devices(&self) -> usize {
        self.config.num_devices
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.config.num_gpus
    }

    /// Registers a named phase for breakdown reporting.
    pub fn add_phase(&mut self, name: &str) -> PhaseId {
        self.sim.add_phase(name)
    }

    /// Describes the machine's processing sites as [`simkit::Resource`]s, in
    /// the site order used by the iteration DAGs (host, GPUs, storage
    /// devices, FPGA updaters, FPGA decompressors). Schedulers consult this
    /// catalog through [`simkit::SystemView::resources`]; FPGA entries of a
    /// plain-SSD machine carry zero speed (there is nothing to run on).
    pub fn resource_catalog(&self) -> Vec<simkit::Resource> {
        use simkit::{Resource, SpeedupCurve};
        let c = &self.config;
        let mut out = Vec::with_capacity(1 + c.num_gpus + 3 * c.num_devices);
        out.push(Resource::new(
            c.cpu.name.clone(),
            1,
            c.cpu.update_bytes_per_sec,
            c.cpu.memory_bytes as f64,
            SpeedupCurve::Flat,
        ));
        for g in 0..c.num_gpus {
            out.push(Resource::new(
                format!("{}#{g}", c.gpu.name),
                1,
                c.gpu.effective_flops,
                c.gpu.memory_bytes as f64,
                SpeedupCurve::Flat,
            ));
        }
        for d in 0..c.num_devices {
            out.push(Resource::new(
                format!("dev{d}"),
                1,
                c.ssd.read_bytes_per_sec,
                f64::INFINITY,
                SpeedupCurve::Flat,
            ));
        }
        let csd = c.is_csd();
        for d in 0..c.num_devices {
            let rate = if csd {
                c.fpga_update_bytes_per_sec / self.fault_effects.compute_slowdown(d)
            } else {
                0.0
            };
            out.push(Resource::new(
                format!("fpga{d}-updater"),
                1,
                rate,
                4.0 * simkit::GB,
                SpeedupCurve::Flat,
            ));
        }
        for d in 0..c.num_devices {
            let rate = if csd {
                c.fpga_decompress_bytes_per_sec / self.fault_effects.compute_slowdown(d)
            } else {
                0.0
            };
            out.push(Resource::new(
                format!("fpga{d}-decompressor"),
                1,
                rate,
                4.0 * simkit::GB,
                SpeedupCurve::Flat,
            ));
        }
        out
    }

    /// The two directional simulation links of the *shared host interconnect*
    /// (the host ↔ expansion-switch edge every storage device funnels
    /// through), as `(host→devices, devices→host)`. Pipelined engines pass
    /// these to [`simkit::Timeline::link_busy_time_in_phase`] to report how
    /// long each stage occupied the shared uplink.
    ///
    /// # Panics
    ///
    /// Never in practice: every platform preset connects the host to the
    /// expansion switch directly.
    pub fn host_uplink_links(&self) -> (LinkId, LinkId) {
        let edge = self
            .fabric
            .topology()
            .edge_between(self.platform.host, self.platform.expansion)
            .expect("host and expansion switch are always directly connected");
        self.fabric.links_of_edge(edge)
    }

    /// Adds a barrier completing after all `deps`.
    pub fn barrier(&mut self, deps: &[TaskId]) -> TaskId {
        self.sim.barrier(deps)
    }

    /// Adds a fixed delay (software/setup overhead such as device buffer
    /// allocation or kernel launch latency).
    pub fn delay(&mut self, seconds: f64, deps: &[TaskId], phase: PhaseId) -> TaskId {
        self.sim.delay(simkit::DelaySpec::new(seconds).after(deps).phase(phase))
    }

    /// Runs the simulation and returns the timeline. Active fault effects are
    /// recorded as [`simkit::FaultAnnotation`]s on the timeline, so reports
    /// can tell a degraded run from a healthy one.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation kernel.
    pub fn run(&mut self) -> Result<Timeline, SimError> {
        let mut timeline = self.sim.run()?;
        if let Some((dev, factor)) = self.fault_effects.straggler {
            timeline.annotate_fault(
                0.0,
                format!("dev{dev}"),
                format!("straggler: in-storage compute {factor}x slower"),
            );
        }
        if let Some(factor) = self.fault_effects.uplink_bandwidth_factor {
            timeline.annotate_fault(
                0.0,
                "host-uplink",
                format!("bandwidth derated to {:.1}% of nominal", factor * 100.0),
            );
        }
        Ok(timeline)
    }

    // ---- compute helpers ---------------------------------------------------

    /// GPU compute task (`flops` floating point operations on GPU `gpu`).
    pub fn gpu_compute(
        &mut self,
        gpu: usize,
        flops: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let spec = ComputeSpec::new(self.gpu_resources[gpu], flops).after(deps).phase(phase);
        self.sim.compute(spec)
    }

    /// Host-CPU optimizer update over `bytes` of state+gradient.
    pub fn cpu_update(&mut self, bytes: f64, deps: &[TaskId], phase: PhaseId) -> TaskId {
        let spec = ComputeSpec::new(self.cpu_update, bytes).after(deps).phase(phase);
        self.sim.compute(spec)
    }

    /// FPGA updater kernel on device `dev` over `bytes` of state+gradient.
    ///
    /// # Panics
    ///
    /// Panics if the platform was built with plain SSDs.
    pub fn fpga_update(
        &mut self,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let spec = ComputeSpec::new(self.fpga_update[dev], bytes).after(deps).phase(phase);
        self.sim.compute(spec)
    }

    /// FPGA decompressor kernel on device `dev` producing `bytes` of dense gradient.
    ///
    /// # Panics
    ///
    /// Panics if the platform was built with plain SSDs.
    pub fn fpga_decompress(
        &mut self,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let spec = ComputeSpec::new(self.fpga_decompress[dev], bytes).after(deps).phase(phase);
        self.sim.compute(spec)
    }

    // ---- transfer helpers --------------------------------------------------

    fn flow(&mut self, path: Vec<LinkId>, bytes: f64, deps: &[TaskId], phase: PhaseId) -> TaskId {
        self.sim.flow(FlowSpec::new(path, bytes).after(deps).phase(phase))
    }

    /// Host memory → GPU transfer (parameter/activation upload).
    pub fn host_to_gpu(
        &mut self,
        gpu: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let path = self
            .fabric
            .path(self.platform.host, self.platform.gpus[gpu])
            .expect("host and GPU are always connected");
        self.flow(path, bytes, deps, phase)
    }

    /// GPU → host memory transfer (activation checkpoint / gradient staging).
    pub fn gpu_to_host(
        &mut self,
        gpu: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let path = self
            .fabric
            .path(self.platform.gpus[gpu], self.platform.host)
            .expect("host and GPU are always connected");
        self.flow(path, bytes, deps, phase)
    }

    /// GPU ↔ GPU transfer (tensor-parallel activation exchange).
    pub fn gpu_to_gpu(
        &mut self,
        from: usize,
        to: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let path = self
            .fabric
            .path(self.platform.gpus[from], self.platform.gpus[to])
            .expect("GPUs are always connected");
        self.flow(path, bytes, deps, phase)
    }

    /// Host memory → SSD write on device `dev` (limited by the PCIe path and
    /// the device's write media bandwidth).
    pub fn host_to_ssd(
        &mut self,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let mut path = self
            .fabric
            .path(self.platform.host, self.platform.devices[dev].ssd)
            .expect("host and SSD are always connected");
        path.push(self.media[dev].write);
        self.flow(path, bytes, deps, phase)
    }

    /// SSD → host memory read on device `dev`.
    pub fn ssd_to_host(
        &mut self,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let mut path = self
            .fabric
            .path(self.platform.devices[dev].ssd, self.platform.host)
            .expect("host and SSD are always connected");
        path.push(self.media[dev].read);
        self.flow(path, bytes, deps, phase)
    }

    /// CSD-internal P2P read: SSD → FPGA on device `dev`, never touching the
    /// shared host interconnect.
    ///
    /// # Panics
    ///
    /// Panics if the platform was built with plain SSDs.
    pub fn ssd_to_fpga(
        &mut self,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let ports = &self.platform.devices[dev];
        let fpga = ports.fpga.expect("ssd_to_fpga requires a CSD platform");
        let mut path = self.fabric.path(ports.ssd, fpga).expect("CSD internal ports are connected");
        path.push(self.media[dev].read);
        self.flow(path, bytes, deps, phase)
    }

    /// CSD-internal P2P write: FPGA → SSD on device `dev`.
    ///
    /// # Panics
    ///
    /// Panics if the platform was built with plain SSDs.
    pub fn fpga_to_ssd(
        &mut self,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let ports = &self.platform.devices[dev];
        let fpga = ports.fpga.expect("fpga_to_ssd requires a CSD platform");
        let mut path = self.fabric.path(fpga, ports.ssd).expect("CSD internal ports are connected");
        path.push(self.media[dev].write);
        self.flow(path, bytes, deps, phase)
    }

    /// GPU → SSD transfer (gradient offload path in the congested topology,
    /// where the GPU and the device share the expansion switch).
    pub fn gpu_to_ssd(
        &mut self,
        gpu: usize,
        dev: usize,
        bytes: f64,
        deps: &[TaskId],
        phase: PhaseId,
    ) -> TaskId {
        let mut path = self
            .fabric
            .path(self.platform.gpus[gpu], self.platform.devices[dev].ssd)
            .expect("GPU and SSD are always connected");
        path.push(self.media[dev].write);
        self.flow(path, bytes, deps, phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(plat: &mut TimedPlatform) -> PhaseId {
        plat.add_phase("test")
    }

    #[test]
    fn baseline_platform_has_no_fpga_resources() {
        let mut plat = TimedPlatform::new(&MachineConfig::baseline_raid0(2));
        assert_eq!(plat.num_devices(), 2);
        assert_eq!(plat.num_gpus(), 1);
        assert!(!plat.config().is_csd());
        let p = phase(&mut plat);
        let a = plat.host_to_ssd(0, 1e9, &[], p);
        let b = plat.ssd_to_host(1, 1e9, &[a], p);
        let tl = plat.run().unwrap();
        assert!(tl.finish_time(b) > tl.finish_time(a));
    }

    #[test]
    #[should_panic(expected = "requires a CSD platform")]
    fn internal_p2p_on_plain_ssd_panics() {
        let mut plat = TimedPlatform::new(&MachineConfig::baseline_raid0(1));
        let p = phase(&mut plat);
        plat.ssd_to_fpga(0, 1.0, &[], p);
    }

    #[test]
    fn csd_internal_p2p_scales_with_device_count_while_host_path_does_not() {
        // 8 CSDs all stream 3 GB internally: finishes in ~1 s because each CSD
        // has its own 3.2 GB/s path. The same aggregate volume host->SSDs is
        // limited by the 16 GB/s shared uplink.
        let config = MachineConfig::smart_infinity(8);
        let mut internal = TimedPlatform::new(&config);
        let p = internal.add_phase("p2p");
        for d in 0..8 {
            internal.ssd_to_fpga(d, 3.0e9, &[], p);
        }
        let t_internal = internal.run().unwrap().makespan();

        let mut host_side = TimedPlatform::new(&config);
        let p = host_side.add_phase("host");
        for d in 0..8 {
            host_side.ssd_to_host(d, 3.0e9, &[], p);
        }
        let t_host = host_side.run().unwrap().makespan();
        assert!(t_internal < 1.05, "internal: {t_internal}");
        assert!(t_host > 1.4, "host side should saturate the uplink: {t_host}");
    }

    #[test]
    fn host_uplink_links_identify_the_shared_interconnect() {
        let mut plat = TimedPlatform::new(&MachineConfig::smart_infinity(2));
        let (down, up) = plat.host_uplink_links();
        assert_ne!(down, up);
        let p = plat.add_phase("write");
        let w = plat.host_to_ssd(0, 3.2e9, &[], p);
        let tl = plat.run().unwrap();
        // The downlink is busy exactly while the write flows; the opposite
        // direction idles (full duplex).
        let t = tl.finish_time(w);
        assert!(t > 0.0);
        assert!((tl.link_busy_time(down) - t).abs() < 1e-9);
        assert!((tl.link_busy_time_in_phase(down, p) - t).abs() < 1e-9);
        assert_eq!(tl.link_busy_time(up), 0.0);
    }

    #[test]
    fn gpu_compute_and_transfers_compose() {
        let mut plat = TimedPlatform::new(&MachineConfig::smart_infinity(2));
        let p = plat.add_phase("fw");
        let load = plat.host_to_gpu(0, 16.0e9, &[], p);
        let compute = plat.gpu_compute(0, 50.0e12, &[load], p);
        let store = plat.gpu_to_host(0, 1.0e9, &[compute], p);
        let upd = plat.fpga_update(0, 7.3e9, &[store], p);
        let dec = plat.fpga_decompress(1, 3.8e9, &[], p);
        let cpu = plat.cpu_update(6.0e9, &[], p);
        let tl = plat.run().unwrap();
        // load: 1 s, compute: 1 s, store: ~0.06 s, update: 1 s.
        assert!((tl.finish_time(load) - 1.0).abs() < 0.05);
        assert!((tl.finish_time(compute) - 2.0).abs() < 0.1);
        assert!(tl.finish_time(upd) > tl.finish_time(store));
        assert!((tl.finish_time(dec) - 1.0).abs() < 0.05);
        assert!((tl.finish_time(cpu) - 1.0).abs() < 0.05);
    }

    #[test]
    fn congested_topology_gpu_traffic_shares_the_uplink() {
        // In the congested topology a GPU->host transfer crosses the shared
        // uplink and contends with SSD->host traffic; in the default topology
        // it does not.
        let run = |config: MachineConfig| {
            let mut plat = TimedPlatform::new(&config);
            let p = plat.add_phase("x");
            plat.gpu_to_host(0, 16.0e9, &[], p);
            plat.ssd_to_host(0, 3.0e9, &[], p);
            plat.run().unwrap().makespan()
        };
        let default_t = run(MachineConfig::smart_infinity(1));
        let congested_t = run(MachineConfig::congested_multi_gpu(1, 1));
        assert!(congested_t > default_t * 1.05, "{congested_t} vs {default_t}");
    }

    #[test]
    fn empty_fault_effects_leave_the_timed_model_untouched() {
        let config = MachineConfig::smart_infinity(2);
        let run = |plat: &mut TimedPlatform| {
            let p = plat.add_phase("x");
            let u = plat.fpga_update(0, 7.3e9, &[], p);
            plat.host_to_ssd(1, 4.0e9, &[u], p);
            plat.run().unwrap()
        };
        let clean = run(&mut TimedPlatform::new(&config));
        let faulted =
            run(&mut TimedPlatform::new_with_faults(&config, Some(&TimedFaultEffects::default())));
        assert_eq!(clean.makespan(), faulted.makespan());
        assert!(faulted.fault_annotations().is_empty());
    }

    #[test]
    fn straggler_slows_only_its_own_fpga() {
        let config = MachineConfig::smart_infinity(2);
        let effects =
            TimedFaultEffects { straggler: Some((0, 2.0)), ..TimedFaultEffects::default() };
        let mut plat = TimedPlatform::new_with_faults(&config, Some(&effects));
        let p = plat.add_phase("update");
        let slow = plat.fpga_update(0, 7.3e9, &[], p);
        let fast = plat.fpga_update(1, 7.3e9, &[], p);
        let tl = plat.run().unwrap();
        // Device 0 runs its updater at half rate; device 1 is unaffected.
        assert!((tl.finish_time(slow) - 2.0 * tl.finish_time(fast)).abs() < 1e-6);
        assert_eq!(tl.fault_annotations().len(), 1);
        assert_eq!(tl.fault_annotations()[0].site, "dev0");
    }

    #[test]
    fn uplink_derating_slows_host_traffic_and_is_annotated() {
        let config = MachineConfig::smart_infinity(1);
        let run = |effects: Option<&TimedFaultEffects>| {
            let mut plat = TimedPlatform::new_with_faults(&config, effects);
            let p = plat.add_phase("x");
            plat.host_to_ssd(0, 16.0e9, &[], p);
            plat.run().unwrap()
        };
        let clean = run(None);
        // The transfer is normally bottlenecked by the SSD media write rate,
        // so derate the 16 GB/s uplink hard enough (to 1.6 GB/s) that it
        // becomes the binding constraint: 16 GB / 1.6 GB/s = 10 s.
        let effects = TimedFaultEffects {
            uplink_bandwidth_factor: Some(0.1),
            ..TimedFaultEffects::default()
        };
        let derated = run(Some(&effects));
        assert!(
            (derated.makespan() - 10.0).abs() < 1e-6,
            "derated {} vs clean {}",
            derated.makespan(),
            clean.makespan()
        );
        assert!(derated.makespan() > clean.makespan() * 1.5);
        let notes = derated.fault_annotations();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].site, "host-uplink");
        assert!(notes[0].detail.contains("10.0%"));
    }
}
