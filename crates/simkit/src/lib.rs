//! # simkit — discrete-event simulation kernel for Smart-Infinity
//!
//! This crate provides the virtual-time execution substrate used by every
//! performance model in the workspace. It knows nothing about PCIe, SSDs or
//! LLM training; it only understands three primitives:
//!
//! * **Links** — capacities (bytes/second) that are *shared* among the flows
//!   crossing them. Bandwidth is divided with max-min fairness, recomputed at
//!   every flow arrival and completion (progressive filling).
//! * **Resources** — serial processing units (a CPU core doing AVX updates, a
//!   GPU running a forward pass, an FPGA updater kernel). Tasks queue FIFO and
//!   the head of the queue proceeds at the resource's configured rate.
//! * **Tasks** — nodes of a dependency DAG. A task may be a [`TaskKind::Flow`]
//!   over a path of links, a [`TaskKind::Compute`] on a resource, a fixed
//!   [`TaskKind::Delay`], or a zero-duration [`TaskKind::Barrier`].
//!
//! Engines in `ztrain` / `smart_infinity` build a task DAG for one (or more)
//! training iterations, run it, and read the resulting [`Timeline`]: per-task
//! start/finish times, the makespan, and per-phase busy time.
//!
//! On top of the flat substrate sits a scheduling layer: a [`Dag`] of typed
//! work items connected by data items, [`Resource`] descriptions (cores,
//! speed, memory, speedup-vs-cores), and an object-safe [`Scheduler`] trait
//! whose placement + ordering decisions are lowered deterministically onto a
//! [`Simulation`] by [`execute`] through a [`Lowering`]. The four
//! Smart-Infinity method schedules are `Scheduler` implementations over one
//! shared iteration DAG; see the `ztrain` and `smart_infinity` crates.
//!
//! # Example
//!
//! ```
//! use simkit::{Simulation, FlowSpec, ComputeSpec};
//!
//! # fn main() -> Result<(), simkit::SimError> {
//! let mut sim = Simulation::new();
//! let pcie = sim.add_link("pcie", 16e9);
//! let gpu = sim.add_resource("gpu", 100e12);
//! let fw = sim.add_phase("forward");
//!
//! // Load 2 GB of parameters over PCIe, then run 10 TFLOP of forward compute.
//! let load = sim.flow(FlowSpec::new(vec![pcie], 2e9).phase(fw));
//! let compute = sim.compute(ComputeSpec::new(gpu, 10e12).phase(fw).after(&[load]));
//! let timeline = sim.run()?;
//! assert!(timeline.finish_time(compute) > timeline.finish_time(load));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
mod engine;
mod error;
mod resource;
mod scheduler;
mod task;
mod timeline;

pub use dag::{Dag, DagTask, DagTaskId, DagWork, DataId, DataItem, SITE_STORAGE};
pub use engine::Simulation;
pub use error::SimError;
pub use resource::{Resource, SpeedupCurve};
pub use scheduler::{
    execute, Anchor, Decision, DirectLowering, FifoScheduler, Lowered, Lowering, ScatterPlan,
    ScheduleDecision, ScheduleOutcome, Scheduler, SetupDelay, SystemView,
};
pub use task::{ComputeSpec, DelaySpec, FlowSpec, LinkId, PhaseId, ResourceId, TaskId, TaskKind};
pub use timeline::{FaultAnnotation, PhaseBreakdown, TaskRecord, Timeline};

/// Convenience constant: one gigabyte in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
/// Convenience constant: one gigabyte (decimal, as used for bandwidths) in bytes.
pub const GB: f64 = 1e9;
/// Convenience constant: one megabyte (decimal) in bytes.
pub const MB: f64 = 1e6;

/// Floating point tolerance used when comparing simulated times.
pub const TIME_EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_takes_bytes_over_bandwidth() {
        let mut sim = Simulation::new();
        let link = sim.add_link("l", 10.0);
        let t = sim.flow(FlowSpec::new(vec![link], 100.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(t) - 10.0).abs() < 1e-9);
        assert!((tl.makespan() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut sim = Simulation::new();
        let link = sim.add_link("l", 10.0);
        let a = sim.flow(FlowSpec::new(vec![link], 100.0));
        let b = sim.flow(FlowSpec::new(vec![link], 100.0));
        let tl = sim.run().unwrap();
        // Each gets 5 B/s while both are active -> both finish at t=20.
        assert!((tl.finish_time(a) - 20.0).abs() < 1e-9);
        assert!((tl.finish_time(b) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_flow_frees_bandwidth_for_the_longer_one() {
        let mut sim = Simulation::new();
        let link = sim.add_link("l", 10.0);
        let short = sim.flow(FlowSpec::new(vec![link], 50.0));
        let long = sim.flow(FlowSpec::new(vec![link], 150.0));
        let tl = sim.run().unwrap();
        // Phase 1: both share 5 B/s. Short (50 B) finishes at t=10, long has 100 B left.
        // Phase 2: long gets full 10 B/s, finishes 10 s later at t=20.
        assert!((tl.finish_time(short) - 10.0).abs() < 1e-9);
        assert!((tl.finish_time(long) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn compute_tasks_are_serialized_fifo() {
        let mut sim = Simulation::new();
        let cpu = sim.add_resource("cpu", 10.0);
        let a = sim.compute(ComputeSpec::new(cpu, 100.0));
        let b = sim.compute(ComputeSpec::new(cpu, 50.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(a) - 10.0).abs() < 1e-9);
        assert!((tl.finish_time(b) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_respected() {
        let mut sim = Simulation::new();
        let link = sim.add_link("l", 10.0);
        let cpu = sim.add_resource("cpu", 10.0);
        let a = sim.flow(FlowSpec::new(vec![link], 100.0));
        let b = sim.compute(ComputeSpec::new(cpu, 100.0).after(&[a]));
        let c = sim.flow(FlowSpec::new(vec![link], 100.0).after(&[b]));
        let tl = sim.run().unwrap();
        assert!((tl.start_time(b) - 10.0).abs() < 1e-9);
        assert!((tl.start_time(c) - 20.0).abs() < 1e-9);
        assert!((tl.makespan() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn delay_and_barrier() {
        let mut sim = Simulation::new();
        let d = sim.delay(DelaySpec::new(2.5));
        let b = sim.barrier(&[d]);
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(b) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn phase_breakdown_accumulates_busy_time() {
        let mut sim = Simulation::new();
        let link = sim.add_link("l", 10.0);
        let fw = sim.add_phase("fw");
        let bw = sim.add_phase("bw");
        let a = sim.flow(FlowSpec::new(vec![link], 100.0).phase(fw));
        let _b = sim.flow(FlowSpec::new(vec![link], 100.0).phase(bw).after(&[a]));
        let tl = sim.run().unwrap();
        let breakdown = tl.phase_breakdown();
        assert!((breakdown.busy_time(fw) - 10.0).abs() < 1e-9);
        assert!((breakdown.busy_time(bw) - 10.0).abs() < 1e-9);
        assert!((breakdown.total() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_is_reported_as_error() {
        let mut sim = Simulation::new();
        let cpu = sim.add_resource("cpu", 1.0);
        let a = sim.compute(ComputeSpec::new(cpu, 1.0));
        let b = sim.compute(ComputeSpec::new(cpu, 1.0).after(&[a]));
        // Manually create a cycle a -> b -> a.
        sim.add_dependency(a, b).unwrap();
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::DependencyCycle { .. }));
    }
}
