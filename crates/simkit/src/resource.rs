//! Resource descriptions for the DAG scheduling layer: processing sites with
//! core counts, per-core speed, memory capacity and a speedup-vs-cores curve.
//!
//! The flat [`crate::Simulation`] only knows *serial* resources (a rate in
//! work units per second). The DAG layer describes resources richly enough
//! for a [`crate::Scheduler`] to make placement decisions — how many cores a
//! site has, how well a task scales across them, and how much memory the
//! site offers — and derives the serial rate handed to the execution
//! substrate from that description.

use serde::{Deserialize, Serialize};

/// How a task's throughput scales with the number of cores assigned to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedupCurve {
    /// Perfect scaling: `n` cores are `n` times faster than one.
    Linear,
    /// Amdahl's law with the given serial fraction: `n` cores yield
    /// `1 / (serial + (1 - serial) / n)` times one core's throughput.
    Amdahl {
        /// Fraction of the work that cannot be parallelised, in `[0, 1]`.
        serial_fraction: f64,
    },
    /// No scaling: extra cores add nothing (a fixed-function unit such as an
    /// FPGA kernel or a DMA engine).
    Flat,
}

impl SpeedupCurve {
    /// Speedup factor over a single core when `cores` cores are assigned.
    ///
    /// Zero cores yield a factor of zero (the task cannot progress).
    pub fn factor(&self, cores: u32) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let n = f64::from(cores);
        match self {
            SpeedupCurve::Linear => n,
            SpeedupCurve::Amdahl { serial_fraction } => {
                let serial = serial_fraction.clamp(0.0, 1.0);
                1.0 / (serial + (1.0 - serial) / n)
            }
            SpeedupCurve::Flat => 1.0,
        }
    }
}

/// A processing site the scheduler can place work on.
///
/// `speed` is the single-core processing rate in work units per second (the
/// unit is whatever the site's tasks are measured in — FLOPs for a GPU,
/// bytes for an updater kernel). The serial rate a placement achieves is
/// [`Resource::rate_with`], i.e. `speed x speedup(cores)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Human-readable name ("gpu0", "fpga3-updater", "sg2042-cpu").
    pub name: String,
    /// Number of cores available at this site.
    pub cores: u32,
    /// Single-core processing rate in work units per second.
    pub speed: f64,
    /// Memory capacity in bytes (working-set admission, not modelled as
    /// bandwidth).
    pub memory_bytes: f64,
    /// How throughput scales when a task spans multiple cores.
    pub speedup: SpeedupCurve,
}

impl Resource {
    /// Creates a resource description.
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        speed: f64,
        memory_bytes: f64,
        speedup: SpeedupCurve,
    ) -> Self {
        Self { name: name.into(), cores, speed, memory_bytes, speedup }
    }

    /// Describes a serial fixed-function unit (one core, flat speedup) — the
    /// shape of every resource the flat [`crate::Simulation`] API registers.
    pub fn serial(name: impl Into<String>, speed: f64) -> Self {
        Self::new(name, 1, speed, f64::INFINITY, SpeedupCurve::Flat)
    }

    /// The effective serial rate when `cores` cores are assigned.
    pub fn rate_with(&self, cores: u32) -> f64 {
        self.speed * self.speedup.factor(cores.min(self.cores))
    }

    /// The effective serial rate when every core is assigned.
    pub fn full_rate(&self) -> f64 {
        self.rate_with(self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_speedup_scales_with_cores() {
        assert_eq!(SpeedupCurve::Linear.factor(1), 1.0);
        assert_eq!(SpeedupCurve::Linear.factor(8), 8.0);
        assert_eq!(SpeedupCurve::Linear.factor(0), 0.0);
    }

    #[test]
    fn amdahl_speedup_saturates() {
        let curve = SpeedupCurve::Amdahl { serial_fraction: 0.1 };
        assert!((curve.factor(1) - 1.0).abs() < 1e-12);
        let f64c = curve.factor(64);
        assert!(f64c > 7.0 && f64c < 10.0, "64-core Amdahl(0.1) ~ 8.7, got {f64c}");
        // The asymptote is 1/serial_fraction.
        assert!(curve.factor(100_000) < 10.0);
    }

    #[test]
    fn flat_speedup_ignores_cores() {
        assert_eq!(SpeedupCurve::Flat.factor(64), 1.0);
    }

    #[test]
    fn resource_rate_caps_at_available_cores() {
        let r = Resource::new("cpu", 4, 10.0, 1e9, SpeedupCurve::Linear);
        assert_eq!(r.rate_with(2), 20.0);
        assert_eq!(r.rate_with(16), 40.0, "cannot assign more cores than exist");
        assert_eq!(r.full_rate(), 40.0);
    }

    #[test]
    fn serial_resource_matches_flat_simulation_shape() {
        let r = Resource::serial("fpga", 7.3e9);
        assert_eq!(r.cores, 1);
        assert_eq!(r.full_rate(), 7.3e9);
    }
}
