//! Simulation results: per-task records, makespan, per-phase breakdowns and
//! per-link occupancy.

use crate::task::{LinkId, PhaseId, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Start and finish time of one completed task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Virtual time at which the task began executing.
    pub start: f64,
    /// Virtual time at which the task completed.
    pub finish: f64,
    /// Phase the task was tagged with, if any.
    pub phase: Option<PhaseId>,
}

impl TaskRecord {
    /// Duration of the task in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// Per-phase busy time: the measure of the union of execution intervals of all
/// tasks tagged with that phase. Overlapping tasks of the same phase are not
/// double counted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    busy: BTreeMap<usize, f64>,
    names: BTreeMap<usize, String>,
}

impl PhaseBreakdown {
    /// Busy time of a phase in virtual seconds (0 if the phase saw no work).
    pub fn busy_time(&self, phase: PhaseId) -> f64 {
        self.busy.get(&phase.index()).copied().unwrap_or(0.0)
    }

    /// Busy time looked up by phase name (0 if unknown).
    pub fn busy_time_by_name(&self, name: &str) -> f64 {
        for (idx, n) in &self.names {
            if n == name {
                return self.busy.get(idx).copied().unwrap_or(0.0);
            }
        }
        0.0
    }

    /// Sum of all phase busy times.
    pub fn total(&self) -> f64 {
        self.busy.values().sum()
    }

    /// Iterates over `(phase name, busy seconds)` pairs in phase-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.busy.iter().map(move |(idx, busy)| {
            let name = self.names.get(idx).map(String::as_str).unwrap_or("<unnamed>");
            (name, *busy)
        })
    }

    pub(crate) fn insert(&mut self, phase: usize, name: String, busy: f64) {
        self.busy.insert(phase, busy);
        self.names.insert(phase, name);
    }
}

/// A fault-model annotation attached to a timeline: a condition that degraded
/// the timing of the run (a straggling device, a derated link). Engines that
/// model faults record them here so reports can explain *why* a degraded
/// run's makespan moved without re-deriving the fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultAnnotation {
    /// Virtual time at which the effect became active (0 for whole-run
    /// effects).
    pub time: f64,
    /// The affected site, e.g. `csd3` or `host-uplink`.
    pub site: String,
    /// Human-readable description of the degradation.
    pub detail: String,
}

/// Sorts intervals by start time and returns the measure of their union
/// (overlapping intervals are not double counted).
fn union_measure(mut intervals: Vec<(f64, f64)>) -> f64 {
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut busy = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, f) in intervals {
        match cur {
            None => cur = Some((s, f)),
            Some((cs, cf)) => {
                if s <= cf {
                    cur = Some((cs, cf.max(f)));
                } else {
                    busy += cf - cs;
                    cur = Some((s, f));
                }
            }
        }
    }
    if let Some((cs, cf)) = cur {
        busy += cf - cs;
    }
    busy
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    records: Vec<TaskRecord>,
    makespan: f64,
    phase_names: Vec<String>,
    /// For every link of the simulation, the flow tasks that crossed it
    /// (the basis of the per-link occupancy queries).
    link_tasks: Vec<Vec<TaskId>>,
    /// Fault-model degradations that were active during the run.
    fault_annotations: Vec<FaultAnnotation>,
}

impl Timeline {
    pub(crate) fn new(
        records: Vec<TaskRecord>,
        makespan: f64,
        phase_names: Vec<String>,
        link_tasks: Vec<Vec<TaskId>>,
    ) -> Self {
        Self { records, makespan, phase_names, link_tasks, fault_annotations: Vec::new() }
    }

    /// Records a fault-model degradation that was active during this run.
    /// Engines call this after `run()` so downstream reports can tell a
    /// degraded timeline from a healthy one.
    pub fn annotate_fault(
        &mut self,
        time: f64,
        site: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.fault_annotations.push(FaultAnnotation {
            time,
            site: site.into(),
            detail: detail.into(),
        });
    }

    /// The fault-model degradations recorded for this run (empty for a
    /// fault-free simulation).
    pub fn fault_annotations(&self) -> &[FaultAnnotation] {
        &self.fault_annotations
    }

    /// Virtual time at which the task started.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not a valid task id of the simulation that produced
    /// this timeline.
    pub fn start_time(&self, task: TaskId) -> f64 {
        self.records[task].start
    }

    /// Virtual time at which the task finished.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not a valid task id of the simulation that produced
    /// this timeline.
    pub fn finish_time(&self, task: TaskId) -> f64 {
        self.records[task].finish
    }

    /// The record of a single task, if it exists.
    pub fn record(&self, task: TaskId) -> Option<&TaskRecord> {
        self.records.get(task)
    }

    /// All task records in task-id order.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Completion time of the whole DAG.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Latest finish time among the given tasks (0 when empty).
    pub fn finish_of(&self, tasks: &[TaskId]) -> f64 {
        tasks.iter().map(|&t| self.finish_time(t)).fold(0.0, f64::max)
    }

    /// Computes the per-phase breakdown (union of execution intervals per phase).
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let mut per_phase: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
        for rec in &self.records {
            if let Some(phase) = rec.phase {
                if rec.finish > rec.start {
                    per_phase.entry(phase.index()).or_default().push((rec.start, rec.finish));
                }
            }
        }
        let mut breakdown = PhaseBreakdown::default();
        for (phase, intervals) in per_phase {
            let busy = union_measure(intervals);
            let name =
                self.phase_names.get(phase).cloned().unwrap_or_else(|| format!("phase{phase}"));
            breakdown.insert(phase, name, busy);
        }
        breakdown
    }

    /// The intervals during which `link` carried at least one flow matching
    /// `keep`, merged and measured as a union.
    fn link_busy_filtered(&self, link: LinkId, keep: impl Fn(&TaskRecord) -> bool) -> f64 {
        let Some(tasks) = self.link_tasks.get(link.index()) else { return 0.0 };
        let intervals: Vec<(f64, f64)> = tasks
            .iter()
            .filter_map(|&t| self.records.get(t))
            .filter(|rec| rec.finish > rec.start && keep(rec))
            .map(|rec| (rec.start, rec.finish))
            .collect();
        union_measure(intervals)
    }

    /// Occupancy of a link: virtual seconds during which at least one flow
    /// was in progress on it (overlapping flows are not double counted).
    ///
    /// Together with [`Timeline::link_busy_time_in_phase`] this is the
    /// stage-level view of interconnect contention: a pipelined engine tags
    /// each stage's flows with a phase and can then ask how long a shared
    /// link was occupied by each stage, and how much the stages overlapped
    /// (`sum of per-phase busy − total busy`).
    pub fn link_busy_time(&self, link: LinkId) -> f64 {
        self.link_busy_filtered(link, |_| true)
    }

    /// Occupancy of a link restricted to flows tagged with `phase`.
    pub fn link_busy_time_in_phase(&self, link: LinkId, phase: PhaseId) -> f64 {
        self.link_busy_filtered(link, |rec| rec.phase == Some(phase))
    }

    /// Busy time of a phase clipped to `[0, cutoff]`: the measure of the
    /// union of execution intervals of the phase's tasks that fall before
    /// `cutoff`. This is how much of the phase's work genuinely ran before a
    /// reference event — e.g. how many seconds of the update stage overlapped
    /// the backward phase in a pipelined schedule.
    pub fn phase_busy_time_before(&self, phase: PhaseId, cutoff: f64) -> f64 {
        let intervals: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter(|rec| rec.phase == Some(phase) && rec.start < cutoff && rec.finish > rec.start)
            .map(|rec| (rec.start, rec.finish.min(cutoff)))
            .collect();
        union_measure(intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: f64, finish: f64, phase: Option<usize>) -> TaskRecord {
        TaskRecord { start, finish, phase: phase.map(PhaseId) }
    }

    #[test]
    fn breakdown_merges_overlapping_intervals() {
        let tl = Timeline::new(
            vec![rec(0.0, 5.0, Some(0)), rec(3.0, 8.0, Some(0)), rec(10.0, 12.0, Some(0))],
            12.0,
            vec!["update".to_string()],
            Vec::new(),
        );
        let b = tl.phase_breakdown();
        assert!((b.busy_time(PhaseId(0)) - 10.0).abs() < 1e-12);
        assert!((b.busy_time_by_name("update") - 10.0).abs() < 1e-12);
        assert_eq!(b.busy_time_by_name("missing"), 0.0);
    }

    #[test]
    fn breakdown_separates_phases() {
        let tl = Timeline::new(
            vec![rec(0.0, 4.0, Some(0)), rec(4.0, 6.0, Some(1)), rec(6.0, 7.0, None)],
            7.0,
            vec!["fw".to_string(), "bw".to_string()],
            Vec::new(),
        );
        let b = tl.phase_breakdown();
        assert!((b.busy_time(PhaseId(0)) - 4.0).abs() < 1e-12);
        assert!((b.busy_time(PhaseId(1)) - 2.0).abs() < 1e-12);
        assert!((b.total() - 6.0).abs() < 1e-12);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "fw");
    }

    #[test]
    fn task_record_duration() {
        assert!((rec(1.0, 3.5, None).duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn finish_of_takes_max() {
        let tl =
            Timeline::new(vec![rec(0.0, 1.0, None), rec(0.0, 5.0, None)], 5.0, vec![], Vec::new());
        assert!((tl.finish_of(&[0, 1]) - 5.0).abs() < 1e-12);
        assert_eq!(tl.finish_of(&[]), 0.0);
        assert!(tl.record(0).is_some());
        assert!(tl.record(7).is_none());
        assert_eq!(tl.records().len(), 2);
    }

    #[test]
    fn phase_busy_time_before_clips_to_the_cutoff() {
        let tl = Timeline::new(
            vec![rec(1.0, 3.0, Some(0)), rec(2.0, 6.0, Some(0)), rec(8.0, 9.0, Some(0))],
            9.0,
            vec!["update".to_string()],
            Vec::new(),
        );
        let update = PhaseId(0);
        // Full horizon: (1..6) ∪ (8..9) = 6 s.
        assert!((tl.phase_busy_time_before(update, 9.0) - 6.0).abs() < 1e-12);
        // Clipped at 4: (1..4) = 3 s — the late task contributes nothing.
        assert!((tl.phase_busy_time_before(update, 4.0) - 3.0).abs() < 1e-12);
        // A cutoff before any work reports zero.
        assert_eq!(tl.phase_busy_time_before(update, 1.0), 0.0);
        assert_eq!(tl.phase_busy_time_before(PhaseId(5), 9.0), 0.0);
    }

    #[test]
    fn fault_annotations_attach_and_survive_serialization() {
        let mut tl = Timeline::new(vec![rec(0.0, 1.0, None)], 1.0, vec![], Vec::new());
        assert!(tl.fault_annotations().is_empty());
        tl.annotate_fault(0.0, "csd2", "straggler: compute x3.0 slower");
        tl.annotate_fault(0.0, "host-uplink", "bandwidth derated to 50%");
        assert_eq!(tl.fault_annotations().len(), 2);
        assert_eq!(tl.fault_annotations()[0].site, "csd2");
        let json = serde_json::to_string(&tl).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fault_annotations(), tl.fault_annotations());
    }

    #[test]
    fn link_busy_time_merges_overlapping_flows_and_splits_by_phase() {
        // Link 0 carries: task 0 (phase 0, 0..5), task 1 (phase 0, 3..8) and
        // task 2 (phase 1, 7..10). Link 1 carries nothing.
        let tl = Timeline::new(
            vec![rec(0.0, 5.0, Some(0)), rec(3.0, 8.0, Some(0)), rec(7.0, 10.0, Some(1))],
            10.0,
            vec!["write".to_string(), "readback".to_string()],
            vec![vec![0, 1, 2], vec![]],
        );
        let link0 = LinkId(0);
        assert!((tl.link_busy_time(link0) - 10.0).abs() < 1e-12);
        assert!((tl.link_busy_time_in_phase(link0, PhaseId(0)) - 8.0).abs() < 1e-12);
        assert!((tl.link_busy_time_in_phase(link0, PhaseId(1)) - 3.0).abs() < 1e-12);
        // Stage overlap on the link: per-phase busy sums to 11 s against a
        // 10 s union, so the stages shared the link for 1 s.
        let overlap = tl.link_busy_time_in_phase(link0, PhaseId(0))
            + tl.link_busy_time_in_phase(link0, PhaseId(1))
            - tl.link_busy_time(link0);
        assert!((overlap - 1.0).abs() < 1e-12);
        assert_eq!(tl.link_busy_time(LinkId(1)), 0.0);
        // Unknown links report zero occupancy instead of panicking.
        assert_eq!(tl.link_busy_time(LinkId(9)), 0.0);
    }
}
