//! Task graphs: typed work items connected by data items and ordering edges.
//!
//! A [`Dag`] describes *what* an application does — computes, transfers,
//! delays and joins, plus the data items flowing between them — without
//! fixing *when* or *where* each piece runs. A [`crate::Scheduler`] walks the
//! graph and emits placement + ordering decisions, which a
//! [`crate::Lowering`] turns into concrete tasks on the flat
//! [`crate::Simulation`] substrate (see [`crate::execute`]).
//!
//! Two kinds of edges coexist:
//!
//! - **Hard inputs** ([`Dag::connect`]) and **after-edges**
//!   ([`Dag::add_after`]) are structural: every scheduler must honour them,
//!   and the executor resolves them into simulation dependencies
//!   automatically.
//! - **Soft inputs** ([`Dag::connect_soft`]) declare dataflow whose physical
//!   synchronisation is a *policy choice*: the scheduler decides which
//!   concrete events realise the edge (e.g. a global barrier vs per-device
//!   completion) and supplies them as [`crate::Anchor`]s on its decisions.

use crate::error::SimError;
use crate::task::PhaseId;

/// Identifier for a task in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DagTaskId(pub(crate) usize);

impl DagTaskId {
    /// Zero-based position of this task in the graph.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier for a data item produced by a task in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub(crate) usize);

impl DataId {
    /// Zero-based position of this data item in the graph.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Site index meaning "the storage class as a whole": the scheduler chooses
/// the concrete device targets via a [`crate::ScatterPlan`].
pub const SITE_STORAGE: usize = usize::MAX;

/// The work a DAG task performs, in site-relative terms.
///
/// Sites are small integers whose meaning is fixed by the [`crate::Lowering`]
/// in use (e.g. host = 0, GPUs next, then storage devices). The special site
/// [`SITE_STORAGE`] stands for the storage class; transfers touching it are
/// placed onto concrete devices by the scheduler's [`crate::ScatterPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DagWork {
    /// Computation of `amount` work units on the resource at `site`.
    Compute {
        /// Processing site the computation is bound to.
        site: usize,
        /// Work in the site's units (FLOPs, bytes, ...).
        amount: f64,
    },
    /// Moving `bytes` from one site to another.
    Transfer {
        /// Originating site.
        from: usize,
        /// Destination site (possibly [`SITE_STORAGE`]).
        to: usize,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// A fixed latency (setup cost, software overhead).
    Delay {
        /// Duration in seconds.
        seconds: f64,
    },
    /// A zero-cost synchronisation point.
    Join,
}

/// A task in the graph: its work, phase attribution and edges.
#[derive(Debug, Clone)]
pub struct DagTask {
    /// Human-readable name for debugging and error messages.
    pub name: String,
    /// The work this task performs.
    pub work: DagWork,
    /// Phase the lowered simulation task is attributed to.
    pub phase: Option<PhaseId>,
    /// Hard data inputs: producers must be scheduled first, and the executor
    /// wires the producers' lowered tasks in as dependencies.
    pub inputs: Vec<DataId>,
    /// Soft data inputs: dataflow whose synchronisation the scheduler
    /// realises through decision anchors instead of structural edges.
    pub soft_inputs: Vec<DataId>,
    /// Structural ordering edges with no data attached.
    pub after: Vec<DagTaskId>,
    /// Data items this task produces.
    pub outputs: Vec<DataId>,
}

/// A data item: a named payload produced by one task.
#[derive(Debug, Clone)]
pub struct DataItem {
    /// Human-readable name.
    pub name: String,
    /// Size in bytes (informational; transfer sizing lives in [`DagWork`]).
    pub bytes: f64,
    /// The task that produces this item.
    pub producer: DagTaskId,
    /// Site the item lives at once produced, when meaningful. Items scattered
    /// across storage carry `None`; per-site availability is resolved through
    /// [`crate::Anchor::TaskAtSite`].
    pub site: Option<usize>,
}

/// A task graph under construction.
///
/// Malformed references (unknown task or data ids) poison the graph rather
/// than panicking; the first error is reported by [`Dag::validate`] and by
/// [`crate::execute`].
#[derive(Debug, Default)]
pub struct Dag {
    tasks: Vec<DagTask>,
    data: Vec<DataItem>,
    poison: Option<SimError>,
}

impl Dag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn poison(&mut self, err: SimError) {
        if self.poison.is_none() {
            self.poison = Some(err);
        }
    }

    fn check_task(&mut self, id: DagTaskId) -> bool {
        if id.0 < self.tasks.len() {
            true
        } else {
            self.poison(SimError::UnknownId { kind: "dag task", index: id.0 });
            false
        }
    }

    fn check_data(&mut self, id: DataId) -> bool {
        if id.0 < self.data.len() {
            true
        } else {
            self.poison(SimError::UnknownId { kind: "data item", index: id.0 });
            false
        }
    }

    /// Adds a task with no edges and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, work: DagWork) -> DagTaskId {
        let id = DagTaskId(self.tasks.len());
        if let DagWork::Compute { amount, .. } = work {
            if !(amount.is_finite() && amount >= 0.0) {
                self.poison(SimError::InvalidParameter {
                    message: format!(
                        "dag compute amount must be non-negative and finite, got {amount}"
                    ),
                });
            }
        }
        if let DagWork::Transfer { bytes, .. } = work {
            if !(bytes.is_finite() && bytes >= 0.0) {
                self.poison(SimError::InvalidParameter {
                    message: format!(
                        "dag transfer bytes must be non-negative and finite, got {bytes}"
                    ),
                });
            }
        }
        if let DagWork::Delay { seconds } = work {
            if !(seconds.is_finite() && seconds >= 0.0) {
                self.poison(SimError::InvalidParameter {
                    message: format!("dag delay must be non-negative and finite, got {seconds}"),
                });
            }
        }
        self.tasks.push(DagTask {
            name: name.into(),
            work,
            phase: None,
            inputs: Vec::new(),
            soft_inputs: Vec::new(),
            after: Vec::new(),
            outputs: Vec::new(),
        });
        id
    }

    /// Attributes a task's lowered work to a simulation phase.
    pub fn set_phase(&mut self, task: DagTaskId, phase: PhaseId) {
        if self.check_task(task) {
            self.tasks[task.0].phase = Some(phase);
        }
    }

    /// Registers a data item produced by `task` and returns its id.
    pub fn add_output(
        &mut self,
        task: DagTaskId,
        name: impl Into<String>,
        bytes: f64,
        site: Option<usize>,
    ) -> DataId {
        let id = DataId(self.data.len());
        self.data.push(DataItem { name: name.into(), bytes, producer: task, site });
        if self.check_task(task) {
            self.tasks[task.0].outputs.push(id);
        }
        id
    }

    /// Declares a hard data input: `consumer` structurally depends on the
    /// item's producer.
    pub fn connect(&mut self, consumer: DagTaskId, item: DataId) {
        if self.check_task(consumer) && self.check_data(item) {
            self.tasks[consumer.0].inputs.push(item);
        }
    }

    /// Declares a soft data input: the dataflow exists, but the scheduler
    /// chooses the synchronisation realising it (via decision anchors).
    pub fn connect_soft(&mut self, consumer: DagTaskId, item: DataId) {
        if self.check_task(consumer) && self.check_data(item) {
            self.tasks[consumer.0].soft_inputs.push(item);
        }
    }

    /// Adds a structural ordering edge: `task` runs after `pred`.
    pub fn add_after(&mut self, task: DagTaskId, pred: DagTaskId) {
        if self.check_task(task) && self.check_task(pred) {
            self.tasks[task.0].after.push(pred);
        }
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id, if it exists.
    pub fn task(&self, id: DagTaskId) -> Option<&DagTask> {
        self.tasks.get(id.0)
    }

    /// The data item with the given id, if it exists.
    pub fn data(&self, id: DataId) -> Option<&DataItem> {
        self.data.get(id.0)
    }

    /// All tasks, in id order.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// Structural predecessors of a task: hard-input producers first (in
    /// declaration order), then after-edges. May contain duplicates.
    pub fn predecessors(&self, id: DagTaskId) -> Vec<DagTaskId> {
        let Some(task) = self.tasks.get(id.0) else {
            return Vec::new();
        };
        let mut preds: Vec<DagTaskId> =
            task.inputs.iter().map(|d| self.data[d.0].producer).collect();
        preds.extend(task.after.iter().copied());
        preds
    }

    /// Checks the graph is well-formed: no poisoned references, and no cycle
    /// through structural edges.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(err) = &self.poison {
            return Err(err.clone());
        }
        // Kahn's algorithm over hard edges.
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, degree) in indegree.iter_mut().enumerate() {
            for pred in self.predecessors(DagTaskId(id)) {
                *degree += 1;
                dependents[pred.0].push(id);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(t) = ready.pop() {
            visited += 1;
            for &d in &dependents[t] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if visited != n {
            let stuck: Vec<usize> = (0..n).filter(|&i| indegree[i] > 0).collect();
            return Err(SimError::DependencyCycle { stuck_tasks: stuck });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_a_small_graph() {
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Compute { site: 0, amount: 1.0 });
        let out = dag.add_output(a, "a.out", 8.0, Some(0));
        let b = dag.add_task("b", DagWork::Transfer { from: 0, to: 1, bytes: 8.0 });
        dag.connect(b, out);
        let c = dag.add_task("c", DagWork::Join);
        dag.add_after(c, b);

        assert_eq!(dag.len(), 3);
        assert_eq!(dag.predecessors(b), vec![a]);
        assert_eq!(dag.predecessors(c), vec![b]);
        assert_eq!(dag.task(a).unwrap().outputs, vec![out]);
        dag.validate().expect("well-formed graph");
    }

    #[test]
    fn unknown_data_reference_poisons_the_graph() {
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Join);
        dag.connect(a, DataId(7));
        let err = dag.validate().expect_err("poisoned graph must not validate");
        assert!(matches!(err, SimError::UnknownId { kind: "data item", index: 7 }));
    }

    #[test]
    fn structural_cycle_is_detected() {
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Join);
        let b = dag.add_task("b", DagWork::Join);
        dag.add_after(a, b);
        dag.add_after(b, a);
        let err = dag.validate().expect_err("cycle must not validate");
        assert!(matches!(err, SimError::DependencyCycle { .. }));
    }

    #[test]
    fn negative_transfer_bytes_poison_the_graph() {
        let mut dag = Dag::new();
        dag.add_task("t", DagWork::Transfer { from: 0, to: 1, bytes: -4.0 });
        let err = dag.validate().expect_err("negative bytes must poison");
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }

    #[test]
    fn soft_inputs_do_not_create_structural_edges() {
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Compute { site: 0, amount: 1.0 });
        let out = dag.add_output(a, "a.out", 8.0, None);
        let b = dag.add_task("b", DagWork::Join);
        dag.connect_soft(b, out);
        assert!(dag.predecessors(b).is_empty());
        assert_eq!(dag.task(b).unwrap().soft_inputs, vec![out]);
    }
}
