//! Pluggable scheduling: an object-safe [`Scheduler`] trait over a [`Dag`],
//! plus the deterministic executor that lowers its decisions onto the flat
//! [`Simulation`] substrate.
//!
//! The division of labour:
//!
//! - The **[`Dag`]** holds the policy-invariant structure: tasks, hard data
//!   edges, after-edges, and soft (policy-realised) dataflow.
//! - The **[`Scheduler`]** is called back as tasks become ready (and, when it
//!   defers work, as resources free up) and answers with [`Decision`]s:
//!   which task to schedule, which extra synchronisation [`Anchor`]s to wait
//!   on, how to scatter storage-class transfers across concrete devices
//!   ([`ScatterPlan`]), and any setup latency to charge first
//!   ([`SetupDelay`]).
//! - The **[`Lowering`]** translates each scheduled DAG task into concrete
//!   flow/compute/delay/barrier tasks on a [`Simulation`] (or any richer
//!   platform wrapper around one), so `Timeline`, link occupancy and phase
//!   accounting keep working unchanged.
//!
//! [`execute`] drives the three together deterministically: tasks are
//! offered to the scheduler in ascending id order among ready tasks, and
//! decisions are lowered in the order the scheduler emits them. Two runs
//! over the same graph with the same scheduler therefore produce the same
//! simulation, task id for task id.

use crate::dag::{Dag, DagTaskId, DagWork, SITE_STORAGE};
use crate::engine::Simulation;
use crate::error::SimError;
use crate::resource::Resource;
use crate::task::{ComputeSpec, DelaySpec, FlowSpec, LinkId, PhaseId, ResourceId, TaskId};

/// A synchronisation point a scheduling decision can wait on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// The main lowered task of a DAG task (its barrier when it lowered to a
    /// joined scatter, otherwise the task itself).
    Task(DagTaskId),
    /// A per-site sub-result of a DAG task — e.g. the write flow a scatter
    /// issued towards one particular device.
    TaskAtSite(DagTaskId, usize),
}

/// Placement of a storage-class transfer onto concrete sites.
///
/// Each entry issues one flow of `bytes` towards (or from) `site`. With
/// `join` set, a barrier over all flows becomes the lowered task's main
/// result; without it, the flows complete independently and downstream
/// decisions synchronise on individual sites via [`Anchor::TaskAtSite`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPlan {
    /// `(site, bytes)` pairs, one flow each, issued in order.
    pub transfers: Vec<(usize, f64)>,
    /// Whether to join the flows behind a barrier.
    pub join: bool,
}

/// A fixed latency charged immediately before a task starts — e.g. a
/// software handler's buffer-allocation overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupDelay {
    /// Duration in seconds.
    pub seconds: f64,
    /// What the setup itself waits on.
    pub after: Vec<Anchor>,
}

/// A fully specified placement + ordering choice for one DAG task.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDecision {
    /// The task being scheduled.
    pub task: DagTaskId,
    /// Extra synchronisation beyond the task's structural edges, resolved in
    /// order and appended after the structural dependencies.
    pub after: Vec<Anchor>,
    /// Placement for storage-class transfers; `None` for everything else.
    pub scatter: Option<ScatterPlan>,
    /// Setup latency charged before the task.
    pub setup: Option<SetupDelay>,
}

impl ScheduleDecision {
    /// Schedules `task` with structural dependencies only.
    pub fn new(task: DagTaskId) -> Self {
        Self { task, after: Vec::new(), scatter: None, setup: None }
    }

    /// Appends a synchronisation anchor.
    pub fn after(mut self, anchor: Anchor) -> Self {
        self.after.push(anchor);
        self
    }

    /// Appends several synchronisation anchors.
    pub fn after_all(mut self, anchors: impl IntoIterator<Item = Anchor>) -> Self {
        self.after.extend(anchors);
        self
    }

    /// Sets the scatter placement.
    pub fn scatter(mut self, plan: ScatterPlan) -> Self {
        self.scatter = Some(plan);
        self
    }

    /// Sets the setup delay.
    pub fn setup(mut self, delay: SetupDelay) -> Self {
        self.setup = Some(delay);
        self
    }
}

/// What a scheduler answers when called back.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Lower this task now, with the given placement and ordering.
    Schedule(ScheduleDecision),
    /// Hold this task back; the scheduler will be re-consulted via
    /// [`Scheduler::on_resource_free`] once scheduling stalls.
    Defer(DagTaskId),
}

/// Read-only view of scheduling state handed to scheduler callbacks.
pub struct SystemView<'a> {
    resources: &'a [Resource],
    scheduled: &'a [bool],
}

impl SystemView<'_> {
    /// The resource descriptions the executor was given.
    pub fn resources(&self) -> &[Resource] {
        self.resources
    }

    /// Whether a DAG task has already been scheduled.
    pub fn is_scheduled(&self, task: DagTaskId) -> bool {
        self.scheduled.get(task.index()).copied().unwrap_or(false)
    }

    /// How many DAG tasks have been scheduled so far.
    pub fn scheduled_count(&self) -> usize {
        self.scheduled.iter().filter(|&&s| s).count()
    }
}

/// A scheduling policy over a [`Dag`]. Object-safe: engines select one at
/// run time from method axes and pass it as `&mut dyn Scheduler`.
pub trait Scheduler {
    /// Short policy name, used in reports and comparison tables.
    fn name(&self) -> &'static str;

    /// Called once per task when its structural predecessors are all
    /// scheduled. May answer with decisions for this task, for other ready
    /// tasks, or defer.
    fn on_task_ready(
        &mut self,
        task: DagTaskId,
        dag: &Dag,
        system: &SystemView<'_>,
    ) -> Vec<Decision>;

    /// Called for each site when scheduling stalls with deferred tasks
    /// outstanding — the hook where a deferring policy releases held work.
    fn on_resource_free(
        &mut self,
        site: usize,
        dag: &Dag,
        system: &SystemView<'_>,
    ) -> Vec<Decision> {
        let _ = (site, dag, system);
        Vec::new()
    }
}

/// The concrete simulation tasks one DAG task lowered to.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The task downstream structural edges attach to.
    pub main: TaskId,
    /// Per-site sub-results (scatter flows), for [`Anchor::TaskAtSite`].
    pub per_site: Vec<(usize, TaskId)>,
}

impl Lowered {
    /// A lowering with a single concrete task and no per-site parts.
    pub fn single(main: TaskId) -> Self {
        Self { main, per_site: Vec::new() }
    }

    /// The sub-result at `site`, if any.
    pub fn at_site(&self, site: usize) -> Option<TaskId> {
        self.per_site.iter().find(|(s, _)| *s == site).map(|(_, t)| *t)
    }
}

/// Translates scheduled DAG tasks into concrete simulation tasks.
pub trait Lowering {
    /// Lowers `task` with the given scatter placement and resolved
    /// dependency list.
    fn lower(
        &mut self,
        dag: &Dag,
        task: DagTaskId,
        scatter: Option<&ScatterPlan>,
        deps: &[TaskId],
    ) -> Result<Lowered, SimError>;

    /// Lowers a setup delay attributed to `phase`.
    fn lower_delay(
        &mut self,
        seconds: f64,
        deps: &[TaskId],
        phase: Option<PhaseId>,
    ) -> Result<TaskId, SimError>;
}

/// The result of [`execute`]: a map from DAG tasks to their lowered
/// simulation tasks.
#[derive(Debug)]
pub struct ScheduleOutcome {
    lowered: Vec<Lowered>,
}

impl ScheduleOutcome {
    /// The main lowered task of a DAG task.
    pub fn task(&self, id: DagTaskId) -> Option<TaskId> {
        self.lowered.get(id.index()).map(|l| l.main)
    }

    /// The per-site sub-result of a DAG task.
    pub fn at_site(&self, id: DagTaskId, site: usize) -> Option<TaskId> {
        self.lowered.get(id.index()).and_then(|l| l.at_site(site))
    }
}

struct Executor<'a> {
    dag: &'a Dag,
    resources: &'a [Resource],
    lowered: Vec<Option<Lowered>>,
    scheduled: Vec<bool>,
    deferred: Vec<bool>,
    done: usize,
}

impl<'a> Executor<'a> {
    fn is_ready(&self, task: usize) -> bool {
        self.dag
            .predecessors(DagTaskId(task))
            .iter()
            .all(|p| self.scheduled.get(p.index()).copied().unwrap_or(false))
    }

    fn resolve_anchor(&self, anchor: Anchor) -> Result<TaskId, SimError> {
        match anchor {
            Anchor::Task(t) => match self.lowered.get(t.index()).and_then(|l| l.as_ref()) {
                Some(l) => Ok(l.main),
                None => Err(SimError::InvalidParameter {
                    message: format!("anchor references unscheduled dag task {}", t.index()),
                }),
            },
            Anchor::TaskAtSite(t, site) => {
                let Some(l) = self.lowered.get(t.index()).and_then(|l| l.as_ref()) else {
                    return Err(SimError::InvalidParameter {
                        message: format!("anchor references unscheduled dag task {}", t.index()),
                    });
                };
                l.at_site(site).ok_or_else(|| SimError::InvalidParameter {
                    message: format!(
                        "dag task {} has no lowered sub-result at site {site}",
                        t.index()
                    ),
                })
            }
        }
    }

    /// Resolves the full dependency list for a decision: hard inputs (with
    /// per-site refinement), then after-edges, then decision anchors.
    fn resolve_deps(&self, decision: &ScheduleDecision) -> Result<Vec<TaskId>, SimError> {
        let task = self.dag.task(decision.task).expect("validated id");
        let mut deps = Vec::new();
        for &input in &task.inputs {
            let item = self.dag.data(input).expect("validated id");
            let produced = self.lowered[item.producer.index()].as_ref().ok_or_else(|| {
                SimError::InvalidParameter {
                    message: format!(
                        "task '{}' scheduled before producer of its input '{}'",
                        task.name, item.name
                    ),
                }
            })?;
            let dep = match item.site {
                Some(site) => produced.at_site(site).unwrap_or(produced.main),
                None => produced.main,
            };
            deps.push(dep);
        }
        for &pred in &task.after {
            let produced =
                self.lowered[pred.index()].as_ref().ok_or_else(|| SimError::InvalidParameter {
                    message: format!("task '{}' scheduled before its predecessor", task.name),
                })?;
            deps.push(produced.main);
        }
        for &anchor in &decision.after {
            deps.push(self.resolve_anchor(anchor)?);
        }
        Ok(deps)
    }

    fn apply(
        &mut self,
        decisions: Vec<Decision>,
        lowering: &mut dyn Lowering,
    ) -> Result<bool, SimError> {
        let mut progress = false;
        for decision in decisions {
            match decision {
                Decision::Defer(t) => {
                    if t.index() >= self.dag.len() {
                        return Err(SimError::UnknownId { kind: "dag task", index: t.index() });
                    }
                    if !self.scheduled[t.index()] {
                        self.deferred[t.index()] = true;
                    }
                }
                Decision::Schedule(sd) => {
                    let idx = sd.task.index();
                    if idx >= self.dag.len() {
                        return Err(SimError::UnknownId { kind: "dag task", index: idx });
                    }
                    if self.scheduled[idx] {
                        return Err(SimError::InvalidParameter {
                            message: format!(
                                "scheduler scheduled dag task {idx} ('{}') twice",
                                self.dag.task(sd.task).expect("validated id").name
                            ),
                        });
                    }
                    if !self.is_ready(idx) {
                        return Err(SimError::InvalidParameter {
                            message: format!(
                                "scheduler scheduled dag task {idx} ('{}') before its \
                                 structural predecessors",
                                self.dag.task(sd.task).expect("validated id").name
                            ),
                        });
                    }
                    let mut deps = self.resolve_deps(&sd)?;
                    if let Some(setup) = &sd.setup {
                        let mut setup_deps = Vec::new();
                        for &anchor in &setup.after {
                            setup_deps.push(self.resolve_anchor(anchor)?);
                        }
                        let phase = self.dag.task(sd.task).expect("validated id").phase;
                        let delay = lowering.lower_delay(setup.seconds, &setup_deps, phase)?;
                        deps.push(delay);
                    }
                    let lowered = lowering.lower(self.dag, sd.task, sd.scatter.as_ref(), &deps)?;
                    self.lowered[idx] = Some(lowered);
                    self.scheduled[idx] = true;
                    self.deferred[idx] = false;
                    self.done += 1;
                    progress = true;
                }
            }
        }
        Ok(progress)
    }
}

/// Runs `scheduler` over `dag`, lowering its decisions through `lowering`.
///
/// Ready tasks are offered to the scheduler in ascending id order; when a
/// sweep makes no progress and tasks remain, each site is offered via
/// [`Scheduler::on_resource_free`] before the executor gives up with
/// [`SimError::SchedulerStalled`].
pub fn execute(
    dag: &Dag,
    resources: &[Resource],
    scheduler: &mut dyn Scheduler,
    lowering: &mut dyn Lowering,
) -> Result<ScheduleOutcome, SimError> {
    dag.validate()?;
    let n = dag.len();
    let mut exec = Executor {
        dag,
        resources,
        lowered: (0..n).map(|_| None).collect(),
        scheduled: vec![false; n],
        deferred: vec![false; n],
        done: 0,
    };
    // All sites mentioned by the graph, for resource-free sweeps.
    let mut sites: Vec<usize> = dag
        .tasks()
        .iter()
        .flat_map(|t| match t.work {
            DagWork::Compute { site, .. } => vec![site],
            DagWork::Transfer { from, to, .. } => vec![from, to],
            _ => Vec::new(),
        })
        .filter(|&s| s != SITE_STORAGE)
        .collect();
    sites.sort_unstable();
    sites.dedup();

    while exec.done < n {
        let mut progress = false;
        for t in 0..n {
            if exec.scheduled[t] || exec.deferred[t] || !exec.is_ready(t) {
                continue;
            }
            let decisions = {
                let view = SystemView { resources: exec.resources, scheduled: &exec.scheduled };
                scheduler.on_task_ready(DagTaskId(t), dag, &view)
            };
            progress |= exec.apply(decisions, lowering)?;
        }
        if exec.done == n || progress {
            continue;
        }
        // Stalled: sweep resource-free callbacks to release deferred work.
        let mut freed = false;
        for &site in &sites {
            let decisions = {
                let view = SystemView { resources: exec.resources, scheduled: &exec.scheduled };
                scheduler.on_resource_free(site, dag, &view)
            };
            freed |= exec.apply(decisions, lowering)?;
        }
        if !freed {
            let pending: Vec<usize> = (0..n).filter(|&t| !exec.scheduled[t]).collect();
            return Err(SimError::SchedulerStalled { pending_tasks: pending });
        }
    }
    Ok(ScheduleOutcome {
        lowered: exec.lowered.into_iter().map(|l| l.expect("all tasks scheduled")).collect(),
    })
}

/// The default policy: schedules every task the moment it is offered,
/// realising soft inputs as dependencies on their producers' main results.
/// Storage-class transfers are not placed (no scatter plan), so graphs using
/// [`SITE_STORAGE`] need a placement-aware scheduler.
#[derive(Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn on_task_ready(
        &mut self,
        task: DagTaskId,
        dag: &Dag,
        system: &SystemView<'_>,
    ) -> Vec<Decision> {
        let node = dag.task(task).expect("offered tasks exist");
        let soft_ok = node
            .soft_inputs
            .iter()
            .all(|&d| dag.data(d).map(|item| system.is_scheduled(item.producer)).unwrap_or(false));
        if !soft_ok {
            // Wait until the producers of soft inputs are scheduled too.
            return Vec::new();
        }
        let anchors: Vec<Anchor> = node
            .soft_inputs
            .iter()
            .filter_map(|&d| dag.data(d).map(|item| Anchor::Task(item.producer)))
            .collect();
        vec![Decision::Schedule(ScheduleDecision::new(task).after_all(anchors))]
    }
}

/// A direct lowering onto a plain [`Simulation`]: sites index straight into
/// registered compute resources and transfers ride per-route link paths.
///
/// Suited to synthetic graphs and flat topologies; richer platforms (media
/// links, fault annotations) implement [`Lowering`] themselves.
pub struct DirectLowering<'a> {
    sim: &'a mut Simulation,
    compute: Vec<Option<ResourceId>>,
    routes: Vec<((usize, usize), Vec<LinkId>)>,
}

impl<'a> DirectLowering<'a> {
    /// Wraps a simulation with empty site and route maps.
    pub fn new(sim: &'a mut Simulation) -> Self {
        Self { sim, compute: Vec::new(), routes: Vec::new() }
    }

    /// Maps a site index to a compute resource.
    pub fn map_site(&mut self, site: usize, resource: ResourceId) {
        if self.compute.len() <= site {
            self.compute.resize(site + 1, None);
        }
        self.compute[site] = Some(resource);
    }

    /// Maps a directed route between two sites to a link path.
    pub fn map_route(&mut self, from: usize, to: usize, path: Vec<LinkId>) {
        self.routes.push(((from, to), path));
    }

    fn route(&self, from: usize, to: usize) -> Result<Vec<LinkId>, SimError> {
        self.routes
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, p)| p.clone())
            .ok_or_else(|| SimError::InvalidParameter {
                message: format!("no route mapped from site {from} to site {to}"),
            })
    }

    fn site_resource(&self, site: usize) -> Result<ResourceId, SimError> {
        self.compute
            .get(site)
            .copied()
            .flatten()
            .ok_or(SimError::UnknownId { kind: "site", index: site })
    }
}

impl Lowering for DirectLowering<'_> {
    fn lower(
        &mut self,
        dag: &Dag,
        task: DagTaskId,
        scatter: Option<&ScatterPlan>,
        deps: &[TaskId],
    ) -> Result<Lowered, SimError> {
        let node =
            dag.task(task).ok_or(SimError::UnknownId { kind: "dag task", index: task.index() })?;
        match node.work {
            DagWork::Join => Ok(Lowered::single(self.sim.barrier(deps))),
            DagWork::Delay { seconds } => {
                let mut spec = DelaySpec::new(seconds).after(deps).label(node.name.clone());
                if let Some(p) = node.phase {
                    spec = spec.phase(p);
                }
                Ok(Lowered::single(self.sim.delay(spec)))
            }
            DagWork::Compute { site, amount } => {
                let resource = self.site_resource(site)?;
                let mut spec =
                    ComputeSpec::new(resource, amount).after(deps).label(node.name.clone());
                if let Some(p) = node.phase {
                    spec = spec.phase(p);
                }
                Ok(Lowered::single(self.sim.compute(spec)))
            }
            DagWork::Transfer { from, to, bytes } => match scatter {
                None => {
                    if from == SITE_STORAGE || to == SITE_STORAGE {
                        return Err(SimError::InvalidParameter {
                            message: format!(
                                "storage-class transfer '{}' requires a scatter plan",
                                node.name
                            ),
                        });
                    }
                    let path = self.route(from, to)?;
                    let mut spec = FlowSpec::new(path, bytes).after(deps).label(node.name.clone());
                    if let Some(p) = node.phase {
                        spec = spec.phase(p);
                    }
                    Ok(Lowered::single(self.sim.flow(spec)))
                }
                Some(plan) => {
                    let mut per_site = Vec::new();
                    let mut flows = Vec::new();
                    for &(site, part_bytes) in &plan.transfers {
                        let path = if to == SITE_STORAGE {
                            self.route(from, site)?
                        } else {
                            self.route(site, to)?
                        };
                        let mut spec = FlowSpec::new(path, part_bytes)
                            .after(deps)
                            .label(format!("{}@{site}", node.name));
                        if let Some(p) = node.phase {
                            spec = spec.phase(p);
                        }
                        let flow = self.sim.flow(spec);
                        per_site.push((site, flow));
                        flows.push(flow);
                    }
                    let main = if flows.is_empty() {
                        self.sim.barrier(deps)
                    } else if plan.join {
                        self.sim.barrier(&flows)
                    } else {
                        *flows.last().expect("non-empty")
                    };
                    Ok(Lowered { main, per_site })
                }
            },
        }
    }

    fn lower_delay(
        &mut self,
        seconds: f64,
        deps: &[TaskId],
        phase: Option<PhaseId>,
    ) -> Result<TaskId, SimError> {
        let mut spec = DelaySpec::new(seconds).after(deps).label("setup");
        if let Some(p) = phase {
            spec = spec.phase(p);
        }
        Ok(self.sim.delay(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DataId;

    /// A two-site test bed: compute resources at sites 0 and 1 plus three
    /// storage device sites (2, 3, 4), each behind its own link.
    fn testbed(sim: &mut Simulation) -> DirectLowering<'_> {
        let r0 = sim.add_resource("site0", 2.0);
        let r1 = sim.add_resource("site1", 3.0);
        let l01 = sim.add_link("l01", 4.0);
        let dev_links: Vec<LinkId> =
            (0..3).map(|d| sim.add_link(format!("dev{d}"), 10.0)).collect();
        let mut lowering = DirectLowering::new(sim);
        lowering.map_site(0, r0);
        lowering.map_site(1, r1);
        lowering.map_route(0, 1, vec![l01]);
        lowering.map_route(1, 0, vec![l01]);
        for (d, link) in dev_links.iter().enumerate() {
            lowering.map_route(0, 2 + d, vec![*link]);
            lowering.map_route(2 + d, 0, vec![*link]);
        }
        lowering
    }

    #[test]
    fn chain_dag_matches_golden_timeline() {
        // compute 10 units @ 2/s (5 s) -> transfer 40 B @ 4 B/s (10 s)
        // -> compute 6 units @ 3/s (2 s): finishes at 5, 15, 17.
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Compute { site: 0, amount: 10.0 });
        let out_a = dag.add_output(a, "a.out", 40.0, Some(0));
        let b = dag.add_task("b", DagWork::Transfer { from: 0, to: 1, bytes: 40.0 });
        dag.connect(b, out_a);
        let out_b = dag.add_output(b, "b.out", 40.0, Some(1));
        let c = dag.add_task("c", DagWork::Compute { site: 1, amount: 6.0 });
        dag.connect(c, out_b);

        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let outcome =
            execute(&dag, &[], &mut FifoScheduler, &mut lowering).expect("schedules cleanly");
        let tl = sim.run().expect("runs cleanly");
        assert_eq!(tl.finish_time(outcome.task(a).unwrap()).to_bits(), 5.0f64.to_bits());
        assert_eq!(tl.finish_time(outcome.task(b).unwrap()).to_bits(), 15.0f64.to_bits());
        assert_eq!(tl.finish_time(outcome.task(c).unwrap()).to_bits(), 17.0f64.to_bits());
        assert_eq!(tl.makespan().to_bits(), 17.0f64.to_bits());
    }

    #[test]
    fn diamond_dag_joins_on_the_slower_branch() {
        // a (2 s) fans out to transfers b (back-to-back on the shared link
        // with c under max-min fairness), joined by d.
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Compute { site: 0, amount: 4.0 });
        let out_a = dag.add_output(a, "act", 1.0, Some(0));
        let b = dag.add_task("b", DagWork::Transfer { from: 0, to: 1, bytes: 8.0 });
        let c = dag.add_task("c", DagWork::Transfer { from: 0, to: 1, bytes: 16.0 });
        dag.connect(b, out_a);
        dag.connect(c, out_a);
        let d = dag.add_task("d", DagWork::Join);
        dag.add_after(d, b);
        dag.add_after(d, c);

        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let outcome =
            execute(&dag, &[], &mut FifoScheduler, &mut lowering).expect("schedules cleanly");
        let tl = sim.run().expect("runs cleanly");
        // a: 2 s. Shared 4 B/s link: both flows at 2 B/s; b (8 B) done at
        // t=6, c then gets 4 B/s for its remaining 8 B -> t=8.
        assert_eq!(tl.finish_time(outcome.task(b).unwrap()).to_bits(), 6.0f64.to_bits());
        assert_eq!(tl.finish_time(outcome.task(c).unwrap()).to_bits(), 8.0f64.to_bits());
        assert_eq!(tl.finish_time(outcome.task(d).unwrap()).to_bits(), 8.0f64.to_bits());
    }

    /// A placement-aware policy for the fan-out test: scatters the storage
    /// write across the given sites and realises the consumer's soft input
    /// either as a join barrier or as per-site anchors.
    struct ScatterPolicy {
        sites: Vec<usize>,
        join: bool,
    }

    impl Scheduler for ScatterPolicy {
        fn name(&self) -> &'static str {
            "scatter-test"
        }

        fn on_task_ready(
            &mut self,
            task: DagTaskId,
            dag: &Dag,
            _system: &SystemView<'_>,
        ) -> Vec<Decision> {
            let node = dag.task(task).unwrap();
            let mut decision = ScheduleDecision::new(task);
            if let DagWork::Transfer { to: SITE_STORAGE, bytes, .. } = node.work {
                let per_site = bytes / self.sites.len() as f64;
                decision = decision.scatter(ScatterPlan {
                    transfers: self.sites.iter().map(|&s| (s, per_site)).collect(),
                    join: self.join,
                });
            }
            if !node.soft_inputs.is_empty() {
                // Realise soft inputs: anchor on the producer (its main is the
                // join barrier when joined) or on each per-site write.
                for &item in &node.soft_inputs {
                    let producer = dag.data(item).unwrap().producer;
                    if self.join {
                        decision = decision.after(Anchor::Task(producer));
                    } else {
                        decision = decision
                            .after_all(self.sites.iter().map(|&s| Anchor::TaskAtSite(producer, s)));
                    }
                }
            }
            vec![Decision::Schedule(decision)]
        }
    }

    fn fanout_dag() -> (Dag, DagTaskId, DagTaskId, DagTaskId) {
        let mut dag = Dag::new();
        let a = dag.add_task("produce", DagWork::Compute { site: 0, amount: 2.0 });
        let grad = dag.add_output(a, "grad", 90.0, None);
        let w =
            dag.add_task("offload", DagWork::Transfer { from: 0, to: SITE_STORAGE, bytes: 90.0 });
        dag.connect(w, grad);
        let stored = dag.add_output(w, "stored", 90.0, None);
        let done = dag.add_task("done", DagWork::Join);
        dag.connect_soft(done, stored);
        (dag, a, w, done)
    }

    #[test]
    fn fanout_scatter_golden_timeline_and_per_site_anchors() {
        // 90 B striped over 3 device links of 10 B/s each: 3 s after the
        // 1 s producer compute, under either synchronisation policy.
        for join in [true, false] {
            let (dag, a, w, done) = fanout_dag();
            let mut sim = Simulation::new();
            let mut lowering = testbed(&mut sim);
            let mut policy = ScatterPolicy { sites: vec![2, 3, 4], join };
            let outcome =
                execute(&dag, &[], &mut policy, &mut lowering).expect("schedules cleanly");
            let tl = sim.run().expect("runs cleanly");
            assert_eq!(tl.finish_time(outcome.task(a).unwrap()).to_bits(), 1.0f64.to_bits());
            for site in [2, 3, 4] {
                let flow = outcome.at_site(w, site).expect("per-site write exists");
                assert_eq!(tl.finish_time(flow).to_bits(), 4.0f64.to_bits());
            }
            assert_eq!(
                tl.finish_time(outcome.task(done).unwrap()).to_bits(),
                4.0f64.to_bits(),
                "join={join}"
            );
        }
    }

    #[test]
    fn owner_routed_scatter_uses_only_the_chosen_sites() {
        let (dag, _a, w, _done) = fanout_dag();
        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let mut policy = ScatterPolicy { sites: vec![3], join: false };
        let outcome = execute(&dag, &[], &mut policy, &mut lowering).expect("schedules cleanly");
        let tl = sim.run().expect("runs cleanly");
        assert!(outcome.at_site(w, 2).is_none());
        assert!(outcome.at_site(w, 4).is_none());
        let flow = outcome.at_site(w, 3).expect("owner write exists");
        // All 90 B over one 10 B/s link: 9 s after the 1 s compute.
        assert_eq!(tl.finish_time(flow).to_bits(), 10.0f64.to_bits());
    }

    /// Defers every non-compute task until the stall sweep fires.
    struct DeferUntilFree {
        releases: usize,
    }

    impl Scheduler for DeferUntilFree {
        fn name(&self) -> &'static str {
            "defer-test"
        }

        fn on_task_ready(
            &mut self,
            task: DagTaskId,
            dag: &Dag,
            _system: &SystemView<'_>,
        ) -> Vec<Decision> {
            match dag.task(task).unwrap().work {
                DagWork::Compute { .. } => {
                    vec![Decision::Schedule(ScheduleDecision::new(task))]
                }
                _ => vec![Decision::Defer(task)],
            }
        }

        fn on_resource_free(
            &mut self,
            _site: usize,
            dag: &Dag,
            system: &SystemView<'_>,
        ) -> Vec<Decision> {
            // Release the first deferred-and-ready task.
            for idx in 0..dag.len() {
                let id = DagTaskId(idx);
                let ready = dag.predecessors(id).iter().all(|&p| system.is_scheduled(p));
                if !system.is_scheduled(id) && ready {
                    self.releases += 1;
                    return vec![Decision::Schedule(ScheduleDecision::new(id))];
                }
            }
            Vec::new()
        }
    }

    #[test]
    fn deferred_tasks_are_released_via_resource_free() {
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Compute { site: 0, amount: 2.0 });
        let out = dag.add_output(a, "a.out", 8.0, Some(0));
        let b = dag.add_task("b", DagWork::Transfer { from: 0, to: 1, bytes: 8.0 });
        dag.connect(b, out);

        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let mut policy = DeferUntilFree { releases: 0 };
        let outcome = execute(&dag, &[], &mut policy, &mut lowering).expect("schedules cleanly");
        assert_eq!(policy.releases, 1, "transfer released by the stall sweep");
        let tl = sim.run().expect("runs cleanly");
        assert_eq!(tl.finish_time(outcome.task(b).unwrap()).to_bits(), 3.0f64.to_bits());
    }

    /// Defers everything forever.
    struct Staller;

    impl Scheduler for Staller {
        fn name(&self) -> &'static str {
            "staller"
        }

        fn on_task_ready(
            &mut self,
            task: DagTaskId,
            _dag: &Dag,
            _system: &SystemView<'_>,
        ) -> Vec<Decision> {
            vec![Decision::Defer(task)]
        }
    }

    #[test]
    fn scheduler_that_never_releases_work_stalls_with_typed_error() {
        let mut dag = Dag::new();
        dag.add_task("a", DagWork::Compute { site: 0, amount: 1.0 });
        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let err = execute(&dag, &[], &mut Staller, &mut lowering).unwrap_err();
        assert_eq!(err, SimError::SchedulerStalled { pending_tasks: vec![0] });
    }

    /// Schedules the same task twice.
    struct DoubleScheduler;

    impl Scheduler for DoubleScheduler {
        fn name(&self) -> &'static str {
            "double"
        }

        fn on_task_ready(
            &mut self,
            task: DagTaskId,
            _dag: &Dag,
            _system: &SystemView<'_>,
        ) -> Vec<Decision> {
            vec![
                Decision::Schedule(ScheduleDecision::new(task)),
                Decision::Schedule(ScheduleDecision::new(task)),
            ]
        }
    }

    #[test]
    fn double_scheduling_is_rejected() {
        let mut dag = Dag::new();
        dag.add_task("a", DagWork::Compute { site: 0, amount: 1.0 });
        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let err = execute(&dag, &[], &mut DoubleScheduler, &mut lowering).unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }), "got {err:?}");
    }

    #[test]
    fn storage_transfer_without_scatter_plan_is_rejected() {
        let mut dag = Dag::new();
        let t = dag.add_task("w", DagWork::Transfer { from: 0, to: SITE_STORAGE, bytes: 8.0 });
        let _ = t;
        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let err = execute(&dag, &[], &mut FifoScheduler, &mut lowering).unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }), "got {err:?}");
    }

    #[test]
    fn poisoned_dag_fails_before_scheduling() {
        let mut dag = Dag::new();
        let a = dag.add_task("a", DagWork::Join);
        dag.connect(a, DataId(9));
        let mut sim = Simulation::new();
        let mut lowering = testbed(&mut sim);
        let err = execute(&dag, &[], &mut FifoScheduler, &mut lowering).unwrap_err();
        assert!(matches!(err, SimError::UnknownId { kind: "data item", index: 9 }));
    }
}
