//! The discrete-event engine: builds the task DAG and executes it over the
//! registered links and resources.

use crate::error::SimError;
use crate::task::{
    ComputeSpec, DelaySpec, FlowSpec, LinkId, PhaseId, ResourceId, Task, TaskId, TaskKind,
};
use crate::timeline::{TaskRecord, Timeline};
use crate::TIME_EPS;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct Link {
    #[allow(dead_code)]
    name: String,
    bandwidth: f64,
}

#[derive(Debug, Clone)]
struct Resource {
    #[allow(dead_code)]
    name: String,
    rate: f64,
}

/// State of one task during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Waiting for dependencies.
    Pending,
    /// Dependencies satisfied; waiting in a resource queue (compute only).
    Queued,
    /// Currently progressing.
    Active,
    /// Finished.
    Done,
}

/// A discrete-event simulation: links, resources, phases and a task DAG.
///
/// Malformed graphs — non-positive link bandwidths, unknown dependency or
/// link or resource ids, negative work amounts — do not panic. The first
/// such error *poisons* the simulation and is returned by
/// [`Simulation::run`]; the builder methods stay infallible so that id
/// allocation remains consistent even after an error.
///
/// See the [crate-level documentation](crate) for an overview and an example.
#[derive(Debug, Default)]
pub struct Simulation {
    links: Vec<Link>,
    resources: Vec<Resource>,
    phases: Vec<String>,
    tasks: Vec<Task>,
    poison: Option<SimError>,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    fn poison(&mut self, err: SimError) {
        if self.poison.is_none() {
            self.poison = Some(err);
        }
    }

    /// Registers a shared link with the given bandwidth in bytes per second.
    ///
    /// A non-positive or non-finite bandwidth poisons the simulation; the
    /// error is reported by [`Simulation::run`].
    pub fn add_link(&mut self, name: impl Into<String>, bandwidth: f64) -> LinkId {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            self.poison(SimError::InvalidParameter {
                message: format!("link bandwidth must be positive and finite, got {bandwidth}"),
            });
        }
        self.links.push(Link { name: name.into(), bandwidth });
        LinkId(self.links.len() - 1)
    }

    /// Registers a serial compute resource with the given processing rate
    /// (work units per second).
    ///
    /// A non-positive or non-finite rate poisons the simulation; the error
    /// is reported by [`Simulation::run`].
    pub fn add_resource(&mut self, name: impl Into<String>, rate: f64) -> ResourceId {
        if !(rate.is_finite() && rate > 0.0) {
            self.poison(SimError::InvalidParameter {
                message: format!("resource rate must be positive and finite, got {rate}"),
            });
        }
        self.resources.push(Resource { name: name.into(), rate });
        ResourceId(self.resources.len() - 1)
    }

    /// Registers a named phase used for breakdown reporting.
    pub fn add_phase(&mut self, name: impl Into<String>) -> PhaseId {
        self.phases.push(name.into());
        PhaseId(self.phases.len() - 1)
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of links registered so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Bandwidth of a link in bytes per second.
    pub fn link_bandwidth(&self, link: LinkId) -> f64 {
        self.links[link.0].bandwidth
    }

    /// The label attached to a task, if any (useful when debugging schedules).
    pub fn task_label(&self, task: TaskId) -> Option<&str> {
        self.tasks.get(task).and_then(|t| t.label.as_deref())
    }

    /// Adds a flow task (bytes over a path of shared links).
    ///
    /// Referencing an unknown link or dependency, or a negative byte count,
    /// poisons the simulation; the error is reported by [`Simulation::run`].
    pub fn flow(&mut self, spec: FlowSpec) -> TaskId {
        if !(spec.bytes >= 0.0 && spec.bytes.is_finite()) {
            self.poison(SimError::InvalidParameter {
                message: format!("flow bytes must be non-negative, got {}", spec.bytes),
            });
        }
        for l in &spec.path {
            if l.0 >= self.links.len() {
                self.poison(SimError::UnknownId { kind: "link", index: l.0 });
            }
        }
        self.validate_deps(&spec.deps);
        self.push(Task {
            kind: TaskKind::Flow { path: spec.path, bytes: spec.bytes },
            deps: spec.deps,
            phase: spec.phase,
            label: spec.label,
        })
    }

    /// Adds a compute task (work units on a serial resource).
    ///
    /// Referencing an unknown resource or dependency, or a negative work
    /// amount, poisons the simulation; the error is reported by
    /// [`Simulation::run`].
    pub fn compute(&mut self, spec: ComputeSpec) -> TaskId {
        if !(spec.work >= 0.0 && spec.work.is_finite()) {
            self.poison(SimError::InvalidParameter {
                message: format!("compute work must be non-negative, got {}", spec.work),
            });
        }
        if spec.resource.0 >= self.resources.len() {
            self.poison(SimError::UnknownId { kind: "resource", index: spec.resource.0 });
        }
        self.validate_deps(&spec.deps);
        self.push(Task {
            kind: TaskKind::Compute { resource: spec.resource, work: spec.work },
            deps: spec.deps,
            phase: spec.phase,
            label: spec.label,
        })
    }

    /// Adds a fixed delay task.
    ///
    /// A negative delay or unknown dependency poisons the simulation; the
    /// error is reported by [`Simulation::run`].
    pub fn delay(&mut self, spec: DelaySpec) -> TaskId {
        if !(spec.seconds >= 0.0 && spec.seconds.is_finite()) {
            self.poison(SimError::InvalidParameter {
                message: format!("delay must be non-negative, got {}", spec.seconds),
            });
        }
        self.validate_deps(&spec.deps);
        self.push(Task {
            kind: TaskKind::Delay { seconds: spec.seconds },
            deps: spec.deps,
            phase: spec.phase,
            label: spec.label,
        })
    }

    /// Adds a zero-duration barrier that completes when all `deps` have completed.
    ///
    /// An unknown dependency id poisons the simulation; the error is
    /// reported by [`Simulation::run`].
    pub fn barrier(&mut self, deps: &[TaskId]) -> TaskId {
        self.validate_deps(deps);
        self.push(Task { kind: TaskKind::Barrier, deps: deps.to_vec(), phase: None, label: None })
    }

    /// Adds an extra dependency edge `dependency -> task` after both tasks
    /// have been created.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] if either id is out of range. Cycles
    /// created this way are detected when [`Simulation::run`] executes.
    pub fn add_dependency(&mut self, task: TaskId, dependency: TaskId) -> Result<(), SimError> {
        if task >= self.tasks.len() {
            return Err(SimError::UnknownId { kind: "task", index: task });
        }
        if dependency >= self.tasks.len() {
            return Err(SimError::UnknownId { kind: "task", index: dependency });
        }
        self.tasks[task].deps.push(dependency);
        Ok(())
    }

    fn validate_deps(&mut self, deps: &[TaskId]) {
        for &d in deps {
            if d >= self.tasks.len() {
                self.poison(SimError::UnknownId { kind: "task", index: d });
            }
        }
    }

    fn push(&mut self, task: Task) -> TaskId {
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Executes the task DAG and returns the resulting timeline.
    ///
    /// # Errors
    ///
    /// Returns the first error recorded while building the graph (an
    /// [`SimError::InvalidParameter`] or [`SimError::UnknownId`]), or
    /// [`SimError::DependencyCycle`] if some tasks can never become ready
    /// (their dependencies form a cycle).
    pub fn run(&mut self) -> Result<Timeline, SimError> {
        if let Some(err) = &self.poison {
            return Err(err.clone());
        }
        Runner::new(self).run()
    }
}

/// Remaining-work bookkeeping for one task during execution.
#[derive(Debug, Clone)]
struct Progress {
    state: TaskState,
    remaining: f64,
    unmet_deps: usize,
    start: f64,
    finish: f64,
}

struct Runner<'a> {
    sim: &'a Simulation,
    progress: Vec<Progress>,
    dependents: Vec<Vec<TaskId>>,
    queues: Vec<VecDeque<TaskId>>,
    active_flows: Vec<TaskId>,
    active_compute: Vec<TaskId>,
    active_delays: Vec<TaskId>,
    now: f64,
    done: usize,
}

impl<'a> Runner<'a> {
    fn new(sim: &'a Simulation) -> Self {
        let n = sim.tasks.len();
        let mut dependents = vec![Vec::new(); n];
        let mut progress = Vec::with_capacity(n);
        for (id, task) in sim.tasks.iter().enumerate() {
            for &d in &task.deps {
                dependents[d].push(id);
            }
            let remaining = match &task.kind {
                TaskKind::Flow { bytes, .. } => *bytes,
                TaskKind::Compute { work, .. } => *work,
                TaskKind::Delay { seconds } => *seconds,
                TaskKind::Barrier => 0.0,
            };
            progress.push(Progress {
                state: TaskState::Pending,
                remaining,
                unmet_deps: task.deps.len(),
                start: 0.0,
                finish: 0.0,
            });
        }
        Self {
            sim,
            progress,
            dependents,
            queues: vec![VecDeque::new(); sim.resources.len()],
            active_flows: Vec::new(),
            active_compute: Vec::new(),
            active_delays: Vec::new(),
            now: 0.0,
            done: 0,
        }
    }

    fn run(mut self) -> Result<Timeline, SimError> {
        // Start every task with no dependencies.
        let mut newly_ready: VecDeque<TaskId> =
            (0..self.sim.tasks.len()).filter(|&id| self.progress[id].unmet_deps == 0).collect();
        loop {
            // Make ready tasks runnable (may complete zero-work tasks immediately).
            while let Some(id) = newly_ready.pop_front() {
                let completed = self.activate(id);
                for c in completed {
                    newly_ready.extend(self.complete(c));
                }
            }
            if self.done == self.sim.tasks.len() {
                break;
            }
            // Compute rates, find the next completion, advance time.
            let step = self.next_step();
            let Some(dt) = step else {
                let stuck: Vec<usize> = self
                    .progress
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.state != TaskState::Done)
                    .map(|(i, _)| i)
                    .collect();
                return Err(SimError::DependencyCycle { stuck_tasks: stuck });
            };
            self.advance(dt, &mut newly_ready);
        }
        let records = self
            .progress
            .iter()
            .zip(self.sim.tasks.iter())
            .map(|(p, t)| TaskRecord { start: p.start, finish: p.finish, phase: t.phase })
            .collect();
        // Per-link flow membership, so the timeline can answer stage-level
        // occupancy queries (which flows kept a link busy, and when).
        let mut link_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); self.sim.links.len()];
        for (id, task) in self.sim.tasks.iter().enumerate() {
            if let TaskKind::Flow { path, bytes } = &task.kind {
                if *bytes > 0.0 {
                    for l in path {
                        link_tasks[l.0].push(id);
                    }
                }
            }
        }
        Ok(Timeline::new(records, self.now, self.sim.phases.clone(), link_tasks))
    }

    /// Moves a ready task into the running state. Returns tasks that complete
    /// instantly (barriers, zero-byte flows, zero-work computes).
    fn activate(&mut self, id: TaskId) -> Vec<TaskId> {
        let task = &self.sim.tasks[id];
        self.progress[id].start = self.now;
        match &task.kind {
            TaskKind::Barrier => {
                return vec![id];
            }
            TaskKind::Flow { bytes, .. } => {
                if *bytes <= 0.0 {
                    return vec![id];
                }
                self.progress[id].state = TaskState::Active;
                self.active_flows.push(id);
            }
            TaskKind::Delay { seconds } => {
                if *seconds <= 0.0 {
                    return vec![id];
                }
                self.progress[id].state = TaskState::Active;
                self.active_delays.push(id);
            }
            TaskKind::Compute { resource, work } => {
                if *work <= 0.0 {
                    return vec![id];
                }
                self.progress[id].state = TaskState::Queued;
                let q = &mut self.queues[resource.0];
                q.push_back(id);
                // Head of queue becomes active.
                if q.len() == 1 {
                    self.progress[id].state = TaskState::Active;
                    self.active_compute.push(id);
                }
            }
        }
        Vec::new()
    }

    /// Marks a task done and returns the dependents that became ready.
    fn complete(&mut self, id: TaskId) -> Vec<TaskId> {
        self.progress[id].state = TaskState::Done;
        self.progress[id].finish = self.now;
        self.done += 1;
        // If it was a compute task, promote the next task in the queue.
        if let TaskKind::Compute { resource, .. } = &self.sim.tasks[id].kind {
            let q = &mut self.queues[resource.0];
            if q.front() == Some(&id) {
                q.pop_front();
            } else {
                q.retain(|&t| t != id);
            }
            if let Some(&next) = q.front() {
                if self.progress[next].state == TaskState::Queued {
                    self.progress[next].state = TaskState::Active;
                    self.progress[next].start = self.now;
                    self.active_compute.push(next);
                }
            }
        }
        let mut ready = Vec::new();
        for &dep in &self.dependents[id] {
            let p = &mut self.progress[dep];
            p.unmet_deps -= 1;
            if p.unmet_deps == 0 {
                ready.push(dep);
            }
        }
        ready
    }

    /// Max-min fair rate allocation for the currently active flows.
    fn flow_rates(&self) -> Vec<(TaskId, f64)> {
        let mut remaining_cap: Vec<f64> = self.sim.links.iter().map(|l| l.bandwidth).collect();
        let mut link_users: Vec<Vec<usize>> = vec![Vec::new(); self.sim.links.len()];
        // Index into active_flows.
        for (fi, &task) in self.active_flows.iter().enumerate() {
            if let TaskKind::Flow { path, .. } = &self.sim.tasks[task].kind {
                for l in path {
                    link_users[l.0].push(fi);
                }
            }
        }
        let n = self.active_flows.len();
        let mut rate = vec![f64::INFINITY; n];
        let mut frozen = vec![false; n];
        let mut unfrozen_on_link: Vec<usize> = link_users.iter().map(|users| users.len()).collect();
        loop {
            // Find the bottleneck link: smallest fair share among links with unfrozen users.
            let mut best: Option<(usize, f64)> = None;
            for (li, users) in link_users.iter().enumerate() {
                if users.is_empty() || unfrozen_on_link[li] == 0 {
                    continue;
                }
                let share = remaining_cap[li] / unfrozen_on_link[li] as f64;
                if best.map_or(true, |(_, s)| share < s) {
                    best = Some((li, share));
                }
            }
            let Some((bottleneck, share)) = best else { break };
            // Freeze every unfrozen flow on that link at the fair share.
            let users: Vec<usize> =
                link_users[bottleneck].iter().copied().filter(|&fi| !frozen[fi]).collect();
            for fi in users {
                frozen[fi] = true;
                rate[fi] = share;
                // Subtract its rate from every link it crosses.
                if let TaskKind::Flow { path, .. } = &self.sim.tasks[self.active_flows[fi]].kind {
                    for l in path {
                        remaining_cap[l.0] = (remaining_cap[l.0] - share).max(0.0);
                        unfrozen_on_link[l.0] = unfrozen_on_link[l.0].saturating_sub(1);
                    }
                }
            }
        }
        self.active_flows
            .iter()
            .enumerate()
            .map(|(fi, &task)| {
                let r = if rate[fi].is_finite() { rate[fi] } else { 0.0 };
                (task, r)
            })
            .collect()
    }

    /// Returns the time until the next task completion, or `None` if nothing
    /// is active (deadlock if tasks remain).
    fn next_step(&self) -> Option<f64> {
        let mut dt = f64::INFINITY;
        for (task, rate) in self.flow_rates() {
            if rate > 0.0 {
                dt = dt.min(self.progress[task].remaining / rate);
            }
        }
        for &task in &self.active_compute {
            if let TaskKind::Compute { resource, .. } = &self.sim.tasks[task].kind {
                let rate = self.sim.resources[resource.0].rate;
                dt = dt.min(self.progress[task].remaining / rate);
            }
        }
        for &task in &self.active_delays {
            dt = dt.min(self.progress[task].remaining);
        }
        if dt.is_finite() {
            Some(dt)
        } else {
            None
        }
    }

    /// Advances virtual time by `dt`, decrements remaining work and collects
    /// completions into `newly_ready`.
    fn advance(&mut self, dt: f64, newly_ready: &mut VecDeque<TaskId>) {
        self.now += dt;
        let rates = self.flow_rates();
        let mut completed = Vec::new();
        for (task, rate) in rates {
            let p = &mut self.progress[task];
            p.remaining -= rate * dt;
            if p.remaining <= TIME_EPS * rate.max(1.0) {
                completed.push(task);
            }
        }
        for &task in &self.active_compute.clone() {
            if let TaskKind::Compute { resource, .. } = &self.sim.tasks[task].kind {
                let rate = self.sim.resources[resource.0].rate;
                let p = &mut self.progress[task];
                p.remaining -= rate * dt;
                if p.remaining <= TIME_EPS * rate.max(1.0) {
                    completed.push(task);
                }
            }
        }
        for &task in &self.active_delays.clone() {
            let p = &mut self.progress[task];
            p.remaining -= dt;
            if p.remaining <= TIME_EPS {
                completed.push(task);
            }
        }
        for task in &completed {
            self.active_flows.retain(|t| t != task);
            self.active_compute.retain(|t| t != task);
            self.active_delays.retain(|t| t != task);
        }
        for task in completed {
            newly_ready.extend(self.complete(task));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputeSpec, FlowSpec};

    #[test]
    fn max_min_fairness_respects_bottleneck_links() {
        // Two links: A (10 B/s) and B (4 B/s). Flow 1 uses A only, flow 2 uses A+B.
        // Flow 2 is bottlenecked at 4 on B, flow 1 then takes the remaining 6 on A.
        let mut sim = Simulation::new();
        let a = sim.add_link("a", 10.0);
        let b = sim.add_link("b", 4.0);
        let f1 = sim.flow(FlowSpec::new(vec![a], 60.0));
        let f2 = sim.flow(FlowSpec::new(vec![a, b], 40.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(f1) - 10.0).abs() < 1e-6, "got {}", tl.finish_time(f1));
        assert!((tl.finish_time(f2) - 10.0).abs() < 1e-6, "got {}", tl.finish_time(f2));
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", 1.0);
        let f = sim.flow(FlowSpec::new(vec![l], 0.0));
        let tl = sim.run().unwrap();
        assert_eq!(tl.finish_time(f), 0.0);
    }

    #[test]
    fn compute_queue_promotes_in_fifo_order() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("fpga", 2.0);
        let a = sim.compute(ComputeSpec::new(r, 4.0));
        let b = sim.compute(ComputeSpec::new(r, 4.0));
        let c = sim.compute(ComputeSpec::new(r, 4.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(a) - 2.0).abs() < 1e-9);
        assert!((tl.finish_time(b) - 4.0).abs() < 1e-9);
        assert!((tl.finish_time(c) - 6.0).abs() < 1e-9);
        assert!(tl.start_time(b) >= tl.finish_time(a) - 1e-9);
    }

    #[test]
    fn flows_on_disjoint_links_do_not_interfere() {
        let mut sim = Simulation::new();
        let a = sim.add_link("a", 10.0);
        let b = sim.add_link("b", 10.0);
        let f1 = sim.flow(FlowSpec::new(vec![a], 100.0));
        let f2 = sim.flow(FlowSpec::new(vec![b], 100.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(f1) - 10.0).abs() < 1e-9);
        assert!((tl.finish_time(f2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_bandwidth_scales_with_parallel_links_until_shared_cap() {
        // Model of the RAID0 saturation effect: N private SSD links of 3 B/s
        // all funnel through one shared link of 10 B/s.
        let total_bytes = 300.0;
        let mut finish_times = Vec::new();
        for n in 1..=6usize {
            let mut sim = Simulation::new();
            let shared = sim.add_link("pcie", 10.0);
            let mut tasks = Vec::new();
            for i in 0..n {
                let ssd = sim.add_link(format!("ssd{i}"), 3.0);
                tasks.push(sim.flow(FlowSpec::new(vec![shared, ssd], total_bytes / n as f64)));
            }
            let tl = sim.run().unwrap();
            finish_times.push(tl.makespan());
        }
        // 1 SSD: 100s, 2: 50s, 3: 33.3s, 4+: capped by shared link at 30s.
        assert!((finish_times[0] - 100.0).abs() < 1e-6);
        assert!((finish_times[1] - 50.0).abs() < 1e-6);
        assert!((finish_times[3] - 30.0).abs() < 1e-6);
        assert!((finish_times[5] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn timeline_reports_link_occupancy_from_real_flows() {
        let mut sim = Simulation::new();
        let shared = sim.add_link("shared", 10.0);
        let private = sim.add_link("private", 10.0);
        let write = sim.add_phase("write");
        let readback = sim.add_phase("readback");
        let a = sim.flow(FlowSpec::new(vec![shared], 100.0).phase(write));
        let b = sim.flow(FlowSpec::new(vec![shared, private], 100.0).after(&[a]).phase(readback));
        // Zero-byte flows finish instantly and must not pollute occupancy.
        sim.flow(FlowSpec::new(vec![shared], 0.0).phase(write));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(b) - 20.0).abs() < 1e-9);
        assert!((tl.link_busy_time(shared) - 20.0).abs() < 1e-9);
        assert!((tl.link_busy_time_in_phase(shared, write) - 10.0).abs() < 1e-9);
        assert!((tl.link_busy_time_in_phase(shared, readback) - 10.0).abs() < 1e-9);
        assert!((tl.link_busy_time(private) - 10.0).abs() < 1e-9);
        assert_eq!(tl.link_busy_time_in_phase(private, write), 0.0);
    }

    #[test]
    fn task_labels_are_retrievable() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", 1.0);
        let a = sim.flow(FlowSpec::new(vec![l], 1.0).label("grad offload"));
        let b = sim.flow(FlowSpec::new(vec![l], 1.0));
        assert_eq!(sim.task_label(a), Some("grad offload"));
        assert_eq!(sim.task_label(b), None);
        assert_eq!(sim.task_label(999), None);
    }

    #[test]
    fn add_dependency_rejects_unknown_ids() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", 1.0);
        let a = sim.compute(ComputeSpec::new(r, 1.0));
        assert!(sim.add_dependency(a, 99).is_err());
        assert!(sim.add_dependency(99, a).is_err());
        assert_eq!(sim.task_count(), 1);
        assert_eq!(sim.link_count(), 0);
    }

    #[test]
    fn zero_bandwidth_link_is_a_typed_error() {
        let mut sim = Simulation::new();
        let l = sim.add_link("bad", 0.0);
        // Id allocation stays consistent even after the error.
        sim.flow(FlowSpec::new(vec![l], 1.0));
        let err = sim.run().unwrap_err();
        match err {
            SimError::InvalidParameter { message } => {
                assert!(message.contains("bandwidth must be positive"), "got: {message}");
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn unknown_dependency_is_a_typed_error() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", 1.0);
        sim.flow(FlowSpec::new(vec![l], 1.0).after(&[42]));
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::UnknownId { kind: "task", index: 42 });
    }

    #[test]
    fn unknown_link_in_flow_path_is_a_typed_error() {
        let mut sim = Simulation::new();
        sim.flow(FlowSpec::new(vec![LinkId(3)], 1.0));
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::UnknownId { kind: "link", index: 3 });
    }

    #[test]
    fn first_poison_error_wins() {
        let mut sim = Simulation::new();
        sim.add_link("bad", f64::NAN);
        sim.flow(FlowSpec::new(vec![LinkId(9)], -1.0));
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }), "got {err:?}");
    }
}
