//! Error type for the simulation kernel.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task references a dependency, link, resource or phase that does not exist.
    UnknownId {
        /// Which kind of identifier was invalid ("task", "link", "resource", "phase").
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
    /// The dependency graph contains a cycle; the listed tasks could never start.
    DependencyCycle {
        /// Tasks left pending when the simulation ran out of runnable work.
        stuck_tasks: Vec<usize>,
    },
    /// A task parameter was invalid (negative bytes, non-positive bandwidth, ...).
    InvalidParameter {
        /// Description of the invalid parameter.
        message: String,
    },
    /// A DAG scheduler stopped making progress with tasks still unscheduled
    /// (it deferred work and never released it).
    SchedulerStalled {
        /// DAG tasks left unscheduled when the executor gave up.
        pending_tasks: Vec<usize>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownId { kind, index } => {
                write!(f, "unknown {kind} id {index}")
            }
            SimError::DependencyCycle { stuck_tasks } => {
                write!(f, "dependency cycle: {} task(s) can never start", stuck_tasks.len())
            }
            SimError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            SimError::SchedulerStalled { pending_tasks } => {
                write!(f, "scheduler stalled: {} task(s) left unscheduled", pending_tasks.len())
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = SimError::UnknownId { kind: "link", index: 3 };
        assert_eq!(e.to_string(), "unknown link id 3");
        let e = SimError::DependencyCycle { stuck_tasks: vec![1, 2] };
        assert!(e.to_string().contains("2 task(s)"));
        let e = SimError::InvalidParameter { message: "negative bytes".into() };
        assert!(e.to_string().contains("negative bytes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
