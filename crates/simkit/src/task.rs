//! Task, link, resource and phase identifiers plus the task specification
//! builders used to populate a [`crate::Simulation`].

use serde::{Deserialize, Serialize};

/// Identifier of a task inside one [`crate::Simulation`].
pub type TaskId = usize;

/// Identifier of a shared-bandwidth link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Returns the raw index of the link within its simulation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a serial compute resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// Returns the raw index of the resource within its simulation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a phase label used for timeline breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhaseId(pub(crate) usize);

impl PhaseId {
    /// Returns the raw index of the phase within its simulation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a task does while it is active.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Moves `bytes` across every link of `path` simultaneously; the rate is
    /// the max-min fair share of the most contended link on the path.
    Flow {
        /// Links traversed by the flow. Order is irrelevant.
        path: Vec<LinkId>,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// Performs `work` units of computation on a serial resource.
    Compute {
        /// The resource the task runs on (FIFO order).
        resource: ResourceId,
        /// Work amount, in the resource's rate unit (e.g. FLOPs or bytes).
        work: f64,
    },
    /// Waits a fixed amount of virtual time.
    Delay {
        /// Duration in seconds.
        seconds: f64,
    },
    /// Completes instantly once all dependencies have completed.
    Barrier,
}

/// Specification of a bandwidth-sharing flow task.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    pub(crate) path: Vec<LinkId>,
    pub(crate) bytes: f64,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) phase: Option<PhaseId>,
    pub(crate) label: Option<String>,
}

impl FlowSpec {
    /// Creates a flow moving `bytes` across the given link path.
    ///
    /// A zero-byte flow completes instantly (after its dependencies).
    pub fn new(path: Vec<LinkId>, bytes: f64) -> Self {
        Self { path, bytes, deps: Vec::new(), phase: None, label: None }
    }

    /// Adds dependencies that must complete before the flow starts.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }

    /// Tags the flow with a phase for breakdown reporting.
    pub fn phase(mut self, phase: PhaseId) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Attaches a human-readable label (shown in debugging dumps).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Specification of a serial compute task.
#[derive(Debug, Clone)]
pub struct ComputeSpec {
    pub(crate) resource: ResourceId,
    pub(crate) work: f64,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) phase: Option<PhaseId>,
    pub(crate) label: Option<String>,
}

impl ComputeSpec {
    /// Creates a compute task performing `work` units on `resource`.
    pub fn new(resource: ResourceId, work: f64) -> Self {
        Self { resource, work, deps: Vec::new(), phase: None, label: None }
    }

    /// Adds dependencies that must complete before the task is enqueued.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }

    /// Tags the task with a phase for breakdown reporting.
    pub fn phase(mut self, phase: PhaseId) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Attaches a human-readable label (shown in debugging dumps).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Specification of a fixed virtual-time delay.
#[derive(Debug, Clone)]
pub struct DelaySpec {
    pub(crate) seconds: f64,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) phase: Option<PhaseId>,
    pub(crate) label: Option<String>,
}

impl DelaySpec {
    /// Creates a delay of `seconds` virtual seconds.
    pub fn new(seconds: f64) -> Self {
        Self { seconds, deps: Vec::new(), phase: None, label: None }
    }

    /// Adds dependencies that must complete before the delay starts.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }

    /// Tags the delay with a phase for breakdown reporting.
    pub fn phase(mut self, phase: PhaseId) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Attaches a human-readable label (shown in debugging dumps).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Internal task representation stored by the simulation.
#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub(crate) kind: TaskKind,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) phase: Option<PhaseId>,
    pub(crate) label: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_spec_builder_collects_fields() {
        let spec = FlowSpec::new(vec![LinkId(0), LinkId(3)], 42.0)
            .after(&[1, 2])
            .phase(PhaseId(7))
            .label("grad offload");
        assert_eq!(spec.path, vec![LinkId(0), LinkId(3)]);
        assert_eq!(spec.bytes, 42.0);
        assert_eq!(spec.deps, vec![1, 2]);
        assert_eq!(spec.phase, Some(PhaseId(7)));
        assert_eq!(spec.label.as_deref(), Some("grad offload"));
    }

    #[test]
    fn compute_spec_builder_collects_fields() {
        let spec = ComputeSpec::new(ResourceId(2), 1e9).after(&[0]).phase(PhaseId(1));
        assert_eq!(spec.resource, ResourceId(2));
        assert_eq!(spec.work, 1e9);
        assert_eq!(spec.deps, vec![0]);
        assert_eq!(spec.phase, Some(PhaseId(1)));
    }

    #[test]
    fn ids_expose_indices() {
        assert_eq!(LinkId(5).index(), 5);
        assert_eq!(ResourceId(6).index(), 6);
        assert_eq!(PhaseId(7).index(), 7);
    }
}
