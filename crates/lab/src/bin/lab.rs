//! The `lab` CLI: plan, run, resume, shard, merge, and analyze experiments
//! under the harness contract.
//!
//! ```text
//! cargo run -p lab --bin lab -- run --experiment specs/experiments/mini --out results/mini
//! cargo run -p lab --bin lab -- run --experiment specs/experiments/mini --out results/mini --halt-after 4
//! cargo run -p lab --bin lab -- run --experiment specs/experiments/mini --out shard0 --shard 0/3
//! cargo run -p lab --bin lab -- plan --experiment specs/experiments/mini
//! cargo run -p lab --bin lab -- harness task.json result.json
//! cargo run -p lab --bin lab -- merge --out merged.jsonl shard0/trials.jsonl shard1/trials.jsonl
//! cargo run -p lab --bin lab -- analyze --experiment specs/experiments/mini --journal merged.jsonl --out results/merged
//! cargo run -p lab --bin lab -- validate specs/experiments/mini specs/experiments/ladder
//! ```

use lab::{
    analysis_tables, merge_journal_lines, plan_trials, read_journal, run_experiment,
    runner::{load_tasks, resolve_trial_spec},
    ExperimentPaths, LabError, RunOptions, ServiceExecutor, Shard,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: lab <command> [options]

commands:
  run      --experiment <file|dir> --out <dir> [--shard i/N] [--halt-after N] [--threads N]
           plan the trial matrix, execute un-journaled trials through the
           campaign service, append results to <out>/trials.jsonl, and (when
           the journal covers the full plan) write <out>/analysis/*.jsonl
  plan     --experiment <file|dir> [--shard i/N]
           print the deterministic trial plan without executing anything
  harness  <task.json> <result.json>
           the built-in harness: read one task, write one result document
  merge    --out <file> <trials.jsonl> [trials.jsonl ...]
           union shard journals into one canonically sorted journal
  analyze  --experiment <file|dir> --journal <trials.jsonl> --out <dir>
           recompute the analysis tables from an existing (merged) journal
  validate <file|dir> [...]
           plan each experiment and resolve every trial's effective spec
           (the CI guard for checked-in specs/experiments/)

The experiment argument is an experiment.json / experiment.yaml file or a
directory containing one.";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn fail(error: &LabError) -> ExitCode {
    eprintln!("lab: {error}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some((command, rest)) = args.split_first() else {
        return usage_error("lab: no command given");
    };
    match command.as_str() {
        "run" => cmd_run(rest),
        "plan" => cmd_plan(rest),
        "harness" => cmd_harness(rest),
        "merge" => cmd_merge(rest),
        "analyze" => cmd_analyze(rest),
        "validate" => cmd_validate(rest),
        other => usage_error(&format!("lab: unknown command `{other}`")),
    }
}

/// `--flag value` pairs, in occurrence order (last one wins in [`option`]).
type Options = Vec<(String, String)>;

/// Collects `--flag value` options and positional arguments; `flags` lists
/// the recognized value-taking flags.
fn parse_args(args: &[String], flags: &[&str]) -> Result<(Options, Vec<String>), String> {
    let mut options = Vec::new();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(flag) = flags.iter().find(|f| *f == arg) {
            let value = iter.next().ok_or_else(|| format!("{flag} requires an argument"))?;
            options.push((flag.to_string(), value.clone()));
        } else if arg.starts_with('-') {
            return Err(format!("unknown option `{arg}`"));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((options, positional))
}

fn option<'a>(options: &'a [(String, String)], flag: &str) -> Option<&'a str> {
    options.iter().rev().find(|(f, _)| f == flag).map(|(_, v)| v.as_str())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (options, positional) = match parse_args(
        args,
        &["--experiment", "--out", "--shard", "--halt-after", "--threads"],
    ) {
        Ok(parsed) => parsed,
        Err(e) => return usage_error(&format!("lab run: {e}")),
    };
    if !positional.is_empty() {
        return usage_error(&format!("lab run: unexpected argument `{}`", positional[0]));
    }
    let Some(experiment) = option(&options, "--experiment") else {
        return usage_error("lab run: --experiment is required");
    };
    let Some(out) = option(&options, "--out") else {
        return usage_error("lab run: --out is required");
    };
    let shard = match option(&options, "--shard").map(Shard::parse).transpose() {
        Ok(shard) => shard,
        Err(e) => return usage_error(&format!("lab run: {e}")),
    };
    let halt_after = match option(&options, "--halt-after").map(str::parse::<usize>).transpose() {
        Ok(halt_after) => halt_after,
        Err(_) => return usage_error("lab run: --halt-after requires an integer"),
    };
    let threads = match option(&options, "--threads").map(str::parse::<usize>).transpose() {
        Ok(threads) => threads.unwrap_or(2),
        Err(_) => return usage_error("lab run: --threads requires an integer"),
    };
    let mut executor = ServiceExecutor::new(threads);
    let run_options = RunOptions { shard, halt_after };
    let summary =
        match run_experiment(Path::new(experiment), Path::new(out), &run_options, &mut executor) {
            Ok(summary) => summary,
            Err(e) => return fail(&e),
        };
    for warning in &summary.warnings {
        eprintln!("lab: warning: {warning}");
    }
    match shard {
        Some(shard) => {
            println!("planned {} trial(s), {} in shard {shard}", summary.planned, summary.in_scope)
        }
        None => println!("planned {} trial(s)", summary.planned),
    }
    println!("{} already journaled, executed {} trial(s)", summary.journaled, summary.executed);
    if summary.errors > 0 {
        println!("{} trial(s) recorded an error outcome", summary.errors);
    }
    let report = executor.report();
    println!(
        "service: {} execution(s), cache hit rate {:.0}%, queue depth {}",
        report.executed,
        100.0 * report.cache_hit_rate(),
        report.queue_depth
    );
    if summary.halted {
        println!(
            "halted after {} executed trial(s); re-run the same command to resume",
            summary.executed
        );
    }
    if summary.analysis_written {
        println!("analysis written to {}", Path::new(out).join("analysis").display());
    } else if !summary.halted {
        println!(
            "analysis skipped (journal covers {} of {} planned trial(s); merge shards first)",
            summary.journaled + summary.executed,
            summary.planned
        );
    }
    ExitCode::SUCCESS
}

fn cmd_plan(args: &[String]) -> ExitCode {
    let (options, positional) = match parse_args(args, &["--experiment", "--shard"]) {
        Ok(parsed) => parsed,
        Err(e) => return usage_error(&format!("lab plan: {e}")),
    };
    if !positional.is_empty() {
        return usage_error(&format!("lab plan: unexpected argument `{}`", positional[0]));
    }
    let Some(experiment) = option(&options, "--experiment") else {
        return usage_error("lab plan: --experiment is required");
    };
    let shard = match option(&options, "--shard").map(Shard::parse).transpose() {
        Ok(shard) => shard,
        Err(e) => return usage_error(&format!("lab plan: {e}")),
    };
    let (paths, config) = match ExperimentPaths::resolve(Path::new(experiment)) {
        Ok(resolved) => resolved,
        Err(e) => return fail(&e),
    };
    let tasks = match load_tasks(&paths.tasks) {
        Ok(tasks) => tasks,
        Err(e) => return fail(&e),
    };
    let plan = plan_trials(&tasks, &config);
    println!(
        "{:>5}  {:<16}  {:<24} {:<16} {:>6}",
        "index", "trial_id", "task", "variant", "repeat"
    );
    for trial in &plan {
        if shard.map_or(true, |s| s.owns(trial.index)) {
            println!(
                "{:>5}  {:<16}  {:<24} {:<16} {:>6}",
                trial.index, trial.trial_id, trial.task_id, trial.variant, trial.repeat
            );
        }
    }
    println!(
        "{} trial(s): {} task(s) x {} variant(s) x {} repeat(s)",
        plan.len(),
        tasks.len(),
        config.variants.len(),
        config.repeats()
    );
    ExitCode::SUCCESS
}

fn cmd_harness(args: &[String]) -> ExitCode {
    let (options, positional) = match parse_args(args, &[]) {
        Ok(parsed) => parsed,
        Err(e) => return usage_error(&format!("lab harness: {e}")),
    };
    debug_assert!(options.is_empty());
    let [task, result] = positional.as_slice() else {
        return usage_error("lab harness: expected exactly <task.json> <result.json>");
    };
    match lab::harness::run_harness(Path::new(task), Path::new(result)) {
        Ok(outcome) if outcome.is_success() => {
            println!("{task}: {} wrote {result}", outcome.outcome);
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            println!(
                "{task}: {} ({}) wrote {result}",
                outcome.outcome,
                outcome.error.as_deref().unwrap_or("unknown error")
            );
            ExitCode::FAILURE
        }
        Err(e) => fail(&e),
    }
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let (options, positional) = match parse_args(args, &["--out"]) {
        Ok(parsed) => parsed,
        Err(e) => return usage_error(&format!("lab merge: {e}")),
    };
    let Some(out) = option(&options, "--out") else {
        return usage_error("lab merge: --out is required");
    };
    if positional.is_empty() {
        return usage_error("lab merge: at least one journal file is required");
    }
    let mut inputs = Vec::with_capacity(positional.len());
    for path in &positional {
        match std::fs::read_to_string(path) {
            Ok(text) => inputs.push((path.clone(), text)),
            Err(e) => return fail(&LabError::io(path, e)),
        }
    }
    let lines = match merge_journal_lines(&inputs) {
        Ok(lines) => lines,
        Err(e) => return fail(&e),
    };
    let mut text = lines.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    if let Err(e) = std::fs::write(out, text) {
        return fail(&LabError::io(out, e));
    }
    println!("merged {} journal(s) into {out} ({} trial(s))", positional.len(), lines.len());
    ExitCode::SUCCESS
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let (options, positional) = match parse_args(args, &["--experiment", "--journal", "--out"]) {
        Ok(parsed) => parsed,
        Err(e) => return usage_error(&format!("lab analyze: {e}")),
    };
    if !positional.is_empty() {
        return usage_error(&format!("lab analyze: unexpected argument `{}`", positional[0]));
    }
    let (Some(experiment), Some(journal), Some(out)) = (
        option(&options, "--experiment"),
        option(&options, "--journal"),
        option(&options, "--out"),
    ) else {
        return usage_error("lab analyze: --experiment, --journal and --out are required");
    };
    let (paths, config) = match ExperimentPaths::resolve(Path::new(experiment)) {
        Ok(resolved) => resolved,
        Err(e) => return fail(&e),
    };
    let tasks = match load_tasks(&paths.tasks) {
        Ok(tasks) => tasks,
        Err(e) => return fail(&e),
    };
    let plan = plan_trials(&tasks, &config);
    let (records, warning) = match read_journal(Path::new(journal)) {
        Ok(journal) => journal,
        Err(e) => return fail(&e),
    };
    if let Some(warning) = warning {
        eprintln!("lab: warning: {warning}");
    }
    let tables = match analysis_tables(&plan, &records) {
        Ok(tables) => tables,
        Err(e) => return fail(&e),
    };
    let dir = PathBuf::from(out).join("analysis");
    if let Err(e) = lab::write_analysis(&dir, &tables) {
        return fail(&e);
    }
    println!("analysis written to {}", dir.display());
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let (options, positional) = match parse_args(args, &[]) {
        Ok(parsed) => parsed,
        Err(e) => return usage_error(&format!("lab validate: {e}")),
    };
    debug_assert!(options.is_empty());
    if positional.is_empty() {
        return usage_error("lab validate: at least one experiment is required");
    }
    for path in &positional {
        let result = validate_one(Path::new(path));
        match result {
            Ok(trials) => println!("OK {path} ({trials} trials)"),
            Err(e) => {
                eprintln!("lab: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Plans the experiment and resolves + validates every trial's effective
/// spec without executing anything.
fn validate_one(path: &Path) -> Result<usize, LabError> {
    let (paths, config) = ExperimentPaths::resolve(path)?;
    let tasks = load_tasks(&paths.tasks)?;
    let plan = plan_trials(&tasks, &config);
    for trial in &plan {
        let spec = resolve_trial_spec(trial, config.defaults.as_ref(), &paths.base_dir)?;
        spec.session().map_err(|e| {
            LabError::config(format!(
                "trial {} (task `{}`, variant `{}`): {e}",
                trial.trial_id, trial.task_id, trial.variant
            ))
        })?;
    }
    Ok(plan.len())
}
