//! The crate-wide error type.

use std::fmt;
use std::path::{Path, PathBuf};

/// Everything that can go wrong planning or running an experiment.
#[derive(Debug)]
pub enum LabError {
    /// A filesystem operation failed; the path it failed on.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A configuration, parse, or contract violation, rendered for humans.
    Config(String),
}

impl LabError {
    /// A configuration error with the given message.
    pub fn config(message: impl Into<String>) -> Self {
        LabError::Config(message.into())
    }

    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl AsRef<Path>, source: std::io::Error) -> Self {
        LabError::Io { path: path.as_ref().to_path_buf(), source }
    }
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LabError::Config(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for LabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabError::Io { source, .. } => Some(source),
            LabError::Config(_) => None,
        }
    }
}
