//! The experiment config: dataset, variants, repeats, runtime defaults.

use crate::{yamlish, LabError};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// One experiment variant: a named RFC 7386 merge delta applied over every
/// task's spec ([`crate::json_merge`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variant {
    /// The variant's name, unique within the experiment; the key analysis
    /// tables group by.
    pub name: String,
    /// The spec delta; omitted means "run the task's spec as-is".
    pub delta: Option<Value>,
}

/// The `experiment.json` / `experiment.yaml` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The experiment's name.
    pub name: String,
    /// The tasks file, relative to the experiment file's directory
    /// (default `tasks.jsonl`).
    pub dataset: Option<String>,
    /// How many times each (task, variant) pair runs (default 1). The
    /// simulations are deterministic, so repeats exercise the runner's
    /// dedup/caching path rather than sampling noise.
    pub repeats: Option<usize>,
    /// The experiment seed, folded into every trial id (default 0).
    /// Changing it invalidates all journal entries.
    pub seed: Option<u64>,
    /// Runtime defaults merged *under* every task's spec (lowest
    /// precedence: `defaults ⊕ task ⊕ variant.delta`).
    pub defaults: Option<Value>,
    /// The variants, in table order; at least one.
    pub variants: Vec<Variant>,
}

impl ExperimentConfig {
    /// The configured repeats, defaulted.
    pub fn repeats(&self) -> usize {
        self.repeats.unwrap_or(1)
    }

    /// The configured seed, defaulted.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(0)
    }

    /// The configured dataset file name, defaulted.
    pub fn dataset(&self) -> &str {
        self.dataset.as_deref().unwrap_or("tasks.jsonl")
    }

    /// Checks the config's internal consistency.
    ///
    /// # Errors
    ///
    /// [`LabError::Config`] for zero repeats, an empty dataset name, no
    /// variants, duplicate or empty variant names, and non-object
    /// `defaults` / `delta` values.
    pub fn validate(&self) -> Result<(), LabError> {
        if self.repeats == Some(0) {
            return Err(LabError::config("repeats must be at least 1"));
        }
        if self.dataset.as_deref() == Some("") {
            return Err(LabError::config("dataset must not be empty"));
        }
        if let Some(defaults) = &self.defaults {
            if !matches!(defaults, Value::Object(_)) {
                return Err(LabError::config(format!(
                    "defaults must be a JSON object, found {}",
                    defaults.type_name()
                )));
            }
        }
        if self.variants.is_empty() {
            return Err(LabError::config("an experiment needs at least one variant"));
        }
        for (index, variant) in self.variants.iter().enumerate() {
            if variant.name.is_empty() {
                return Err(LabError::config(format!("variant #{index} has an empty name")));
            }
            if self.variants[..index].iter().any(|v| v.name == variant.name) {
                return Err(LabError::config(format!("duplicate variant name `{}`", variant.name)));
            }
            if let Some(delta) = &variant.delta {
                if !matches!(delta, Value::Object(_)) {
                    return Err(LabError::config(format!(
                        "variant `{}`: delta must be a JSON object, found {}",
                        variant.name,
                        delta.type_name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Parses and validates a config from a parsed document.
    ///
    /// # Errors
    ///
    /// [`LabError::Config`] for shape and consistency violations.
    pub fn from_value(value: &Value) -> Result<Self, LabError> {
        let config: ExperimentConfig = serde_json::from_value(value)
            .map_err(|e| LabError::config(format!("invalid experiment config: {e}")))?;
        config.validate()?;
        Ok(config)
    }

    /// Loads and validates a config file; `.yaml` / `.yml` files go through
    /// the [`yamlish`] subset reader, everything else is JSON.
    ///
    /// # Errors
    ///
    /// [`LabError`] for unreadable files and invalid documents.
    pub fn load(path: &Path) -> Result<Self, LabError> {
        let text = std::fs::read_to_string(path).map_err(|e| LabError::io(path, e))?;
        let is_yaml =
            matches!(path.extension().and_then(|e| e.to_str()), Some("yaml") | Some("yml"));
        let value = if is_yaml {
            yamlish::parse(&text)
                .map_err(|e| LabError::config(format!("{}: {e}", path.display())))?
        } else {
            serde_json::parse(&text)
                .map_err(|e| LabError::config(format!("{}: {e}", path.display())))?
        };
        Self::from_value(&value).map_err(|e| LabError::config(format!("{}: {e}", path.display())))
    }
}

/// The resolved on-disk locations of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPaths {
    /// The experiment config file.
    pub config: PathBuf,
    /// The tasks file ([`ExperimentConfig::dataset`], resolved).
    pub tasks: PathBuf,
    /// The directory campaign refs resolve against (the config's parent).
    pub base_dir: PathBuf,
}

impl ExperimentPaths {
    /// Resolves `path` — either an experiment file or a directory holding
    /// `experiment.json` / `experiment.yaml` / `experiment.yml` — and the
    /// config's dataset location.
    ///
    /// # Errors
    ///
    /// [`LabError`] when no experiment file exists at `path` or the config
    /// fails to load.
    pub fn resolve(path: &Path) -> Result<(Self, ExperimentConfig), LabError> {
        let config_path = if path.is_dir() {
            ["experiment.json", "experiment.yaml", "experiment.yml"]
                .iter()
                .map(|name| path.join(name))
                .find(|candidate| candidate.is_file())
                .ok_or_else(|| {
                    LabError::config(format!(
                        "{}: no experiment.json / experiment.yaml found",
                        path.display()
                    ))
                })?
        } else {
            path.to_path_buf()
        };
        let config = ExperimentConfig::load(&config_path)?;
        let base_dir = config_path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let tasks = base_dir.join(config.dataset());
        Ok((ExperimentPaths { config: config_path, tasks, base_dir }, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(text: &str) -> Result<ExperimentConfig, LabError> {
        ExperimentConfig::from_value(&serde_json::parse(text).expect("test JSON parses"))
    }

    #[test]
    fn defaults_fill_in() {
        let c = config(r#"{"name": "x", "variants": [{"name": "base"}]}"#).expect("valid");
        assert_eq!(c.repeats(), 1);
        assert_eq!(c.seed(), 0);
        assert_eq!(c.dataset(), "tasks.jsonl");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(config(r#"{"name": "x", "variants": []}"#).is_err());
        assert!(config(r#"{"name": "x", "repeats": 0, "variants": [{"name": "a"}]}"#).is_err());
        assert!(config(r#"{"name": "x", "variants": [{"name": "a"}, {"name": "a"}]}"#).is_err());
        assert!(config(r#"{"name": "x", "variants": [{"name": ""}]}"#).is_err());
        assert!(config(r#"{"name": "x", "variants": [{"name": "a", "delta": 3}]}"#).is_err());
        assert!(config(r#"{"name": "x", "defaults": [1], "variants": [{"name": "a"}]}"#).is_err());
        assert!(config(r#"{"name": "x", "dataset": "", "variants": [{"name": "a"}]}"#).is_err());
        assert!(config(r#"{"name": "x", "variants": [{"name": "a"}], "extra": 1}"#).is_err());
    }
}
