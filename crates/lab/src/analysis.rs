//! Analysis tables: per-variant (and per-variant-per-task) objective
//! aggregates over a completed journal, emitted as canonical JSONL.

use crate::contract::{to_value, TrialRecord};
use crate::{LabError, PlannedTrial};
use serde::Serialize;
use smart_infinity::{canonical_json, LatencyStats};
use std::collections::HashMap;
use std::path::Path;

/// One row of `variants.jsonl` / `variant_tasks.jsonl`: counts plus
/// nearest-rank order statistics of the objective over the group's
/// successful trials (all zeros when none succeeded; `objective` is the
/// measured name and drops out of the canonical line when unknown).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalysisRow {
    /// The variant the row aggregates.
    pub variant: String,
    /// The task, for `variant_tasks.jsonl` rows; absent in the per-variant
    /// table.
    pub task_id: Option<String>,
    /// Trials in the group.
    pub trials: usize,
    /// Of those, successes.
    pub successes: usize,
    /// Of those, `error` outcomes.
    pub errors: usize,
    /// The objective's name (e.g. `iteration_s`); absent with no successes.
    pub objective: Option<String>,
    /// Minimum objective over successes.
    pub min: f64,
    /// Mean objective over successes.
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Maximum objective over successes.
    pub max: f64,
}

/// The two analysis tables of one experiment, as canonical JSONL lines.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisTables {
    /// Per-variant rows, in variant config order.
    pub variants: Vec<String>,
    /// Per-(variant, task) rows — variant config order, then task file
    /// order.
    pub variant_tasks: Vec<String>,
}

fn row(
    variant: &str,
    task_id: Option<&str>,
    group: &[&TrialRecord],
) -> Result<AnalysisRow, LabError> {
    let successes: Vec<&&TrialRecord> = group.iter().filter(|r| r.is_success()).collect();
    let mut objective = None;
    let mut samples = Vec::with_capacity(successes.len());
    for record in &successes {
        let value = record.objective.as_ref().ok_or_else(|| {
            LabError::config(format!("trial {}: success without an objective", record.trial_id))
        })?;
        match &objective {
            None => objective = Some(value.name.clone()),
            Some(name) if *name != value.name => {
                return Err(LabError::config(format!(
                    "variant `{variant}` mixes objectives `{name}` and `{}`",
                    value.name
                )))
            }
            Some(_) => {}
        }
        samples.push(value.value);
    }
    let stats = LatencyStats::from_samples(&samples);
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(AnalysisRow {
        variant: variant.to_string(),
        task_id: task_id.map(str::to_string),
        trials: group.len(),
        successes: successes.len(),
        errors: group.len() - successes.len(),
        objective,
        min: if samples.is_empty() { 0.0 } else { min },
        mean: stats.mean_s,
        p50: stats.p50_s,
        p95: stats.p95_s,
        max: stats.max_s,
    })
}

/// Computes both analysis tables from a plan and its journal records. The
/// journal must cover every planned trial; rows are grouped and ordered by
/// the *plan* (variant config order, task file order), so the tables are
/// independent of journal line order — a resumed or merged journal yields
/// byte-identical tables to a straight-through run.
///
/// # Errors
///
/// [`LabError::Config`] when a planned trial has no journal record or the
/// records are internally inconsistent.
pub fn analysis_tables(
    plan: &[PlannedTrial],
    records: &[TrialRecord],
) -> Result<AnalysisTables, LabError> {
    let by_id: HashMap<&str, &TrialRecord> =
        records.iter().map(|r| (r.trial_id.as_str(), r)).collect();
    // (variant, task) groups in plan order.
    let mut variant_order: Vec<&str> = Vec::new();
    let mut task_order: Vec<&str> = Vec::new();
    let mut groups: HashMap<(&str, &str), Vec<&TrialRecord>> = HashMap::new();
    for trial in plan {
        let record = by_id.get(trial.trial_id.as_str()).ok_or_else(|| {
            LabError::config(format!(
                "trial {} (task `{}`, variant `{}`) has no journal record",
                trial.trial_id, trial.task_id, trial.variant
            ))
        })?;
        if !variant_order.contains(&trial.variant.as_str()) {
            variant_order.push(&trial.variant);
        }
        if !task_order.contains(&trial.task_id.as_str()) {
            task_order.push(&trial.task_id);
        }
        groups.entry((&trial.variant, &trial.task_id)).or_default().push(record);
    }
    let mut variants = Vec::with_capacity(variant_order.len());
    let mut variant_tasks = Vec::new();
    for variant in &variant_order {
        let all: Vec<&TrialRecord> = task_order
            .iter()
            .filter_map(|task| groups.get(&(*variant, *task)))
            .flat_map(|group| group.iter().copied())
            .collect();
        variants.push(canonical_json(&to_value(&row(variant, None, &all)?)));
        for task in &task_order {
            if let Some(group) = groups.get(&(*variant, *task)) {
                variant_tasks.push(canonical_json(&to_value(&row(variant, Some(task), group)?)));
            }
        }
    }
    Ok(AnalysisTables { variants, variant_tasks })
}

/// Writes the tables to `dir/variants.jsonl` and `dir/variant_tasks.jsonl`,
/// creating `dir` if needed.
///
/// # Errors
///
/// [`LabError::Io`] when the directory or files cannot be written.
pub fn write_analysis(dir: &Path, tables: &AnalysisTables) -> Result<(), LabError> {
    std::fs::create_dir_all(dir).map_err(|e| LabError::io(dir, e))?;
    for (name, lines) in
        [("variants.jsonl", &tables.variants), ("variant_tasks.jsonl", &tables.variant_tasks)]
    {
        let path = dir.join(name);
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        std::fs::write(&path, text).map_err(|e| LabError::io(&path, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Objective, Task};
    use crate::{plan_trials, ExperimentConfig};
    use serde::Value;

    fn setup() -> (Vec<PlannedTrial>, Vec<TrialRecord>) {
        let config = ExperimentConfig::from_value(
            &serde_json::parse(
                r#"{"name": "t", "repeats": 2, "variants": [{"name": "a"}, {"name": "b"}]}"#,
            )
            .expect("test JSON parses"),
        )
        .expect("valid");
        let tasks = vec![
            Task::parse_line(r#"{"task_id": "t1", "model": "m"}"#).expect("parses"),
            Task::parse_line(r#"{"task_id": "t2", "model": "m"}"#).expect("parses"),
        ];
        let plan = plan_trials(&tasks, &config);
        let records = plan
            .iter()
            .map(|t| TrialRecord {
                trial_id: t.trial_id.clone(),
                task_id: t.task_id.clone(),
                variant: t.variant.clone(),
                repeat: t.repeat,
                outcome: if t.variant == "b" && t.task_id == "t2" {
                    "error".to_string()
                } else {
                    "success".to_string()
                },
                objective: (t.variant != "b" || t.task_id != "t2").then(|| Objective {
                    name: "iteration_s".to_string(),
                    value: 1.0 + t.index as f64,
                }),
                metrics: Value::Object(Vec::new()),
                error: None,
            })
            .collect();
        (plan, records)
    }

    #[test]
    fn tables_are_independent_of_record_order() {
        let (plan, records) = setup();
        let forward = analysis_tables(&plan, &records).expect("complete");
        let mut reversed = records.clone();
        reversed.reverse();
        let backward = analysis_tables(&plan, &reversed).expect("complete");
        assert_eq!(forward, backward);
        assert_eq!(forward.variants.len(), 2);
        assert_eq!(forward.variant_tasks.len(), 4);
        // The error group aggregates to zero stats with no objective name.
        let b_t2 = forward
            .variant_tasks
            .iter()
            .find(|line| line.contains(r#""task_id":"t2""#) && line.contains(r#""variant":"b""#))
            .expect("row exists");
        assert!(b_t2.contains(r#""errors":2"#), "{b_t2}");
        assert!(!b_t2.contains("objective"), "{b_t2}");
    }

    #[test]
    fn incomplete_journals_are_rejected() {
        let (plan, mut records) = setup();
        records.pop();
        assert!(analysis_tables(&plan, &records).is_err());
    }
}
