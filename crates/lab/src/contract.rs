//! The harness contract's data shapes: tasks, results, journal records, and
//! the JSON-merge operator variants are expressed with.

use crate::LabError;
use serde::{Deserialize, Serialize, Value};
use smart_infinity::{canonical_json, Campaign, CampaignRef, RunSpec};
use std::path::Path;

/// One line of `tasks.jsonl`: a required `task_id` plus a pure domain
/// payload — every *other* key of the object. The payload is either an
/// inline [`RunSpec`] or a [`CampaignRef`] (distinguished by the presence of
/// a `campaign` key); the runner keeps it as a raw [`Value`] so trial ids
/// can be computed without touching the filesystem.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// The task's unique id within its dataset.
    pub task_id: String,
    /// The domain payload: the task object minus `task_id`, always a JSON
    /// object.
    pub payload: Value,
}

impl Task {
    /// Parses one `tasks.jsonl` line.
    ///
    /// # Errors
    ///
    /// [`LabError::Config`] when the line is not a JSON object, lacks a
    /// string `task_id`, or has nothing but the id.
    pub fn parse_line(line: &str) -> Result<Self, LabError> {
        let value = serde_json::parse(line)
            .map_err(|e| LabError::config(format!("invalid task line: {e}")))?;
        let Value::Object(pairs) = value else {
            return Err(LabError::config(format!(
                "a task must be a JSON object, found {}",
                value.type_name()
            )));
        };
        let mut task_id = None;
        let mut payload = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            if key == "task_id" {
                match value {
                    Value::String(id) if !id.is_empty() => task_id = Some(id),
                    other => {
                        return Err(LabError::config(format!(
                            "task_id must be a non-empty string, found {}",
                            other.type_name()
                        )))
                    }
                }
            } else {
                payload.push((key, value));
            }
        }
        let task_id = task_id.ok_or_else(|| LabError::config("task is missing `task_id`"))?;
        if payload.is_empty() {
            return Err(LabError::config(format!("task `{task_id}` has an empty payload")));
        }
        Ok(Task { task_id, payload: Value::Object(payload) })
    }

    /// The full task document (payload plus `task_id`) — the value trial ids
    /// hash over.
    pub fn document(&self) -> Value {
        let mut pairs = vec![("task_id".to_string(), Value::String(self.task_id.clone()))];
        if let Value::Object(payload) = &self.payload {
            pairs.extend(payload.iter().cloned());
        }
        Value::Object(pairs)
    }
}

/// Resolves a task payload into the [`RunSpec`] it denotes.
///
/// A payload with a `campaign` key is a [`CampaignRef`]: the referenced
/// campaign document is loaded from `base_dir` (the directory of the file
/// the payload came from) and the selected spec returned. Any other payload
/// must be an inline [`RunSpec`].
///
/// # Errors
///
/// [`LabError`] for unreadable campaign files, malformed payloads, and
/// out-of-range / ambiguous references.
pub fn resolve_payload(payload: &Value, base_dir: &Path) -> Result<RunSpec, LabError> {
    if payload.get("campaign").is_some() {
        let reference: CampaignRef = serde_json::from_value(payload)
            .map_err(|e| LabError::config(format!("invalid campaign ref: {e}")))?;
        let path = base_dir.join(&reference.campaign);
        let text = std::fs::read_to_string(&path).map_err(|e| LabError::io(&path, e))?;
        let campaign = Campaign::from_json(&text)
            .map_err(|e| LabError::config(format!("{}: {e}", path.display())))?;
        reference.select(&campaign).map_err(|e| LabError::config(e.to_string()))
    } else {
        serde_json::from_value(payload)
            .map_err(|e| LabError::config(format!("invalid run spec payload: {e}")))
    }
}

/// An experiment's figure of merit: a named scalar, minimized by convention
/// (the built-in harness reports `iteration_s`, the simulated seconds of one
/// training iteration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// What the value measures.
    pub name: String,
    /// The measured value.
    pub value: f64,
}

/// What a harness writes to `result.json`: the contract's output half.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessResult {
    /// `"success"` or `"error"`.
    pub outcome: String,
    /// The figure of merit; absent on error.
    pub objective: Option<Objective>,
    /// Free-form metrics object (phase breakdowns, labels, ...).
    pub metrics: Value,
    /// The failure rendered for humans; absent on success.
    pub error: Option<String>,
}

impl HarnessResult {
    /// Whether the harness reported success.
    pub fn is_success(&self) -> bool {
        self.outcome == "success"
    }
}

/// One line of the append-only `trials.jsonl` journal: a completed trial's
/// identity plus its [`HarnessResult`] fields. Every field is a
/// deterministic function of the experiment inputs — no wall-clock, host
/// name, or cache telemetry — so journals from reruns and shards can be
/// compared and merged byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The trial's stable content address ([`crate::PlannedTrial::trial_id`]).
    pub trial_id: String,
    /// The task the trial ran.
    pub task_id: String,
    /// The variant name.
    pub variant: String,
    /// The repeat index, `0..repeats`.
    pub repeat: usize,
    /// `"success"` or `"error"`.
    pub outcome: String,
    /// The figure of merit; absent on error.
    pub objective: Option<Objective>,
    /// Free-form metrics object.
    pub metrics: Value,
    /// The failure rendered for humans; absent on success.
    pub error: Option<String>,
}

impl TrialRecord {
    /// Whether the trial succeeded.
    pub fn is_success(&self) -> bool {
        self.outcome == "success"
    }

    /// The record as one canonical journal line (no trailing newline).
    /// Canonical form drops the absent optionals and normalizes key order
    /// and number spellings, which is what makes journal lines comparable
    /// across runs.
    pub fn to_line(&self) -> String {
        canonical_json(&to_value(self))
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// [`LabError::Config`] for malformed lines.
    pub fn parse_line(line: &str) -> Result<Self, LabError> {
        serde_json::from_str(line)
            .map_err(|e| LabError::config(format!("invalid journal line: {e}")))
    }
}

/// Serializes any [`Serialize`] type into a [`Value`] tree (via its JSON
/// text — the shim has no direct value serializer).
pub(crate) fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    let text = serde_json::to_string(value).expect("serialization is infallible");
    serde_json::parse(&text).expect("serialized JSON parses")
}

/// RFC 7386 JSON merge patch: objects merge recursively, a `null` entry in
/// `delta` deletes the key, and every non-object `delta` replaces `base`
/// wholesale. This is the operator experiment variants apply over a task's
/// spec: `defaults ⊕ task ⊕ variant.delta`.
pub fn json_merge(base: &Value, delta: &Value) -> Value {
    match delta {
        Value::Object(delta_pairs) => {
            let mut merged: Vec<(String, Value)> = match base {
                Value::Object(base_pairs) => base_pairs.clone(),
                _ => Vec::new(),
            };
            for (key, delta_value) in delta_pairs {
                if let Value::Null = delta_value {
                    merged.retain(|(k, _)| k != key);
                } else if let Some(slot) = merged.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = json_merge(&slot.1, delta_value);
                } else {
                    merged.push((key.clone(), json_merge(&Value::Null, delta_value)));
                }
            }
            Value::Object(merged)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Value {
        serde_json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn tasks_split_id_from_payload() {
        let task = Task::parse_line(
            r#"{"model": "GPT2-0.34B", "task_id": "t1", "machine": {"devices": 2}}"#,
        )
        .expect("parses");
        assert_eq!(task.task_id, "t1");
        assert_eq!(task.payload.get("model"), Some(&Value::String("GPT2-0.34B".into())));
        assert!(task.payload.get("task_id").is_none());
        // The hashed document reassembles the id with the payload.
        assert_eq!(task.document().get("task_id"), Some(&Value::String("t1".into())));
    }

    #[test]
    fn task_parse_rejects_malformed_lines() {
        assert!(Task::parse_line("[1,2]").is_err());
        assert!(Task::parse_line(r#"{"model": "x"}"#).is_err());
        assert!(Task::parse_line(r#"{"task_id": 7, "model": "x"}"#).is_err());
        assert!(Task::parse_line(r#"{"task_id": "only-id"}"#).is_err());
        assert!(Task::parse_line("not json").is_err());
    }

    #[test]
    fn merge_is_rfc7386() {
        let base = v(r#"{"a": {"x": 1, "y": 2}, "b": 3}"#);
        assert_eq!(
            json_merge(&base, &v(r#"{"a": {"y": 9}}"#)),
            v(r#"{"a": {"x": 1, "y": 9}, "b": 3}"#)
        );
        assert_eq!(json_merge(&base, &v(r#"{"b": null}"#)), v(r#"{"a": {"x": 1, "y": 2}}"#));
        assert_eq!(json_merge(&base, &v(r#"{"a": 5}"#)), v(r#"{"a": 5, "b": 3}"#));
        assert_eq!(json_merge(&base, &v("7")), v("7"));
        assert_eq!(json_merge(&Value::Null, &v(r#"{"k": {"n": 1}}"#)), v(r#"{"k": {"n": 1}}"#));
    }

    #[test]
    fn records_round_trip_through_canonical_lines() {
        let record = TrialRecord {
            trial_id: "00ff".into(),
            task_id: "t1".into(),
            variant: "su".into(),
            repeat: 1,
            outcome: "success".into(),
            objective: Some(Objective { name: "iteration_s".into(), value: 1.5 }),
            metrics: v(r#"{"forward_s": 0.5}"#),
            error: None,
        };
        let line = record.to_line();
        // Canonical lines drop the absent error and sort keys.
        assert!(!line.contains("error"));
        let back = TrialRecord::parse_line(&line).expect("round trips");
        assert_eq!(back, record);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn error_records_drop_objective_and_empty_metrics() {
        let record = TrialRecord {
            trial_id: "aa".into(),
            task_id: "t".into(),
            variant: "v".into(),
            repeat: 0,
            outcome: "error".into(),
            objective: None,
            metrics: Value::Object(Vec::new()),
            error: Some("boom".into()),
        };
        let line = record.to_line();
        assert!(!line.contains("objective"));
        assert!(!line.contains("metrics"));
        let back = TrialRecord::parse_line(&line).expect("round trips");
        assert!(!back.is_success());
        assert_eq!(back.metrics, Value::Null);
        assert_eq!(back.error.as_deref(), Some("boom"));
    }
}
