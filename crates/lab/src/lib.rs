//! `lab` — the experiment-runner subsystem and its clean harness contract.
//!
//! The repo's other front doors each own an ad-hoc slice of "run many specs
//! and compare": [`smart_infinity::Campaign`] runs a fixed list,
//! [`smart_infinity::CampaignService`] serves one spec at a time, and the
//! `figures` binary hard-codes the paper's experiments. This crate is the
//! layer that turns those into a regression-checked dataset pipeline, built
//! around two file-level contracts (the AgentLab shape):
//!
//! * A **harness** is any program that reads one `task.json` — an inline
//!   [`smart_infinity::RunSpec`] or a [`smart_infinity::CampaignRef`] — and
//!   writes one `result.json` with `{"outcome", "objective", "metrics"}`.
//!   The built-in harness ([`harness::run_harness`], `lab harness`) wraps
//!   [`smart_infinity::Session`], so every existing workload is runnable
//!   through the contract with no new code.
//! * A **runner** reads `tasks.jsonl` (pure domain payloads, `task_id`
//!   required) plus `experiment.json` (dataset, variants as RFC 7386
//!   JSON-merge deltas over the spec, repeats, runtime defaults; a strict
//!   YAML subset is accepted via [`yamlish`]), plans the full trial matrix
//!   deterministically ([`plan`]), executes trials through the
//!   [`smart_infinity::CampaignService`] for dedup/caching ([`runner`]),
//!   journals every completed trial to an append-only `trials.jsonl`, and
//!   emits per-variant JSONL analysis tables ([`analysis`]).
//!
//! Determinism is the load-bearing property throughout:
//!
//! * **Stable trial ids.** A trial's id is the FNV-1a hash of the
//!   [`smart_infinity::canonical_json`] of `{defaults, seed, task, variant,
//!   repeat}` — a pure function of the experiment inputs, invariant to key
//!   order, whitespace, and number spelling.
//! * **Resume.** A killed run is re-invoked with the same arguments; trials
//!   whose ids already appear in the journal are never re-executed, and the
//!   final analysis tables are byte-identical to an uninterrupted run.
//! * **Sharding.** `--shard i/N` partitions the plan by trial index modulo
//!   `N`; the N journals merged with `lab merge` are bit-identical to a
//!   single-process journal after canonical (byte-wise) sort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod contract;
pub mod experiment;
pub mod harness;
pub mod plan;
pub mod runner;
pub mod yamlish;

mod error;

pub use analysis::{analysis_tables, write_analysis, AnalysisTables};
pub use contract::{json_merge, HarnessResult, Objective, Task, TrialRecord};
pub use error::LabError;
pub use experiment::{ExperimentConfig, ExperimentPaths, Variant};
pub use plan::{plan_trials, PlannedTrial, Shard};
pub use runner::{
    merge_journal_lines, read_journal, run_experiment, Executor, FixedExecutor, RunOptions,
    RunOutcome, RunSummary, ServiceExecutor,
};
