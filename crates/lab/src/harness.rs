//! The built-in harness: one `task.json` in, one `result.json` out.
//!
//! This is the reference implementation of the contract's program boundary:
//! any executable that reads a task document (an inline
//! [`smart_infinity::RunSpec`] or a [`smart_infinity::CampaignRef`]) and
//! writes `{"outcome", "objective", "metrics"}` is a harness the runner's
//! results are comparable with. The built-in one resolves the task against
//! [`smart_infinity::Session`] and reports the simulated iteration time as
//! its objective.

use crate::contract::{resolve_payload, to_value, HarnessResult, Objective};
use crate::LabError;
use serde::{Serialize, Value};
use smart_infinity::RunSpec;
use std::path::Path;
use ztrain::IterationReport;

#[derive(Debug, Serialize)]
struct PhaseMetrics {
    method: String,
    forward_s: f64,
    backward_s: f64,
    update_s: f64,
    total_s: f64,
}

fn success(spec: &RunSpec, report: IterationReport) -> HarnessResult {
    HarnessResult {
        outcome: "success".to_string(),
        objective: Some(Objective { name: "iteration_s".to_string(), value: report.total_s() }),
        metrics: to_value(&PhaseMetrics {
            method: spec.method.to_string(),
            forward_s: report.forward_s,
            backward_s: report.backward_s,
            update_s: report.update_s,
            total_s: report.total_s(),
        }),
        error: None,
    }
}

fn failure(message: String) -> HarnessResult {
    HarnessResult {
        outcome: "error".to_string(),
        objective: None,
        metrics: Value::Object(Vec::new()),
        error: Some(message),
    }
}

/// Runs one task document (already parsed); campaign refs resolve relative
/// to `base_dir`. Domain failures come back as an `error`-outcome
/// [`HarnessResult`], never as `Err` — the contract's result file always
/// gets written.
pub fn run_task(task: &Value, base_dir: &Path) -> HarnessResult {
    // A task file may carry the dataset form's `task_id`; it is not part of
    // the payload.
    let payload = match task {
        Value::Object(pairs) => {
            Value::Object(pairs.iter().filter(|(k, _)| k != "task_id").cloned().collect())
        }
        other => other.clone(),
    };
    let spec = match resolve_payload(&payload, base_dir) {
        Ok(spec) => spec,
        Err(e) => return failure(e.to_string()),
    };
    match spec.session().and_then(|session| session.simulate_iteration()) {
        Ok(report) => success(&spec, report),
        Err(e) => failure(e.to_string()),
    }
}

/// The file-level harness entry point (`lab harness <task.json>
/// <result.json>`): reads the task, runs it, writes the result document
/// (pretty JSON). Returns the parsed result so callers can inspect the
/// outcome.
///
/// # Errors
///
/// [`LabError::Io`] only — an unreadable task file or unwritable result
/// file. Domain failures are reported *inside* the written result.
pub fn run_harness(task_path: &Path, result_path: &Path) -> Result<HarnessResult, LabError> {
    let text = std::fs::read_to_string(task_path).map_err(|e| LabError::io(task_path, e))?;
    let result = match serde_json::parse(&text) {
        Ok(task) => {
            let base_dir = task_path.parent().unwrap_or(Path::new("."));
            run_task(&task, base_dir)
        }
        Err(e) => failure(format!("invalid task document: {e}")),
    };
    let mut rendered =
        serde_json::to_string_pretty(&result).expect("result serialization is infallible");
    rendered.push('\n');
    std::fs::write(result_path, rendered).map_err(|e| LabError::io(result_path, e))?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_spec_tasks_run_to_success() {
        let task = serde_json::parse(
            r#"{"task_id": "t", "model": "GPT2-0.34B", "machine": {"devices": 2},
                "method": {"offload": true, "in_storage_update": true,
                           "overlap": false, "pipelined": false}}"#,
        )
        .expect("test JSON parses");
        let result = run_task(&task, Path::new("."));
        assert!(result.is_success(), "{:?}", result.error);
        let objective = result.objective.expect("has objective");
        assert_eq!(objective.name, "iteration_s");
        assert!(objective.value > 0.0);
        assert!(result.metrics.get("forward_s").is_some());
    }

    #[test]
    fn broken_tasks_report_error_outcomes() {
        let task = serde_json::parse(
            r#"{"model": "NOPE-9B", "machine": {"devices": 2},
                "method": {"offload": true, "in_storage_update": false,
                           "overlap": false, "pipelined": false}}"#,
        )
        .expect("test JSON parses");
        let result = run_task(&task, Path::new("."));
        assert!(!result.is_success());
        assert!(result.objective.is_none());
        assert!(result.error.is_some());
    }
}
