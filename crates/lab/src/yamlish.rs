//! A strict YAML-subset reader for `experiment.yaml` files.
//!
//! This is deliberately *not* YAML: it accepts exactly the indentation-based
//! subset an experiment config needs and rejects everything else with a
//! line-numbered error, so a config that parses here means one thing on
//! every machine. The accepted grammar:
//!
//! * block mappings of `key: value` / `key:` + nested block (bare keys,
//!   no quoting),
//! * block sequences of `- value` / `-` + nested block / `- key: value`
//!   opening a nested mapping,
//! * scalars parsed as JSON when they are valid JSON (numbers, booleans,
//!   `null`, quoted strings, and inline `{...}` / `[...]` flow values —
//!   which is how variant deltas stay one-liners) and as plain strings
//!   otherwise,
//! * blank lines and full-line `#` comments.
//!
//! Not accepted: tabs, trailing comments, anchors/aliases, multi-document
//! streams, multi-line strings, and quoted keys.

use crate::LabError;
use serde::Value;

/// One significant (non-blank, non-comment) input line.
struct Line {
    number: usize,
    indent: usize,
    content: String,
}

/// Parses the YAML-subset `text` into a JSON [`Value`].
///
/// # Errors
///
/// [`LabError::Config`] with a `line N:` prefix for anything outside the
/// subset.
pub fn parse(text: &str) -> Result<Value, LabError> {
    let lines = significant_lines(text)?;
    if lines.is_empty() {
        return Err(LabError::config("empty document"));
    }
    if lines[0].indent != 0 {
        return Err(err(&lines[0], "the top-level block must start at column 0"));
    }
    let mut pos = 0;
    let value = parse_block(&lines, &mut pos, 0)?;
    if pos < lines.len() {
        return Err(err(&lines[pos], "inconsistent indentation"));
    }
    Ok(value)
}

fn significant_lines(text: &str) -> Result<Vec<Line>, LabError> {
    let mut lines = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let number = index + 1;
        let trimmed = raw.trim_end();
        let stripped = trimmed.trim_start();
        if stripped.is_empty() || stripped.starts_with('#') {
            continue;
        }
        let indent = trimmed.len() - stripped.len();
        if trimmed[..indent].contains('\t') {
            return Err(LabError::config(format!(
                "line {number}: tabs are not allowed in indentation"
            )));
        }
        lines.push(Line { number, indent, content: stripped.to_string() });
    }
    Ok(lines)
}

fn err(line: &Line, message: &str) -> LabError {
    LabError::config(format!("line {}: {message}", line.number))
}

fn is_seq_item(content: &str) -> bool {
    content == "-" || content.starts_with("- ")
}

/// Splits `content` into a bare key and the rest after `:`; the colon must
/// be followed by a space or end the line (so `http://x` stays a scalar).
fn split_key(content: &str) -> Option<(&str, &str)> {
    let colon = content.find(':')?;
    let key = content[..colon].trim_end();
    let rest = &content[colon + 1..];
    if key.is_empty() || key.contains(' ') || key.starts_with(['"', '\'']) {
        return None;
    }
    if rest.is_empty() {
        Some((key, ""))
    } else if let Some(stripped) = rest.strip_prefix(' ') {
        Some((key, stripped.trim_start()))
    } else {
        None
    }
}

fn parse_scalar(text: &str) -> Value {
    match serde_json::parse(text) {
        Ok(value) => value,
        Err(_) => Value::String(text.to_string()),
    }
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, LabError> {
    if is_seq_item(&lines[*pos].content) {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent)
    }
}

/// Parses the value after a `key:` / `- ` introducer: a nested block when
/// the next line is deeper than `indent`, `null` otherwise.
fn parse_nested(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, LabError> {
    if *pos < lines.len() && lines[*pos].indent > indent {
        let nested = lines[*pos].indent;
        parse_block(lines, pos, nested)
    } else {
        Ok(Value::Null)
    }
}

fn parse_mapping(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, LabError> {
    let mut pairs: Vec<(String, Value)> = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(err(line, "inconsistent indentation"));
        }
        if is_seq_item(&line.content) {
            return Err(err(line, "sequence item inside a mapping block"));
        }
        let Some((key, rest)) = split_key(&line.content) else {
            return Err(err(line, "expected `key: value` or `key:`"));
        };
        if pairs.iter().any(|(k, _)| k == key) {
            return Err(err(line, &format!("duplicate key `{key}`")));
        }
        *pos += 1;
        let value =
            if rest.is_empty() { parse_nested(lines, pos, indent)? } else { parse_scalar(rest) };
        pairs.push((key.to_string(), value));
    }
    Ok(Value::Object(pairs))
}

fn parse_sequence(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, LabError> {
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(err(line, "inconsistent indentation"));
        }
        if !is_seq_item(&line.content) {
            return Err(err(line, "mapping key inside a sequence block"));
        }
        let rest = if line.content == "-" { "" } else { line.content[2..].trim_start() };
        if rest.is_empty() {
            *pos += 1;
            items.push(parse_nested(lines, pos, indent)?);
        } else if let Some((key, value_rest)) = split_key(rest) {
            // `- key: ...` opens a mapping whose first entry sits on the
            // item line; the remaining entries are indented two past the
            // dash (the conventional YAML layout).
            let entry_indent = indent + 2;
            let number = line.number;
            *pos += 1;
            let first_value = if value_rest.is_empty() {
                parse_nested(lines, pos, entry_indent)?
            } else {
                parse_scalar(value_rest)
            };
            let mut pairs = vec![(key.to_string(), first_value)];
            if *pos < lines.len()
                && lines[*pos].indent == entry_indent
                && !is_seq_item(&lines[*pos].content)
            {
                match parse_mapping(lines, pos, entry_indent)? {
                    Value::Object(rest_pairs) => {
                        for (k, v) in rest_pairs {
                            if pairs.iter().any(|(existing, _)| *existing == k) {
                                return Err(LabError::config(format!(
                                    "line {number}: duplicate key `{k}` in sequence item"
                                )));
                            }
                            pairs.push((k, v));
                        }
                    }
                    _ => unreachable!("parse_mapping returns an object"),
                }
            }
            items.push(Value::Object(pairs));
        } else {
            *pos += 1;
            items.push(parse_scalar(rest));
        }
    }
    Ok(Value::Array(items))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Value {
        serde_json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn scalars_numbers_and_flow_json_parse() {
        let doc = parse(
            "name: mini\nrepeats: 2\nseed: 42\nratio: 0.02\nflag: true\nnothing: null\nquoted: \"a b\"\ndelta: {\"method\": {\"smart_update\": true}}\n",
        )
        .expect("parses");
        assert_eq!(
            doc,
            v(r#"{"name": "mini", "repeats": 2, "seed": 42, "ratio": 0.02, "flag": true,
                 "nothing": null, "quoted": "a b",
                 "delta": {"method": {"smart_update": true}}}"#)
        );
    }

    #[test]
    fn nested_blocks_and_sequences() {
        let doc = parse(
            "# an experiment\nname: demo\nvariants:\n  - name: su\n    delta:\n      method:\n        smart_update: true\n  - name: base\ntags:\n  - fast\n  - 3\n",
        )
        .expect("parses");
        assert_eq!(
            doc,
            v(r#"{"name": "demo",
                 "variants": [{"name": "su", "delta": {"method": {"smart_update": true}}},
                              {"name": "base"}],
                 "tags": ["fast", 3]}"#)
        );
    }

    #[test]
    fn url_like_scalars_stay_strings() {
        let doc = parse("link: http://example.com/x\n").expect("parses");
        assert_eq!(doc, v(r#"{"link": "http://example.com/x"}"#));
    }

    #[test]
    fn empty_key_yields_null() {
        assert_eq!(parse("a:\nb: 1\n").expect("parses"), v(r#"{"a": null, "b": 1}"#));
    }

    #[test]
    fn rejects_out_of_subset_documents() {
        assert!(parse("").is_err());
        assert!(parse("\tkey: 1\n").is_err());
        assert!(parse("  indented: 1\n").is_err());
        assert!(parse("a: 1\na: 2\n").is_err());
        assert!(parse("a: 1\n- item\n").is_err());
        assert!(parse("- item\nkey: 1\n").is_err());
        assert!(parse("a: 1\n    b: 2\n").is_err());
        let err = parse("a: 1\nnot a key\n").expect_err("rejects");
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
