//! Deterministic trial planning: the matrix of tasks × variants × repeats,
//! each trial addressed by a stable content hash.

use crate::contract::Task;
use crate::{ExperimentConfig, LabError};
use serde::{Number, Value};
use smart_infinity::{canonical_json, fnv1a};

/// One planned trial: a (task, variant, repeat) cell of the experiment
/// matrix plus its stable id.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedTrial {
    /// The trial's position in the flat plan (task-major, then variant,
    /// then repeat) — the index sharding partitions on.
    pub index: usize,
    /// The trial's content address: the 16-hex-digit FNV-1a hash of the
    /// canonical JSON of `{defaults, repeat, seed, task, variant}`. A pure
    /// function of the experiment inputs — invariant to key order,
    /// whitespace, and number spelling — and the key the journal dedups on.
    pub trial_id: String,
    /// The task's id.
    pub task_id: String,
    /// The task's raw payload (spec or campaign ref), unresolved.
    pub payload: Value,
    /// The variant's name.
    pub variant: String,
    /// The variant's merge delta, if any.
    pub delta: Option<Value>,
    /// The repeat index, `0..repeats`.
    pub repeat: usize,
}

fn unsigned(n: u64) -> Value {
    Value::Number(Number::from_literal(n.to_string()))
}

/// The trial id of one matrix cell (see [`PlannedTrial::trial_id`]).
fn trial_id(config: &ExperimentConfig, task: &Task, variant_index: usize, repeat: usize) -> String {
    let variant = &config.variants[variant_index];
    let doc = Value::Object(vec![
        ("defaults".to_string(), config.defaults.clone().unwrap_or(Value::Null)),
        ("repeat".to_string(), unsigned(repeat as u64)),
        ("seed".to_string(), unsigned(config.seed())),
        ("task".to_string(), task.document()),
        (
            "variant".to_string(),
            Value::Object(vec![
                ("delta".to_string(), variant.delta.clone().unwrap_or(Value::Null)),
                ("name".to_string(), Value::String(variant.name.clone())),
            ]),
        ),
    ]);
    format!("{:016x}", fnv1a(canonical_json(&doc).as_bytes()))
}

/// Plans the full trial matrix: for each task (file order), for each variant
/// (config order), for each repeat — a pure function of `(tasks, config)`,
/// no filesystem access, no clock, no randomness.
pub fn plan_trials(tasks: &[Task], config: &ExperimentConfig) -> Vec<PlannedTrial> {
    let mut trials = Vec::with_capacity(tasks.len() * config.variants.len() * config.repeats());
    for task in tasks {
        for (variant_index, variant) in config.variants.iter().enumerate() {
            for repeat in 0..config.repeats() {
                trials.push(PlannedTrial {
                    index: trials.len(),
                    trial_id: trial_id(config, task, variant_index, repeat),
                    task_id: task.task_id.clone(),
                    payload: task.payload.clone(),
                    variant: variant.name.clone(),
                    delta: variant.delta.clone(),
                    repeat,
                });
            }
        }
    }
    trials
}

/// A `--shard i/N` selector: process `i` of `N` owns the trials whose flat
/// index is congruent to `i` modulo `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index, `0..count`.
    pub index: usize,
    /// The total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parses the `i/N` CLI form.
    ///
    /// # Errors
    ///
    /// [`LabError::Config`] for malformed selectors and `i >= N`.
    pub fn parse(text: &str) -> Result<Self, LabError> {
        let invalid =
            || LabError::config(format!("invalid shard `{text}` (expected i/N with 0 <= i < N)"));
        let (index, count) = text.split_once('/').ok_or_else(invalid)?;
        let index: usize = index.trim().parse().map_err(|_| invalid())?;
        let count: usize = count.trim().parse().map_err(|_| invalid())?;
        if count == 0 || index >= count {
            return Err(invalid());
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns the trial at flat plan index `index`.
    pub fn owns(&self, index: usize) -> bool {
        index % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_config() -> ExperimentConfig {
        ExperimentConfig::from_value(
            &serde_json::parse(
                r#"{"name": "t", "repeats": 2,
                    "variants": [{"name": "a"},
                                 {"name": "b", "delta": {"machine": {"devices": 4}}}]}"#,
            )
            .expect("test JSON parses"),
        )
        .expect("valid")
    }

    fn tasks() -> Vec<Task> {
        [
            r#"{"task_id": "t1", "model": "GPT2-0.34B"}"#,
            r#"{"task_id": "t2", "model": "GPT2-0.77B"}"#,
        ]
        .iter()
        .map(|line| Task::parse_line(line).expect("task parses"))
        .collect()
    }

    #[test]
    fn plan_is_task_major_and_ids_are_unique() {
        let plan = plan_trials(&tasks(), &mini_config());
        assert_eq!(plan.len(), 8);
        let order: Vec<_> =
            plan.iter().map(|t| (t.task_id.as_str(), t.variant.as_str(), t.repeat)).collect();
        assert_eq!(
            order,
            vec![
                ("t1", "a", 0),
                ("t1", "a", 1),
                ("t1", "b", 0),
                ("t1", "b", 1),
                ("t2", "a", 0),
                ("t2", "a", 1),
                ("t2", "b", 0),
                ("t2", "b", 1),
            ]
        );
        let mut ids: Vec<_> = plan.iter().map(|t| t.trial_id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8, "trial ids must be unique");
        assert!(plan.iter().all(|t| t.trial_id.len() == 16));
    }

    #[test]
    fn ids_depend_on_seed_and_defaults() {
        let base = plan_trials(&tasks(), &mini_config());
        let mut reseeded_config = mini_config();
        reseeded_config.seed = Some(7);
        let reseeded = plan_trials(&tasks(), &reseeded_config);
        assert!(base.iter().zip(&reseeded).all(|(a, b)| a.trial_id != b.trial_id));
        let mut defaulted_config = mini_config();
        defaulted_config.defaults = Some(serde_json::parse(r#"{"threads": 2}"#).expect("parses"));
        let defaulted = plan_trials(&tasks(), &defaulted_config);
        assert!(base.iter().zip(&defaulted).all(|(a, b)| a.trial_id != b.trial_id));
    }

    #[test]
    fn shards_partition_the_plan() {
        let plan = plan_trials(&tasks(), &mini_config());
        for count in 1..=5 {
            let mut seen = 0;
            for index in 0..count {
                let shard = Shard { index, count };
                seen += plan.iter().filter(|t| shard.owns(t.index)).count();
            }
            assert_eq!(seen, plan.len());
        }
        assert!(Shard::parse("2/3").is_ok());
        assert!(Shard::parse("3/3").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("x").is_err());
    }
}
