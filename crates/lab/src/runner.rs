//! The experiment runner: resolve specs, execute trials through the
//! campaign service, journal results, resume, shard, merge.

use crate::contract::{resolve_payload, to_value, Objective, Task, TrialRecord};
use crate::{
    analysis_tables, json_merge, plan_trials, ExperimentPaths, LabError, PlannedTrial, Shard,
};
use parcore::ParExecutor;
use serde::{Serialize, Value};
use smart_infinity::{CampaignService, RunSpec, ServiceConfig, ServiceReport};
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::Path;
use ztrain::IterationReport;

/// The name of the append-only journal inside an output directory.
pub const JOURNAL_FILE: &str = "trials.jsonl";

/// The name of the analysis subdirectory inside an output directory.
pub const ANALYSIS_DIR: &str = "analysis";

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

/// A successful trial execution: the method label plus the phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The method's figure label (`BASE`, `SU+O`, ...).
    pub method: String,
    /// The simulated iteration's phase breakdown.
    pub report: IterationReport,
}

/// The execution seam of the runner: turns resolved specs into outcomes.
/// The production implementation is [`ServiceExecutor`]; [`FixedExecutor`]
/// is a pure synthetic stand-in for plan-level tests and dry runs.
pub trait Executor {
    /// Executes one batch of resolved trials, returning one result per
    /// entry, in order. Errors are per-trial strings (they become `error`
    /// journal records, not run aborts).
    fn execute(&mut self, batch: &[(PlannedTrial, RunSpec)]) -> Vec<Result<RunOutcome, String>>;
}

/// The production executor: every spec goes through a
/// [`CampaignService`], so canonically equal specs (repeats, overlapping
/// variants) are executed once and answered from the content-addressed
/// cache thereafter.
pub struct ServiceExecutor {
    service: CampaignService,
    pool: ParExecutor,
}

impl ServiceExecutor {
    /// An executor running on `threads` workers with the default service
    /// config.
    pub fn new(threads: usize) -> Self {
        ServiceExecutor {
            service: CampaignService::new(ServiceConfig::default()),
            pool: ParExecutor::new(threads.max(1)),
        }
    }

    /// The service's telemetry (dedup/cache counters, queue depth).
    pub fn report(&self) -> ServiceReport {
        self.service.report()
    }
}

impl Executor for ServiceExecutor {
    fn execute(&mut self, batch: &[(PlannedTrial, RunSpec)]) -> Vec<Result<RunOutcome, String>> {
        let mut results = Vec::with_capacity(batch.len());
        // Submit in waves of at most `queue_depth` unique items so a large
        // batch can never hit QueueFull (cache hits and coalesced
        // submissions don't enqueue, so the bound is conservative).
        for wave in batch.chunks(self.service.config().queue_depth) {
            let ids: Vec<_> = wave
                .iter()
                .map(|(_, spec)| self.service.submit(0, spec).map_err(|e| e.to_string()))
                .collect();
            self.service.drain(&self.pool);
            for id in ids {
                results.push(id.and_then(|id| {
                    self.service
                        .await_result(id, &self.pool)
                        .map(|job| RunOutcome {
                            method: job.report.method,
                            report: job.report.report,
                        })
                        .map_err(|e| e.to_string())
                }));
            }
        }
        results
    }
}

/// A pure synthetic executor: the outcome is a deterministic function of
/// the spec's content address, so tests can exercise planning, journaling,
/// sharding, and analysis without paying for real simulations.
#[derive(Debug, Default, Clone, Copy)]
pub struct FixedExecutor;

impl Executor for FixedExecutor {
    fn execute(&mut self, batch: &[(PlannedTrial, RunSpec)]) -> Vec<Result<RunOutcome, String>> {
        batch
            .iter()
            .map(|(_, spec)| {
                let key = spec.cache_key();
                let base = 0.5 + (key % 1000) as f64 / 1000.0;
                Ok(RunOutcome {
                    method: spec.method.to_string(),
                    report: IterationReport::new(base, 2.0 * base, 3.0 * base),
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tasks and journal I/O
// ---------------------------------------------------------------------------

/// Loads and validates a `tasks.jsonl` file (unique non-empty ids, one JSON
/// object per non-blank line).
///
/// # Errors
///
/// [`LabError`] for unreadable files, malformed lines, and duplicate ids.
pub fn load_tasks(path: &Path) -> Result<Vec<Task>, LabError> {
    let text = std::fs::read_to_string(path).map_err(|e| LabError::io(path, e))?;
    let mut tasks: Vec<Task> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let task = Task::parse_line(line)
            .map_err(|e| LabError::config(format!("{}:{}: {e}", path.display(), index + 1)))?;
        if tasks.iter().any(|t| t.task_id == task.task_id) {
            return Err(LabError::config(format!(
                "{}:{}: duplicate task_id `{}`",
                path.display(),
                index + 1,
                task.task_id
            )));
        }
        tasks.push(task);
    }
    if tasks.is_empty() {
        return Err(LabError::config(format!("{}: no tasks", path.display())));
    }
    Ok(tasks)
}

/// Reads a `trials.jsonl` journal. A missing file is an empty journal. A
/// malformed *final* line is tolerated as the torn tail of a killed run —
/// it is dropped and reported in the returned warning — while a malformed
/// line anywhere else is corruption and errors out.
///
/// # Errors
///
/// [`LabError`] for unreadable files and non-final malformed lines.
pub fn read_journal(path: &Path) -> Result<(Vec<TrialRecord>, Option<String>), LabError> {
    if !path.exists() {
        return Ok((Vec::new(), None));
    }
    let text = std::fs::read_to_string(path).map_err(|e| LabError::io(path, e))?;
    let lines: Vec<(usize, &str)> =
        text.lines().enumerate().filter(|(_, line)| !line.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(lines.len());
    let mut warning = None;
    for (position, (number, line)) in lines.iter().enumerate() {
        match TrialRecord::parse_line(line) {
            Ok(record) => records.push(record),
            Err(e) if position + 1 == lines.len() => {
                warning = Some(format!(
                    "{}:{}: dropping torn final journal line ({e})",
                    path.display(),
                    number + 1
                ));
            }
            Err(e) => {
                return Err(LabError::config(format!(
                    "{}:{}: corrupt journal: {e}",
                    path.display(),
                    number + 1
                )))
            }
        }
    }
    Ok((records, warning))
}

/// Rewrites the journal to exactly `records` (used to repair a torn tail
/// before appending resumes).
fn rewrite_journal(path: &Path, records: &[TrialRecord]) -> Result<(), LabError> {
    let mut text = String::new();
    for record in records {
        text.push_str(&record.to_line());
        text.push('\n');
    }
    std::fs::write(path, text).map_err(|e| LabError::io(path, e))
}

/// Appends `records` to the journal, one canonical line each, creating the
/// file if needed.
///
/// # Errors
///
/// [`LabError::Io`] when the file cannot be opened or written.
pub fn append_records(path: &Path, records: &[TrialRecord]) -> Result<(), LabError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| LabError::io(path, e))?;
    for record in records {
        writeln!(file, "{}", record.to_line()).map_err(|e| LabError::io(path, e))?;
    }
    file.flush().map_err(|e| LabError::io(path, e))
}

/// Merges journal files: the union of their records, deduplicated by trial
/// id, in canonical (byte-wise sorted) line order. Merging the journals of
/// an `i/N`-sharded run reproduces the single-process journal's canonical
/// sort bit-identically.
///
/// # Errors
///
/// [`LabError::Config`] when two inputs disagree about a trial id's record
/// (same id, different bytes) or any line is malformed.
pub fn merge_journal_lines(inputs: &[(String, String)]) -> Result<Vec<String>, LabError> {
    let mut by_id: HashMap<String, String> = HashMap::new();
    let mut lines = Vec::new();
    for (source, text) in inputs {
        for (index, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let record = TrialRecord::parse_line(raw)
                .map_err(|e| LabError::config(format!("{source}:{}: {e}", index + 1)))?;
            let line = record.to_line();
            match by_id.get(&record.trial_id) {
                None => {
                    by_id.insert(record.trial_id.clone(), line.clone());
                    lines.push(line);
                }
                Some(existing) if *existing == line => {}
                Some(_) => {
                    return Err(LabError::config(format!(
                        "{source}:{}: conflicting records for trial {}",
                        index + 1,
                        record.trial_id
                    )))
                }
            }
        }
    }
    lines.sort();
    Ok(lines)
}

// ---------------------------------------------------------------------------
// Spec resolution
// ---------------------------------------------------------------------------

/// Resolves one planned trial into its effective [`RunSpec`]:
/// `defaults ⊕ resolved-task-spec ⊕ variant.delta` under RFC 7386 merge,
/// named `task/variant#repeat` (presentation only — the name is excluded
/// from the spec's cache key, so repeats share one service execution).
///
/// # Errors
///
/// [`LabError`] for unresolvable campaign refs and specs the merge leaves
/// malformed.
pub fn resolve_trial_spec(
    trial: &PlannedTrial,
    defaults: Option<&Value>,
    base_dir: &Path,
) -> Result<RunSpec, LabError> {
    let context = |e: LabError| {
        LabError::config(format!(
            "trial {} (task `{}`, variant `{}`): {e}",
            trial.trial_id, trial.task_id, trial.variant
        ))
    };
    let spec = resolve_payload(&trial.payload, base_dir).map_err(context)?;
    // The canonical form drops unset optionals; merging the raw serialized
    // form instead would let its explicit nulls delete defaults (RFC 7386
    // treats null as removal).
    let task_value = serde_json::parse(&spec.canonical_json()).expect("canonical JSON parses");
    let mut effective = task_value;
    if let Some(defaults) = defaults {
        effective = json_merge(defaults, &effective);
    }
    if let Some(delta) = &trial.delta {
        effective = json_merge(&effective, delta);
    }
    let spec: RunSpec = serde_json::from_value(&effective)
        .map_err(|e| context(LabError::config(format!("merged spec is invalid: {e}"))))?;
    Ok(spec.with_name(format!("{}/{}#{}", trial.task_id, trial.variant, trial.repeat)))
}

// ---------------------------------------------------------------------------
// The run itself
// ---------------------------------------------------------------------------

/// Options of one `lab run` invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Restrict execution to one shard of the plan.
    pub shard: Option<Shard>,
    /// Stop after this many newly executed trials (the kill half of the
    /// kill-and-resume contract, in controllable form).
    pub halt_after: Option<usize>,
}

/// What one `lab run` invocation did.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Trials in the full plan.
    pub planned: usize,
    /// Trials this invocation was responsible for (the shard's slice).
    pub in_scope: usize,
    /// Of those, already journaled before this invocation.
    pub journaled: usize,
    /// Newly executed (and journaled) by this invocation.
    pub executed: usize,
    /// Of the newly executed, how many recorded an `error` outcome.
    pub errors: usize,
    /// Whether the run stopped at `halt_after` with work remaining.
    pub halted: bool,
    /// Whether analysis tables were (re)written — true only when the
    /// journal covers the *full* plan, so shard journals never emit
    /// partial tables.
    pub analysis_written: bool,
    /// Non-fatal warnings (e.g. a repaired torn journal line).
    pub warnings: Vec<String>,
}

/// Phase metrics of the built-in harness, journaled per successful trial.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct PhaseMetrics {
    method: String,
    forward_s: f64,
    backward_s: f64,
    update_s: f64,
    total_s: f64,
}

/// The journal record of one executed trial.
pub(crate) fn record_for(trial: &PlannedTrial, result: Result<RunOutcome, String>) -> TrialRecord {
    match result {
        Ok(outcome) => TrialRecord {
            trial_id: trial.trial_id.clone(),
            task_id: trial.task_id.clone(),
            variant: trial.variant.clone(),
            repeat: trial.repeat,
            outcome: "success".to_string(),
            objective: Some(Objective {
                name: "iteration_s".to_string(),
                value: outcome.report.total_s(),
            }),
            metrics: to_value(&PhaseMetrics {
                method: outcome.method,
                forward_s: outcome.report.forward_s,
                backward_s: outcome.report.backward_s,
                update_s: outcome.report.update_s,
                total_s: outcome.report.total_s(),
            }),
            error: None,
        },
        Err(message) => TrialRecord {
            trial_id: trial.trial_id.clone(),
            task_id: trial.task_id.clone(),
            variant: trial.variant.clone(),
            repeat: trial.repeat,
            outcome: "error".to_string(),
            objective: None,
            metrics: Value::Object(Vec::new()),
            error: Some(message),
        },
    }
}

/// Runs (or resumes) an experiment: plans the matrix, skips journaled
/// trials, executes the rest through `executor`, appends journal records,
/// and — when the journal covers the whole plan — writes the analysis
/// tables under `out_dir/analysis/`.
///
/// # Errors
///
/// [`LabError`] for unloadable inputs, corrupt journals, and output I/O
/// failures. Per-trial failures do *not* error the run; they are journaled
/// as `error` records and counted in [`RunSummary::errors`].
pub fn run_experiment(
    experiment: &Path,
    out_dir: &Path,
    options: &RunOptions,
    executor: &mut dyn Executor,
) -> Result<RunSummary, LabError> {
    let (paths, config) = ExperimentPaths::resolve(experiment)?;
    let tasks = load_tasks(&paths.tasks)?;
    let plan = plan_trials(&tasks, &config);

    std::fs::create_dir_all(out_dir).map_err(|e| LabError::io(out_dir, e))?;
    let journal_path = out_dir.join(JOURNAL_FILE);
    let (mut records, torn) = read_journal(&journal_path)?;
    let mut warnings = Vec::new();
    if let Some(message) = torn {
        rewrite_journal(&journal_path, &records)?;
        warnings.push(message);
    }
    let done: HashSet<String> = records.iter().map(|r| r.trial_id.clone()).collect();

    let in_scope: Vec<&PlannedTrial> =
        plan.iter().filter(|t| options.shard.map_or(true, |s| s.owns(t.index))).collect();
    let journaled = in_scope.iter().filter(|t| done.contains(&t.trial_id)).count();
    let mut pending: Vec<&PlannedTrial> =
        in_scope.iter().copied().filter(|t| !done.contains(&t.trial_id)).collect();
    let halted = match options.halt_after {
        Some(limit) if pending.len() > limit => {
            pending.truncate(limit);
            true
        }
        _ => false,
    };

    // Resolve every pending trial's spec; resolution failures become error
    // records right away, successes go to the executor.
    let mut executed = Vec::with_capacity(pending.len());
    let mut batch = Vec::new();
    for trial in &pending {
        match resolve_trial_spec(trial, config.defaults.as_ref(), &paths.base_dir) {
            Ok(spec) => batch.push(((*trial).clone(), spec)),
            Err(e) => executed.push(record_for(trial, Err(e.to_string()))),
        }
    }
    let outcomes = if batch.is_empty() { Vec::new() } else { executor.execute(&batch) };
    debug_assert_eq!(outcomes.len(), batch.len(), "executor must answer every trial");
    for ((trial, _), outcome) in batch.iter().zip(outcomes) {
        executed.push(record_for(trial, outcome));
    }
    // Journal in plan order so straight-through journals need no sort to
    // compare; the resume/shard comparisons go through canonical sort.
    executed.sort_by_key(|record| {
        pending
            .iter()
            .position(|t| t.trial_id == record.trial_id)
            .expect("executed records come from the pending list")
    });
    append_records(&journal_path, &executed)?;
    let errors = executed.iter().filter(|r| !r.is_success()).count();
    records.extend(executed.iter().cloned());

    // Analysis: only once the journal covers the full plan (a shard run of
    // N > 1 never does on its own; merge the journals first).
    let by_id: HashMap<&str, &TrialRecord> =
        records.iter().map(|r| (r.trial_id.as_str(), r)).collect();
    let complete = plan.iter().all(|t| by_id.contains_key(t.trial_id.as_str()));
    let analysis_written = if complete {
        let tables = analysis_tables(&plan, &records)?;
        crate::write_analysis(&out_dir.join(ANALYSIS_DIR), &tables)?;
        true
    } else {
        false
    };

    Ok(RunSummary {
        planned: plan.len(),
        in_scope: in_scope.len(),
        journaled,
        executed: executed.len(),
        errors,
        halted,
        analysis_written,
        warnings,
    })
}
