//! End-to-end contract tests of the `lab` experiment runner: plan purity,
//! shard-union bit-identity, kill-and-resume byte-identity, and agreement
//! with the pre-existing `Campaign` front door over the checked-in specs.

use lab::{
    merge_journal_lines, plan_trials, run_experiment, ExperimentConfig, FixedExecutor, RunOptions,
    Shard, Task,
};
use proptest::prelude::*;
use smart_infinity::{Campaign, MachineSpec};
use std::path::{Path, PathBuf};

const MINI: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/experiments/mini");
const LADDER: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/experiments/ladder");
const HETERO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/experiments/hetero");
const LADDER_CAMPAIGN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/ladder.json");

/// A fresh per-test scratch directory under the system temp dir (the
/// workspace has no tempfile crate; the process id plus a per-test tag keeps
/// parallel test binaries apart).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lab-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn sorted_lines(text: &str) -> Vec<String> {
    let mut lines: Vec<String> =
        text.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect();
    lines.sort();
    lines
}

// ---------------------------------------------------------------------------
// Plan purity
// ---------------------------------------------------------------------------

proptest! {
    /// Planning is a pure function of the experiment inputs: re-planning
    /// yields the same ids, and so does re-expressing the same task and
    /// config documents with their keys in a different order.
    #[test]
    fn plan_is_pure_and_key_order_invariant(
        seed in 0u64..1_000_000,
        repeats in 1usize..4,
        devices in 1usize..64,
    ) {
        let task_a = Task::parse_line(&format!(
            r#"{{"task_id": "t", "model": "GPT2-0.34B", "machine": {{"devices": {devices}}}}}"#
        )).expect("task parses");
        let task_b = Task::parse_line(&format!(
            r#"{{"machine": {{"devices": {devices}}}, "model": "GPT2-0.34B", "task_id": "t"}}"#
        )).expect("reordered task parses");

        let config_a = ExperimentConfig::from_value(&serde_json::parse(&format!(
            r#"{{"name": "p", "seed": {seed}, "repeats": {repeats},
                 "defaults": {{"threads": 2}},
                 "variants": [{{"name": "v", "delta": {{"method": {{"overlap": true}}}}}}]}}"#
        )).expect("json")).expect("config");
        let config_b = ExperimentConfig::from_value(&serde_json::parse(&format!(
            r#"{{"variants": [{{"delta": {{"method": {{"overlap": true}}}}, "name": "v"}}],
                 "defaults": {{"threads": 2}},
                 "repeats": {repeats}, "seed": {seed}, "name": "p"}}"#
        )).expect("json")).expect("reordered config");

        let ids = |tasks: &[Task], config: &ExperimentConfig| -> Vec<String> {
            plan_trials(tasks, config).into_iter().map(|t| t.trial_id).collect()
        };
        let reference = ids(std::slice::from_ref(&task_a), &config_a);
        prop_assert_eq!(reference.len(), repeats);
        // Purity: same inputs, same plan.
        prop_assert_eq!(&reference, &ids(std::slice::from_ref(&task_a), &config_a));
        // Key order of the task and config documents is immaterial.
        prop_assert_eq!(&reference, &ids(std::slice::from_ref(&task_b), &config_a));
        prop_assert_eq!(&reference, &ids(&[task_a], &config_b));
        prop_assert_eq!(&reference, &ids(&[task_b], &config_b));
    }

    /// For every shard count the ISSUE pins (N ∈ {1, 2, 3, 5}), the shards'
    /// slices are disjoint and their union is exactly the full plan.
    #[test]
    fn shards_partition_every_plan(
        tasks_n in 1usize..4,
        variants_n in 1usize..4,
        repeats in 1usize..4,
    ) {
        let tasks: Vec<Task> = (0..tasks_n)
            .map(|i| {
                Task::parse_line(&format!(r#"{{"task_id": "t{i}", "model": "GPT2-0.34B"}}"#))
                    .expect("task parses")
            })
            .collect();
        let variants: Vec<String> =
            (0..variants_n).map(|i| format!(r#"{{"name": "v{i}"}}"#)).collect();
        let config = ExperimentConfig::from_value(&serde_json::parse(&format!(
            r#"{{"name": "p", "repeats": {repeats}, "variants": [{}]}}"#,
            variants.join(", ")
        )).expect("json")).expect("config");
        let plan = plan_trials(&tasks, &config);
        prop_assert_eq!(plan.len(), tasks_n * variants_n * repeats);
        for count in [1usize, 2, 3, 5] {
            let mut owned = vec![0usize; plan.len()];
            for index in 0..count {
                let shard = Shard { index, count };
                for trial in plan.iter().filter(|t| shard.owns(t.index)) {
                    owned[trial.index] += 1;
                }
            }
            prop_assert!(owned.iter().all(|&n| n == 1), "shards {count}: {owned:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Journal-level shard and resume identity (synthetic executor)
// ---------------------------------------------------------------------------

/// Runs the checked-in mini experiment straight through, then as N shard
/// processes for each N the ISSUE pins; the merged shard journals must be
/// bit-identical to the canonical sort of the single-process journal.
#[test]
fn shard_journals_merge_bit_identical_to_straight_run() {
    let straight = scratch("shard-straight");
    let summary =
        run_experiment(Path::new(MINI), &straight, &RunOptions::default(), &mut FixedExecutor)
            .expect("straight run");
    assert_eq!(summary.executed, summary.planned);
    assert_eq!(summary.errors, 0);
    assert!(summary.analysis_written);
    let reference = sorted_lines(&read(&straight.join("trials.jsonl")));

    for count in [1usize, 2, 3, 5] {
        let mut inputs = Vec::new();
        for index in 0..count {
            let out = scratch(&format!("shard-{index}of{count}"));
            let options = RunOptions { shard: Some(Shard { index, count }), halt_after: None };
            let summary = run_experiment(Path::new(MINI), &out, &options, &mut FixedExecutor)
                .expect("shard run");
            assert_eq!(summary.executed, summary.in_scope);
            // A shard of a multi-process run must never write partial tables.
            assert_eq!(summary.analysis_written, count == 1);
            inputs.push((format!("{index}/{count}"), read(&out.join("trials.jsonl"))));
        }
        let merged = merge_journal_lines(&inputs).expect("merge");
        assert_eq!(merged, reference, "merge of {count} shard journals");
    }
}

/// Kill-and-resume: a run halted after 4 fresh trials, resumed to completion,
/// and re-invoked once more must re-execute zero trials, and both the journal
/// and the analysis tables must be byte-identical to an uninterrupted run.
#[test]
fn resume_reexecutes_nothing_and_reproduces_analysis_bytes() {
    let straight = scratch("resume-straight");
    run_experiment(Path::new(MINI), &straight, &RunOptions::default(), &mut FixedExecutor)
        .expect("straight run");

    let resumed = scratch("resume-killed");
    let halted = run_experiment(
        Path::new(MINI),
        &resumed,
        &RunOptions { shard: None, halt_after: Some(4) },
        &mut FixedExecutor,
    )
    .expect("halted run");
    assert!(halted.halted);
    assert_eq!(halted.executed, 4);
    assert!(!halted.analysis_written);

    let finish =
        run_experiment(Path::new(MINI), &resumed, &RunOptions::default(), &mut FixedExecutor)
            .expect("resume run");
    assert_eq!(finish.journaled, 4);
    assert_eq!(finish.executed, finish.planned - 4);
    assert!(finish.analysis_written);

    let idle =
        run_experiment(Path::new(MINI), &resumed, &RunOptions::default(), &mut FixedExecutor)
            .expect("idempotent re-run");
    assert_eq!(idle.executed, 0, "a finished journal must re-execute zero trials");
    assert_eq!(idle.journaled, idle.planned);

    // The resumed journal is plan-ordered like the straight one — identical
    // without any sort — and the analysis tables match byte for byte.
    assert_eq!(read(&resumed.join("trials.jsonl")), read(&straight.join("trials.jsonl")));
    for table in ["variants.jsonl", "variant_tasks.jsonl"] {
        assert_eq!(
            read(&resumed.join("analysis").join(table)),
            read(&straight.join("analysis").join(table)),
            "analysis table {table}"
        );
    }
}

// ---------------------------------------------------------------------------
// Agreement with the existing front doors (real executor)
// ---------------------------------------------------------------------------

/// The ladder experiment re-expresses `specs/ladder.json` through the harness
/// contract (each task a campaign ref); its journaled objectives must be
/// bit-identical to `Campaign::run` over the same file.
#[test]
fn lab_ladder_objectives_match_campaign_run_bit_for_bit() {
    let out = scratch("ladder");
    let mut executor = lab::ServiceExecutor::new(2);
    let summary = run_experiment(Path::new(LADDER), &out, &RunOptions::default(), &mut executor)
        .expect("ladder run");
    assert_eq!(summary.errors, 0);
    assert!(summary.analysis_written);

    let campaign = Campaign::from_json(&read(Path::new(LADDER_CAMPAIGN))).expect("campaign");
    let report = campaign.run().expect("campaign runs");
    assert_eq!(report.runs.len(), summary.planned);

    let (records, warning) = lab::read_journal(&out.join("trials.jsonl")).expect("journal");
    assert!(warning.is_none());
    // The tasks file lists the rungs in campaign order (indices 0..6), and
    // the plan is task-major, so record i corresponds to campaign run i.
    for (record, run) in records.iter().zip(&report.runs) {
        let objective = record.objective.as_ref().expect("success record");
        assert_eq!(objective.name, "iteration_s");
        assert_eq!(
            objective.value,
            run.report.total_s(),
            "task `{}` vs campaign `{}`",
            record.task_id,
            run.label
        );
    }
}

/// The hetero tasks file must stay pinned to the machine presets: drifting
/// the checked-in JSON away from `preset_sg2042` / `preset_sakuraone_cluster`
/// would silently change what the experiment measures.
#[test]
fn hetero_tasks_pin_the_machine_presets() {
    let tasks =
        lab::runner::load_tasks(&Path::new(HETERO).join("tasks.jsonl")).expect("tasks load");
    let expected: &[(&str, MachineSpec)] = &[
        ("sg2042", MachineSpec::preset_sg2042()),
        ("sakuraone", MachineSpec::preset_sakuraone_cluster()),
    ];
    assert_eq!(tasks.len(), expected.len());
    for ((task, (id, machine)), base_dir) in
        tasks.iter().zip(expected).zip(std::iter::repeat(Path::new(HETERO)))
    {
        assert_eq!(task.task_id, *id);
        let spec = lab::contract::resolve_payload(&task.payload, base_dir).expect("resolves");
        assert_eq!(&spec.machine, machine, "task `{id}`");
    }
}
