//! # ssd — NVMe SSD model and RAID0 striping
//!
//! Storage-offloaded training keeps the optimizer states (and, between
//! backward and update, the gradients) on NVMe SSDs. This crate models the
//! SSD at the two levels the rest of the workspace needs:
//!
//! * **Functional**: [`SsdDevice`] is a byte-accurate named-region store with
//!   capacity accounting. The functional training engines in `ztrain` and
//!   `smart_infinity` really write optimizer states into it and read them
//!   back, so numerical equivalence tests exercise the same dataflow as the
//!   paper's system.
//! * **Timed**: [`BandwidthProfile`] captures the asymmetric sequential
//!   read/write bandwidth of the device (the paper's Fig. 14 shows writes
//!   noticeably slower than reads, which is one reason gradient offload hurts).
//!   [`BandwidthProfile::install`] registers per-direction *media links* in a
//!   [`simkit::Simulation`]; the engines append those links to a flow's path
//!   so an SSD transfer is limited by both the PCIe path and the NAND media.
//! * **RAID0**: [`RaidArray`] stripes a logical region across several
//!   devices, reproducing the baseline's software-RAID configuration.
//!
//! Devices are fail-free unless a `faultkit` plan is installed: transient
//! per-operation faults ([`SsdError::Injected`]), wear-out to read-only media
//! ([`SsdError::WornOut`]) and RAID-style rebuild onto a replacement
//! ([`SsdDevice::rebuild`], [`RaidArray::rebuild_member`]) model the failure
//! scenarios the recovery policies in `ztrain` are tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod error;
mod raid;
mod store;

pub use bandwidth::{BandwidthProfile, MediaLinks};
pub use error::SsdError;
pub use raid::{RaidArray, StorageCounters};
pub use store::SsdDevice;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_and_timed_views_compose() {
        // Functional: write a region and read it back.
        let mut ssd = SsdDevice::new("ssd0", 1 << 20);
        ssd.write_region("opt_state", vec![7u8; 1000]).unwrap();
        assert_eq!(ssd.read_region("opt_state").unwrap().len(), 1000);

        // Timed: the same device described by its bandwidth profile.
        let mut sim = simkit::Simulation::new();
        let media = BandwidthProfile::smartssd_nvme().install(&mut sim, "ssd0");
        let read = sim.flow(simkit::FlowSpec::new(vec![media.read], 3.3e9));
        let write = sim.flow(simkit::FlowSpec::new(vec![media.write], 2.6e9));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(read) - 1.0).abs() < 1e-6);
        assert!((tl.finish_time(write) - 1.0).abs() < 1e-6);
    }
}
