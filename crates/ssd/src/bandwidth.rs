//! Timed SSD model: asymmetric read/write media bandwidth.

use serde::{Deserialize, Serialize};
use simkit::{LinkId, Simulation};

/// Sequential bandwidth characteristics of one NVMe device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthProfile {
    /// Sequential read bandwidth in bytes/second.
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes/second.
    pub write_bytes_per_sec: f64,
}

/// The per-direction media links registered for one device.
///
/// A flow that *reads from* the SSD should include `read` in its path; a flow
/// that *writes to* the SSD should include `write`. Because simkit links are
/// shared capacities, concurrent reads (or writes) to the same device contend
/// with each other while reads and writes of different devices do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaLinks {
    /// Link modelling the device's read bandwidth.
    pub read: LinkId,
    /// Link modelling the device's write bandwidth.
    pub write: LinkId,
}

impl BandwidthProfile {
    /// Creates a profile from explicit bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not strictly positive and finite.
    pub fn new(read_bytes_per_sec: f64, write_bytes_per_sec: f64) -> Self {
        assert!(
            read_bytes_per_sec.is_finite() && read_bytes_per_sec > 0.0,
            "read bandwidth must be positive"
        );
        assert!(
            write_bytes_per_sec.is_finite() && write_bytes_per_sec > 0.0,
            "write bandwidth must be positive"
        );
        Self { read_bytes_per_sec, write_bytes_per_sec }
    }

    /// The NVMe SSD inside a SmartSSD (read ≈ 3.3 GB/s, write ≈ 2.6 GB/s,
    /// following the SSD bars of the paper's Fig. 14).
    pub fn smartssd_nvme() -> Self {
        Self::new(3.3e9, 2.6e9)
    }

    /// Registers the read and write media links for one device.
    pub fn install(&self, sim: &mut Simulation, device_name: &str) -> MediaLinks {
        let read = sim.add_link(format!("{device_name}-media-read"), self.read_bytes_per_sec);
        let write = sim.add_link(format!("{device_name}-media-write"), self.write_bytes_per_sec);
        MediaLinks { read, write }
    }
}

impl Default for BandwidthProfile {
    fn default() -> Self {
        Self::smartssd_nvme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::FlowSpec;

    #[test]
    fn default_profile_matches_smartssd_numbers() {
        let p = BandwidthProfile::default();
        assert_eq!(p.read_bytes_per_sec, 3.3e9);
        assert_eq!(p.write_bytes_per_sec, 2.6e9);
        assert!(p.read_bytes_per_sec > p.write_bytes_per_sec);
    }

    #[test]
    fn reads_and_writes_use_independent_capacities() {
        let mut sim = Simulation::new();
        let media = BandwidthProfile::new(10.0, 5.0).install(&mut sim, "d");
        let r = sim.flow(FlowSpec::new(vec![media.read], 100.0));
        let w = sim.flow(FlowSpec::new(vec![media.write], 100.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(r) - 10.0).abs() < 1e-9);
        assert!((tl.finish_time(w) - 20.0).abs() < 1e-9);
        // They ran concurrently: the makespan is the max, not the sum.
        assert!((tl.makespan() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_reads_share_the_media() {
        let mut sim = Simulation::new();
        let media = BandwidthProfile::new(10.0, 5.0).install(&mut sim, "d");
        let a = sim.flow(FlowSpec::new(vec![media.read], 50.0));
        let b = sim.flow(FlowSpec::new(vec![media.read], 50.0));
        let tl = sim.run().unwrap();
        assert!((tl.finish_time(a) - 10.0).abs() < 1e-9);
        assert!((tl.finish_time(b) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "read bandwidth")]
    fn invalid_bandwidth_panics() {
        BandwidthProfile::new(0.0, 1.0);
    }
}
