//! Error type for SSD operations.

use faultkit::InjectedFault;
use std::error::Error;
use std::fmt;

/// Errors produced by the functional SSD store and RAID array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// Writing the region would exceed the device capacity.
    CapacityExceeded {
        /// Device name.
        device: String,
        /// Bytes that would be used after the write.
        requested: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The named region does not exist on the device.
    UnknownRegion {
        /// Device name.
        device: String,
        /// Region name that was requested.
        region: String,
    },
    /// A read or write addressed bytes beyond the end of a region.
    OutOfBounds {
        /// Region name.
        region: String,
        /// Offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Size of the region.
        region_len: usize,
    },
    /// The RAID array was configured with zero member devices.
    EmptyArray,
    /// A fault plan injected a transient failure into this operation.
    /// Transient faults heal under bounded retry (see `faultkit`).
    Injected {
        /// Device name.
        device: String,
        /// The injected fault.
        fault: InjectedFault,
    },
    /// The device's flash has worn out: the media is read-only and every
    /// write fails until the device is rebuilt onto a replacement.
    WornOut {
        /// Device name.
        device: String,
    },
}

impl SsdError {
    /// Whether bounded retry can clear this error (only injected transient
    /// faults heal on their own; everything else needs a different recovery).
    pub fn is_transient(&self) -> bool {
        matches!(self, SsdError::Injected { .. })
    }
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::CapacityExceeded { device, requested, capacity } => write!(
                f,
                "capacity exceeded on {device}: requested {requested} bytes of {capacity}"
            ),
            SsdError::UnknownRegion { device, region } => {
                write!(f, "unknown region {region} on device {device}")
            }
            SsdError::OutOfBounds { region, offset, len, region_len } => write!(
                f,
                "access [{offset}, {}) out of bounds for region {region} of {region_len} bytes",
                offset + len
            ),
            SsdError::EmptyArray => write!(f, "RAID array must contain at least one device"),
            SsdError::Injected { device, fault } => {
                write!(f, "transient fault on {device}: {fault}")
            }
            SsdError::WornOut { device } => {
                write!(f, "device {device} has worn out (read-only media; rebuild required)")
            }
        }
    }
}

impl Error for SsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SsdError::Injected { fault, .. } => Some(fault),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = SsdError::CapacityExceeded { device: "ssd0".into(), requested: 10, capacity: 5 };
        assert!(e.to_string().contains("ssd0"));
        let e = SsdError::UnknownRegion { device: "ssd1".into(), region: "grad".into() };
        assert!(e.to_string().contains("grad"));
        let e = SsdError::OutOfBounds { region: "p".into(), offset: 4, len: 8, region_len: 6 };
        assert!(e.to_string().contains("out of bounds"));
        assert!(SsdError::EmptyArray.to_string().contains("at least one"));
        let e = SsdError::WornOut { device: "ssd2".into() };
        assert!(e.to_string().contains("worn out"));
        assert!(!e.is_transient());
        assert!(e.source().is_none());
    }

    #[test]
    fn injected_faults_are_transient_and_chain_their_source() {
        let fault = InjectedFault {
            device: 3,
            kind: faultkit::FaultOpKind::Write,
            op_index: 12,
            remaining: 1,
        };
        let e = SsdError::Injected { device: "ssd3".into(), fault };
        assert!(e.is_transient());
        assert!(e.to_string().contains("transient fault on ssd3"));
        let source = e.source().expect("injected fault chains its source");
        assert!(source.downcast_ref::<InjectedFault>().is_some());
    }
}
