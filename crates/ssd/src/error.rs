//! Error type for SSD operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the functional SSD store and RAID array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// Writing the region would exceed the device capacity.
    CapacityExceeded {
        /// Device name.
        device: String,
        /// Bytes that would be used after the write.
        requested: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The named region does not exist on the device.
    UnknownRegion {
        /// Device name.
        device: String,
        /// Region name that was requested.
        region: String,
    },
    /// A read or write addressed bytes beyond the end of a region.
    OutOfBounds {
        /// Region name.
        region: String,
        /// Offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Size of the region.
        region_len: usize,
    },
    /// The RAID array was configured with zero member devices.
    EmptyArray,
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::CapacityExceeded { device, requested, capacity } => write!(
                f,
                "capacity exceeded on {device}: requested {requested} bytes of {capacity}"
            ),
            SsdError::UnknownRegion { device, region } => {
                write!(f, "unknown region {region} on device {device}")
            }
            SsdError::OutOfBounds { region, offset, len, region_len } => write!(
                f,
                "access [{offset}, {}) out of bounds for region {region} of {region_len} bytes",
                offset + len
            ),
            SsdError::EmptyArray => write!(f, "RAID array must contain at least one device"),
        }
    }
}

impl Error for SsdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = SsdError::CapacityExceeded { device: "ssd0".into(), requested: 10, capacity: 5 };
        assert!(e.to_string().contains("ssd0"));
        let e = SsdError::UnknownRegion { device: "ssd1".into(), region: "grad".into() };
        assert!(e.to_string().contains("grad"));
        let e = SsdError::OutOfBounds { region: "p".into(), offset: 4, len: 8, region_len: 6 };
        assert!(e.to_string().contains("out of bounds"));
        assert!(SsdError::EmptyArray.to_string().contains("at least one"));
    }
}
