//! RAID0 striping across multiple SSD devices.
//!
//! The paper's baseline combines SSDs with Linux software RAID0 (mdadm). The
//! useful properties for this reproduction are (a) the striping function —
//! how a logical byte range maps to per-device ranges — and (b) the byte
//! accounting: a B-byte logical transfer becomes ~B/N bytes on each of the N
//! devices, which is what makes the aggregate bandwidth scale until the
//! shared host interconnect saturates (Fig. 3b).

use crate::error::SsdError;
use crate::store::SsdDevice;
use faultkit::FaultPlan;

/// A point-in-time snapshot of an array's cumulative byte counters.
///
/// Snapshot before and after an operation and subtract with
/// [`StorageCounters::delta_since`] to attribute traffic to that operation —
/// this is how the per-step telemetry in `ztrain`'s `StepReport` is produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    /// Cumulative bytes read across all member devices.
    pub bytes_read: u64,
    /// Cumulative bytes written across all member devices.
    pub bytes_written: u64,
}

impl StorageCounters {
    /// The traffic accrued between `earlier` and `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` was taken after `self` (counters are monotone).
    pub fn delta_since(&self, earlier: &StorageCounters) -> StorageCounters {
        StorageCounters {
            bytes_read: self
                .bytes_read
                .checked_sub(earlier.bytes_read)
                .expect("counter snapshots out of order"),
            bytes_written: self
                .bytes_written
                .checked_sub(earlier.bytes_written)
                .expect("counter snapshots out of order"),
        }
    }
}

/// A RAID0 array: a stripe layout over a set of member devices.
#[derive(Debug, Clone)]
pub struct RaidArray {
    devices: Vec<SsdDevice>,
    stripe_bytes: usize,
}

impl RaidArray {
    /// Creates an array over the given member devices with the given stripe
    /// (chunk) size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::EmptyArray`] if `devices` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_bytes` is zero.
    pub fn new(devices: Vec<SsdDevice>, stripe_bytes: usize) -> Result<Self, SsdError> {
        if devices.is_empty() {
            return Err(SsdError::EmptyArray);
        }
        assert!(stripe_bytes > 0, "stripe size must be positive");
        Ok(Self { devices, stripe_bytes })
    }

    /// Number of member devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Stripe (chunk) size in bytes.
    pub fn stripe_bytes(&self) -> usize {
        self.stripe_bytes
    }

    /// Immutable access to the member devices.
    pub fn devices(&self) -> &[SsdDevice] {
        &self.devices
    }

    /// Installs a per-member transient-fault injector on every device, with
    /// the plan's retry budget applied *per member operation*.
    ///
    /// Member-level retry matters because logical RAID operations stripe over
    /// several devices: retrying the whole logical operation would replay
    /// already-succeeded member ops at fresh op indices where new fault
    /// bursts can fire, so a bounded outer budget could never be guaranteed
    /// to converge. A single member op retried in place re-sees the same
    /// deterministic decision, whose burst is validated to stay below the
    /// budget.
    pub fn install_fault_injectors(&mut self, plan: &FaultPlan) {
        for (i, device) in self.devices.iter_mut().enumerate() {
            device.set_fault_injector(plan.injector(i as u64));
            device.set_retry_budget(plan.max_retries());
        }
    }

    /// Drains the accumulated `(retries, modeled backoff ms)` every member
    /// spent absorbing transient faults since the last call.
    pub fn take_fault_events(&mut self) -> (u64, u64) {
        self.devices
            .iter_mut()
            .map(SsdDevice::take_fault_events)
            .fold((0, 0), |(retries, backoff), (r, b)| (retries + r, backoff + b))
    }

    /// Suspends (or resumes) transient-fault injection on every member — see
    /// [`SsdDevice::suspend_faults`].
    pub fn suspend_faults(&mut self, suspended: bool) {
        for device in &mut self.devices {
            device.suspend_faults(suspended);
        }
    }

    /// Wears out member `index` (writes to it fail until it is rebuilt).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn inject_wearout(&mut self, index: usize) {
        self.devices[index].inject_wearout();
    }

    /// The lowest-indexed worn-out member, if any.
    pub fn worn_member(&self) -> Option<usize> {
        self.devices.iter().position(SsdDevice::is_worn_out)
    }

    /// Rebuilds member `index` onto a replacement device, migrating its
    /// regions and accounting the rebuild traffic. Returns the bytes moved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rebuild_member(&mut self, index: usize) -> u64 {
        self.devices[index].rebuild()
    }

    /// How many bytes of a `total`-byte logical region land on each device.
    pub fn bytes_per_device(&self, total: usize) -> Vec<usize> {
        let n = self.devices.len();
        let full_stripes = total / self.stripe_bytes;
        let remainder = total % self.stripe_bytes;
        let mut per_device = vec![(full_stripes / n) * self.stripe_bytes; n];
        for d in per_device.iter_mut().take(full_stripes % n) {
            *d += self.stripe_bytes;
        }
        if remainder > 0 {
            per_device[full_stripes % n] += remainder;
        }
        per_device
    }

    /// Writes a logical region, striping it across the member devices.
    ///
    /// # Errors
    ///
    /// Propagates capacity errors from the member devices.
    pub fn write_region(&mut self, region: &str, data: &[u8]) -> Result<(), SsdError> {
        let n = self.devices.len();
        let mut per_device: Vec<Vec<u8>> = vec![Vec::new(); n];
        for (i, chunk) in data.chunks(self.stripe_bytes).enumerate() {
            per_device[i % n].extend_from_slice(chunk);
        }
        for (device, shard) in self.devices.iter_mut().zip(per_device) {
            device.write_region(region, shard)?;
        }
        Ok(())
    }

    /// Reads a logical region back, reassembling the stripes.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] if any member lacks the region.
    pub fn read_region(&mut self, region: &str) -> Result<Vec<u8>, SsdError> {
        let n = self.devices.len();
        let shards: Vec<Vec<u8>> =
            self.devices.iter_mut().map(|d| d.read_region(region)).collect::<Result<_, _>>()?;
        let total: usize = shards.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        let mut offsets = vec![0usize; n];
        let mut device = 0usize;
        while out.len() < total {
            let shard = &shards[device];
            let off = offsets[device];
            if off < shard.len() {
                let take = self.stripe_bytes.min(shard.len() - off);
                out.extend_from_slice(&shard[off..off + take]);
                offsets[device] += take;
            }
            device = (device + 1) % n;
        }
        Ok(out)
    }

    /// Total bytes written across all members (for traffic accounting).
    pub fn total_bytes_written(&self) -> u64 {
        self.devices.iter().map(SsdDevice::bytes_written).sum()
    }

    /// Total bytes read across all members.
    pub fn total_bytes_read(&self) -> u64 {
        self.devices.iter().map(SsdDevice::bytes_read).sum()
    }

    /// Both cumulative byte counters as one snapshot.
    pub fn counters(&self) -> StorageCounters {
        StorageCounters {
            bytes_read: self.total_bytes_read(),
            bytes_written: self.total_bytes_written(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn array(n: usize, stripe: usize) -> RaidArray {
        let devices = (0..n).map(|i| SsdDevice::new(format!("ssd{i}"), 1 << 24)).collect();
        RaidArray::new(devices, stripe).unwrap()
    }

    #[test]
    fn empty_array_is_rejected() {
        assert_eq!(RaidArray::new(vec![], 64).unwrap_err(), SsdError::EmptyArray);
    }

    #[test]
    fn roundtrip_reassembles_the_original_data() {
        let mut raid = array(3, 4);
        let data: Vec<u8> = (0..103u8).collect();
        raid.write_region("r", &data).unwrap();
        assert_eq!(raid.read_region("r").unwrap(), data);
        assert_eq!(raid.num_devices(), 3);
        assert_eq!(raid.stripe_bytes(), 4);
    }

    #[test]
    fn striping_balances_bytes_across_devices() {
        let raid = array(4, 10);
        let per = raid.bytes_per_device(100);
        assert_eq!(per.iter().sum::<usize>(), 100);
        assert_eq!(per, vec![30, 30, 20, 20]);
        let per = raid.bytes_per_device(7);
        assert_eq!(per, vec![7, 0, 0, 0]);
    }

    #[test]
    fn traffic_counters_aggregate_members() {
        let mut raid = array(2, 8);
        raid.write_region("x", &[0u8; 64]).unwrap();
        raid.read_region("x").unwrap();
        assert_eq!(raid.total_bytes_written(), 64);
        assert_eq!(raid.total_bytes_read(), 64);
        assert!(raid.devices().iter().all(|d| d.bytes_written() == 32));
    }

    #[test]
    fn counter_snapshots_attribute_traffic_to_an_operation() {
        let mut raid = array(2, 8);
        raid.write_region("x", &[0u8; 64]).unwrap();
        let before = raid.counters();
        assert_eq!(before, StorageCounters { bytes_read: 0, bytes_written: 64 });
        raid.read_region("x").unwrap();
        raid.write_region("y", &[0u8; 16]).unwrap();
        let delta = raid.counters().delta_since(&before);
        assert_eq!(delta, StorageCounters { bytes_read: 64, bytes_written: 16 });
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_snapshots_panic() {
        let a = StorageCounters { bytes_read: 0, bytes_written: 0 };
        let b = StorageCounters { bytes_read: 8, bytes_written: 0 };
        let _ = a.delta_since(&b);
    }

    #[test]
    fn worn_member_fails_writes_and_rebuild_restores_the_array() {
        let mut raid = array(3, 8);
        let data: Vec<u8> = (0..96u8).collect();
        raid.write_region("r", &data).unwrap();
        raid.inject_wearout(1);
        assert_eq!(raid.worn_member(), Some(1));
        // A striped write crosses the worn member and fails.
        assert!(matches!(raid.write_region("r", &data), Err(SsdError::WornOut { .. })));
        // Reads still reassemble (read-only media).
        assert_eq!(raid.read_region("r").unwrap(), data);
        let migrated = raid.rebuild_member(1);
        assert_eq!(migrated, 32);
        assert_eq!(raid.worn_member(), None);
        raid.write_region("r", &data).unwrap();
        assert_eq!(raid.read_region("r").unwrap(), data);
    }

    #[test]
    fn fault_injectors_install_per_member_and_heal_inside_the_member() {
        use faultkit::FaultSpec;
        let mut raid = array(2, 8);
        let plan =
            FaultPlan::new(FaultSpec { transient_per_mille: Some(500), ..FaultSpec::empty(3) });
        raid.install_fault_injectors(&plan);
        // Member-level retry absorbs every transient: the striped logical
        // operations all succeed, and the absorbed events are observable.
        for i in 0..100 {
            raid.write_region(&format!("r{i}"), &[0u8; 32]).unwrap();
        }
        let (retries, backoff) = raid.take_fault_events();
        assert!(retries > 0, "injectors did not fire at 50%");
        assert!(backoff >= 2 * retries, "exponential backoff starts at 2 ms");
        assert_eq!(raid.take_fault_events(), (0, 0), "events drain on read");
    }

    #[test]
    fn single_device_array_degenerates_to_the_device() {
        let mut raid = array(1, 16);
        let data: Vec<u8> = (0..50u8).collect();
        raid.write_region("r", &data).unwrap();
        assert_eq!(raid.read_region("r").unwrap(), data);
        assert_eq!(raid.bytes_per_device(50), vec![50]);
    }

    proptest! {
        /// Write/read round-trips through any array shape preserve the data,
        /// and the per-device byte split always sums to the total.
        #[test]
        fn striping_roundtrip(
            data in proptest::collection::vec(any::<u8>(), 0..2000),
            n in 1usize..8,
            stripe in 1usize..128,
        ) {
            let mut raid = array(n, stripe);
            raid.write_region("r", &data).unwrap();
            prop_assert_eq!(raid.read_region("r").unwrap(), data.clone());
            let per = raid.bytes_per_device(data.len());
            prop_assert_eq!(per.iter().sum::<usize>(), data.len());
            // Balanced within one stripe.
            let max = per.iter().max().copied().unwrap_or(0);
            let min = per.iter().min().copied().unwrap_or(0);
            prop_assert!(max - min <= stripe);
        }
    }
}
