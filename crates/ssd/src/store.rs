//! Functional SSD model: a named-region byte store with capacity accounting.

use crate::error::SsdError;
use std::collections::BTreeMap;

/// A byte-accurate model of one NVMe SSD.
///
/// Data is organised into named regions (one region per optimizer-state
/// tensor per parameter subgroup in the training engines). The device tracks
/// used capacity and rejects writes that would exceed it, mirroring the
/// pre-allocation the real system performs before training starts.
#[derive(Debug, Clone, Default)]
pub struct SsdDevice {
    name: String,
    capacity: u64,
    regions: BTreeMap<String, Vec<u8>>,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl SsdDevice {
    /// Creates an empty device with the given capacity in bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Self { name: name.into(), capacity, ..Self::default() }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored across all regions.
    pub fn used_bytes(&self) -> u64 {
        self.regions.values().map(|v| v.len() as u64).sum()
    }

    /// Number of read operations served.
    pub fn read_ops(&self) -> u64 {
        self.reads
    }

    /// Number of write operations served.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Total bytes read since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Whether the named region exists.
    pub fn has_region(&self, region: &str) -> bool {
        self.regions.contains_key(region)
    }

    /// Names of all regions in sorted order.
    pub fn region_names(&self) -> Vec<String> {
        self.regions.keys().cloned().collect()
    }

    /// Writes (creates or replaces) an entire region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::CapacityExceeded`] if the device would overflow.
    pub fn write_region(
        &mut self,
        region: impl Into<String>,
        data: Vec<u8>,
    ) -> Result<(), SsdError> {
        let region = region.into();
        let existing = self.regions.get(&region).map_or(0, |v| v.len() as u64);
        let new_used = self.used_bytes() - existing + data.len() as u64;
        if new_used > self.capacity {
            return Err(SsdError::CapacityExceeded {
                device: self.name.clone(),
                requested: new_used,
                capacity: self.capacity,
            });
        }
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        self.regions.insert(region, data);
        Ok(())
    }

    /// Overwrites a byte range inside an existing region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] or [`SsdError::OutOfBounds`].
    pub fn write_at(&mut self, region: &str, offset: usize, data: &[u8]) -> Result<(), SsdError> {
        let buf = self.regions.get_mut(region).ok_or_else(|| SsdError::UnknownRegion {
            device: self.name.clone(),
            region: region.to_string(),
        })?;
        if offset + data.len() > buf.len() {
            return Err(SsdError::OutOfBounds {
                region: region.to_string(),
                offset,
                len: data.len(),
                region_len: buf.len(),
            });
        }
        buf[offset..offset + data.len()].copy_from_slice(data);
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads an entire region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] if the region does not exist.
    pub fn read_region(&mut self, region: &str) -> Result<Vec<u8>, SsdError> {
        let data = self.regions.get(region).ok_or_else(|| SsdError::UnknownRegion {
            device: self.name.clone(),
            region: region.to_string(),
        })?;
        self.reads += 1;
        self.bytes_read += data.len() as u64;
        Ok(data.clone())
    }

    /// Reads a byte range from a region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] or [`SsdError::OutOfBounds`].
    pub fn read_at(
        &mut self,
        region: &str,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SsdError> {
        let mut out = Vec::new();
        self.read_at_into(region, offset, len, &mut out)?;
        Ok(out)
    }

    /// Reads a byte range from a region into an existing buffer, replacing
    /// its contents and reusing its allocation (the per-subgroup scratch
    /// pattern of the CSD update loop).
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] or [`SsdError::OutOfBounds`]; the
    /// buffer is left unchanged on error.
    pub fn read_at_into(
        &mut self,
        region: &str,
        offset: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), SsdError> {
        let data = self.regions.get(region).ok_or_else(|| SsdError::UnknownRegion {
            device: self.name.clone(),
            region: region.to_string(),
        })?;
        if offset + len > data.len() {
            return Err(SsdError::OutOfBounds {
                region: region.to_string(),
                offset,
                len,
                region_len: data.len(),
            });
        }
        self.reads += 1;
        self.bytes_read += len as u64;
        out.clear();
        out.extend_from_slice(&data[offset..offset + len]);
        Ok(())
    }

    /// Deletes a region, returning whether it existed.
    pub fn delete_region(&mut self, region: &str) -> bool {
        self.regions.remove(region).is_some()
    }

    /// Resets the read/write statistics (not the stored data).
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_then_read_returns_the_same_bytes() {
        let mut ssd = SsdDevice::new("ssd0", 1024);
        ssd.write_region("a", vec![1, 2, 3]).unwrap();
        assert_eq!(ssd.read_region("a").unwrap(), vec![1, 2, 3]);
        assert!(ssd.has_region("a"));
        assert!(!ssd.has_region("b"));
        assert_eq!(ssd.region_names(), vec!["a".to_string()]);
        assert_eq!(ssd.name(), "ssd0");
        assert_eq!(ssd.capacity(), 1024);
    }

    #[test]
    fn capacity_is_enforced_across_regions() {
        let mut ssd = SsdDevice::new("ssd0", 10);
        ssd.write_region("a", vec![0; 6]).unwrap();
        assert!(matches!(
            ssd.write_region("b", vec![0; 5]),
            Err(SsdError::CapacityExceeded { .. })
        ));
        // Replacing an existing region reuses its space.
        ssd.write_region("a", vec![0; 10]).unwrap();
        assert_eq!(ssd.used_bytes(), 10);
    }

    #[test]
    fn partial_reads_and_writes_address_correct_bytes() {
        let mut ssd = SsdDevice::new("ssd0", 100);
        ssd.write_region("p", (0u8..10).collect()).unwrap();
        assert_eq!(ssd.read_at("p", 2, 3).unwrap(), vec![2, 3, 4]);
        ssd.write_at("p", 8, &[99, 100]).unwrap();
        assert_eq!(ssd.read_at("p", 8, 2).unwrap(), vec![99, 100]);
        assert!(matches!(ssd.read_at("p", 9, 5), Err(SsdError::OutOfBounds { .. })));
        assert!(matches!(ssd.write_at("p", 9, &[0; 5]), Err(SsdError::OutOfBounds { .. })));
        assert!(matches!(ssd.read_at("q", 0, 1), Err(SsdError::UnknownRegion { .. })));
        assert!(matches!(ssd.write_at("q", 0, &[1]), Err(SsdError::UnknownRegion { .. })));
    }

    #[test]
    fn statistics_track_traffic() {
        let mut ssd = SsdDevice::new("ssd0", 1000);
        ssd.write_region("a", vec![0; 100]).unwrap();
        ssd.read_region("a").unwrap();
        ssd.read_at("a", 0, 10).unwrap();
        assert_eq!(ssd.write_ops(), 1);
        assert_eq!(ssd.read_ops(), 2);
        assert_eq!(ssd.bytes_written(), 100);
        assert_eq!(ssd.bytes_read(), 110);
        ssd.reset_stats();
        assert_eq!(ssd.bytes_read(), 0);
        assert_eq!(ssd.read_ops(), 0);
    }

    #[test]
    fn delete_frees_space() {
        let mut ssd = SsdDevice::new("ssd0", 10);
        ssd.write_region("a", vec![0; 10]).unwrap();
        assert!(ssd.delete_region("a"));
        assert!(!ssd.delete_region("a"));
        assert_eq!(ssd.used_bytes(), 0);
        ssd.write_region("b", vec![0; 10]).unwrap();
    }

    proptest! {
        /// Any sequence of whole-region writes followed by reads returns the
        /// most recently written data for every region.
        #[test]
        fn last_write_wins(
            writes in proptest::collection::vec((0u8..4, proptest::collection::vec(any::<u8>(), 0..64)), 1..40)
        ) {
            let mut ssd = SsdDevice::new("ssd", 1 << 20);
            let mut expected: std::collections::BTreeMap<u8, Vec<u8>> = Default::default();
            for (region, data) in writes {
                ssd.write_region(format!("r{region}"), data.clone()).unwrap();
                expected.insert(region, data);
            }
            for (region, data) in expected {
                prop_assert_eq!(ssd.read_region(&format!("r{region}")).unwrap(), data);
            }
        }
    }
}
