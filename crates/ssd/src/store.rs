//! Functional SSD model: a named-region byte store with capacity accounting.

use crate::error::SsdError;
use faultkit::{FaultInjector, FaultOpKind};
use std::collections::BTreeMap;

/// A byte-accurate model of one NVMe SSD.
///
/// Data is organised into named regions (one region per optimizer-state
/// tensor per parameter subgroup in the training engines). The device tracks
/// used capacity and rejects writes that would exceed it, mirroring the
/// pre-allocation the real system performs before training starts.
///
/// Devices are fail-free unless a fault plan opts in: an installed
/// [`FaultInjector`] makes individual operations fail transiently
/// ([`SsdError::Injected`]), and [`SsdDevice::inject_wearout`] turns the
/// media read-only ([`SsdError::WornOut`] on writes) until
/// [`SsdDevice::rebuild`] migrates it to a replacement.
#[derive(Debug, Clone, Default)]
pub struct SsdDevice {
    name: String,
    capacity: u64,
    regions: BTreeMap<String, Vec<u8>>,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    fault: Option<FaultInjector>,
    worn_out: bool,
    rebuilds: u32,
    faults_suspended: bool,
    retry_budget: u32,
    fault_retries: u64,
    fault_backoff_ms: u64,
}

impl SsdDevice {
    /// Creates an empty device with the given capacity in bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Self { name: name.into(), capacity, ..Self::default() }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored across all regions.
    pub fn used_bytes(&self) -> u64 {
        self.regions.values().map(|v| v.len() as u64).sum()
    }

    /// Number of read operations served.
    pub fn read_ops(&self) -> u64 {
        self.reads
    }

    /// Number of write operations served.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Total bytes read since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Installs a per-device transient-fault injector (from a fault plan).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.fault = Some(injector);
    }

    /// Sets the device-internal retry budget for injected transient faults.
    ///
    /// With a positive budget the device retries a faulted operation in place
    /// (accumulating modeled backoff) instead of surfacing the error. Retrying
    /// at single-operation granularity is what makes recovery converge: a
    /// multi-device caller (e.g. a striped RAID write) that retried the whole
    /// logical operation would re-execute already-succeeded member ops at
    /// fresh op indices, where new fault bursts can fire and exhaust any
    /// outer budget.
    pub fn set_retry_budget(&mut self, budget: u32) {
        self.retry_budget = budget;
    }

    /// Drains the accumulated `(retries, modeled backoff ms)` spent absorbing
    /// transient faults device-internally since the last call.
    pub fn take_fault_events(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.fault_retries), std::mem::take(&mut self.fault_backoff_ms))
    }

    /// Suspends (or resumes) transient-fault injection. While suspended, the
    /// injector neither fires nor advances its operation stream — used by
    /// checkpoint/restore, whose maintenance traffic must not perturb the
    /// deterministic fault sequence of the training ops. Wear-out still
    /// applies.
    pub fn suspend_faults(&mut self, suspended: bool) {
        self.faults_suspended = suspended;
    }

    /// Marks the flash as worn out: reads keep working, writes fail with
    /// [`SsdError::WornOut`] until the device is [rebuilt](SsdDevice::rebuild).
    pub fn inject_wearout(&mut self) {
        self.worn_out = true;
    }

    /// Whether the media is currently worn out (read-only).
    pub fn is_worn_out(&self) -> bool {
        self.worn_out
    }

    /// How many times this device slot has been rebuilt onto a replacement.
    pub fn rebuilds(&self) -> u32 {
        self.rebuilds
    }

    /// Rebuilds the device onto a replacement: every region is read from the
    /// still-readable old media and written to fresh flash (the RAID-style
    /// rebuild traffic shows up in the byte counters), and the worn-out flag
    /// clears. Returns the number of bytes migrated.
    pub fn rebuild(&mut self) -> u64 {
        let bytes = self.used_bytes();
        let regions = self.regions.len() as u64;
        self.reads += regions;
        self.writes += regions;
        self.bytes_read += bytes;
        self.bytes_written += bytes;
        self.worn_out = false;
        self.rebuilds += 1;
        bytes
    }

    /// Fault gate for write ops: permanent wear-out first, then any injected
    /// transient fault.
    fn check_write_faults(&mut self) -> Result<(), SsdError> {
        if self.worn_out {
            return Err(SsdError::WornOut { device: self.name.clone() });
        }
        if self.faults_suspended {
            return Ok(());
        }
        self.check_injected(FaultOpKind::Write)
    }

    /// Fault gate for read ops (worn-out media still reads).
    fn check_read_faults(&mut self) -> Result<(), SsdError> {
        if self.faults_suspended {
            return Ok(());
        }
        self.check_injected(FaultOpKind::Read)
    }

    /// Consults the injector, absorbing up to `retry_budget` consecutive
    /// failures in place with exponentially growing modeled backoff.
    fn check_injected(&mut self, kind: FaultOpKind) -> Result<(), SsdError> {
        let budget = u64::from(self.retry_budget);
        let Some(injector) = &mut self.fault else { return Ok(()) };
        let mut retries = 0u64;
        let mut backoff = 0u64;
        let result = loop {
            match injector.check(kind) {
                Ok(()) => break Ok(()),
                Err(fault) if retries >= budget => break Err(fault),
                Err(_) => {
                    retries += 1;
                    backoff += 1u64 << retries.min(16);
                }
            }
        };
        self.fault_retries += retries;
        self.fault_backoff_ms += backoff;
        result.map_err(|fault| SsdError::Injected { device: self.name.clone(), fault })
    }

    /// Whether the named region exists.
    pub fn has_region(&self, region: &str) -> bool {
        self.regions.contains_key(region)
    }

    /// Names of all regions in sorted order.
    pub fn region_names(&self) -> Vec<String> {
        self.regions.keys().cloned().collect()
    }

    /// Writes (creates or replaces) an entire region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::CapacityExceeded`] if the device would overflow.
    pub fn write_region(
        &mut self,
        region: impl Into<String>,
        data: Vec<u8>,
    ) -> Result<(), SsdError> {
        self.check_write_faults()?;
        let region = region.into();
        let existing = self.regions.get(&region).map_or(0, |v| v.len() as u64);
        let new_used = self.used_bytes() - existing + data.len() as u64;
        if new_used > self.capacity {
            return Err(SsdError::CapacityExceeded {
                device: self.name.clone(),
                requested: new_used,
                capacity: self.capacity,
            });
        }
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        self.regions.insert(region, data);
        Ok(())
    }

    /// Overwrites a byte range inside an existing region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] or [`SsdError::OutOfBounds`].
    pub fn write_at(&mut self, region: &str, offset: usize, data: &[u8]) -> Result<(), SsdError> {
        self.check_write_faults()?;
        let buf = self.regions.get_mut(region).ok_or_else(|| SsdError::UnknownRegion {
            device: self.name.clone(),
            region: region.to_string(),
        })?;
        if offset + data.len() > buf.len() {
            return Err(SsdError::OutOfBounds {
                region: region.to_string(),
                offset,
                len: data.len(),
                region_len: buf.len(),
            });
        }
        buf[offset..offset + data.len()].copy_from_slice(data);
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads an entire region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] if the region does not exist.
    pub fn read_region(&mut self, region: &str) -> Result<Vec<u8>, SsdError> {
        self.check_read_faults()?;
        let data = self.regions.get(region).ok_or_else(|| SsdError::UnknownRegion {
            device: self.name.clone(),
            region: region.to_string(),
        })?;
        self.reads += 1;
        self.bytes_read += data.len() as u64;
        Ok(data.clone())
    }

    /// Reads a byte range from a region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] or [`SsdError::OutOfBounds`].
    pub fn read_at(
        &mut self,
        region: &str,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SsdError> {
        let mut out = Vec::new();
        self.read_at_into(region, offset, len, &mut out)?;
        Ok(out)
    }

    /// Reads a byte range from a region into an existing buffer, replacing
    /// its contents and reusing its allocation (the per-subgroup scratch
    /// pattern of the CSD update loop).
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownRegion`] or [`SsdError::OutOfBounds`]; the
    /// buffer is left unchanged on error.
    pub fn read_at_into(
        &mut self,
        region: &str,
        offset: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), SsdError> {
        self.check_read_faults()?;
        let data = self.regions.get(region).ok_or_else(|| SsdError::UnknownRegion {
            device: self.name.clone(),
            region: region.to_string(),
        })?;
        if offset + len > data.len() {
            return Err(SsdError::OutOfBounds {
                region: region.to_string(),
                offset,
                len,
                region_len: data.len(),
            });
        }
        self.reads += 1;
        self.bytes_read += len as u64;
        out.clear();
        out.extend_from_slice(&data[offset..offset + len]);
        Ok(())
    }

    /// Deletes a region, returning whether it existed.
    pub fn delete_region(&mut self, region: &str) -> bool {
        self.regions.remove(region).is_some()
    }

    /// Resets the read/write statistics (not the stored data).
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_then_read_returns_the_same_bytes() {
        let mut ssd = SsdDevice::new("ssd0", 1024);
        ssd.write_region("a", vec![1, 2, 3]).unwrap();
        assert_eq!(ssd.read_region("a").unwrap(), vec![1, 2, 3]);
        assert!(ssd.has_region("a"));
        assert!(!ssd.has_region("b"));
        assert_eq!(ssd.region_names(), vec!["a".to_string()]);
        assert_eq!(ssd.name(), "ssd0");
        assert_eq!(ssd.capacity(), 1024);
    }

    #[test]
    fn capacity_is_enforced_across_regions() {
        let mut ssd = SsdDevice::new("ssd0", 10);
        ssd.write_region("a", vec![0; 6]).unwrap();
        assert!(matches!(
            ssd.write_region("b", vec![0; 5]),
            Err(SsdError::CapacityExceeded { .. })
        ));
        // Replacing an existing region reuses its space.
        ssd.write_region("a", vec![0; 10]).unwrap();
        assert_eq!(ssd.used_bytes(), 10);
    }

    #[test]
    fn partial_reads_and_writes_address_correct_bytes() {
        let mut ssd = SsdDevice::new("ssd0", 100);
        ssd.write_region("p", (0u8..10).collect()).unwrap();
        assert_eq!(ssd.read_at("p", 2, 3).unwrap(), vec![2, 3, 4]);
        ssd.write_at("p", 8, &[99, 100]).unwrap();
        assert_eq!(ssd.read_at("p", 8, 2).unwrap(), vec![99, 100]);
        assert!(matches!(ssd.read_at("p", 9, 5), Err(SsdError::OutOfBounds { .. })));
        assert!(matches!(ssd.write_at("p", 9, &[0; 5]), Err(SsdError::OutOfBounds { .. })));
        assert!(matches!(ssd.read_at("q", 0, 1), Err(SsdError::UnknownRegion { .. })));
        assert!(matches!(ssd.write_at("q", 0, &[1]), Err(SsdError::UnknownRegion { .. })));
    }

    #[test]
    fn statistics_track_traffic() {
        let mut ssd = SsdDevice::new("ssd0", 1000);
        ssd.write_region("a", vec![0; 100]).unwrap();
        ssd.read_region("a").unwrap();
        ssd.read_at("a", 0, 10).unwrap();
        assert_eq!(ssd.write_ops(), 1);
        assert_eq!(ssd.read_ops(), 2);
        assert_eq!(ssd.bytes_written(), 100);
        assert_eq!(ssd.bytes_read(), 110);
        ssd.reset_stats();
        assert_eq!(ssd.bytes_read(), 0);
        assert_eq!(ssd.read_ops(), 0);
    }

    #[test]
    fn delete_frees_space() {
        let mut ssd = SsdDevice::new("ssd0", 10);
        ssd.write_region("a", vec![0; 10]).unwrap();
        assert!(ssd.delete_region("a"));
        assert!(!ssd.delete_region("a"));
        assert_eq!(ssd.used_bytes(), 0);
        ssd.write_region("b", vec![0; 10]).unwrap();
    }

    #[test]
    fn wearout_makes_writes_fail_until_rebuild() {
        let mut ssd = SsdDevice::new("ssd0", 1024);
        ssd.write_region("a", vec![7; 100]).unwrap();
        ssd.inject_wearout();
        assert!(ssd.is_worn_out());
        // Reads keep working (read-only media), writes fail.
        assert_eq!(ssd.read_region("a").unwrap(), vec![7; 100]);
        assert!(matches!(ssd.write_region("b", vec![0; 4]), Err(SsdError::WornOut { .. })));
        assert!(matches!(ssd.write_at("a", 0, &[1]), Err(SsdError::WornOut { .. })));
        let before = (ssd.bytes_read(), ssd.bytes_written());
        let migrated = ssd.rebuild();
        assert_eq!(migrated, 100);
        assert!(!ssd.is_worn_out());
        assert_eq!(ssd.rebuilds(), 1);
        // Rebuild traffic shows up in both directions.
        assert_eq!(ssd.bytes_read(), before.0 + 100);
        assert_eq!(ssd.bytes_written(), before.1 + 100);
        // Data survives and writes work again.
        assert_eq!(ssd.read_region("a").unwrap(), vec![7; 100]);
        ssd.write_at("a", 0, &[1]).unwrap();
    }

    #[test]
    fn injected_faults_heal_on_retry_and_replay_deterministically() {
        use faultkit::{FaultPlan, FaultSpec};
        let plan =
            FaultPlan::new(FaultSpec { transient_per_mille: Some(400), ..FaultSpec::empty(11) });
        let run = || {
            let mut ssd = SsdDevice::new("ssd0", 1 << 16);
            ssd.set_fault_injector(plan.injector(0));
            let mut failures = Vec::new();
            for i in 0..200 {
                let mut attempts = 0;
                loop {
                    match ssd.write_region(format!("r{i}"), vec![i as u8; 16]) {
                        Ok(()) => break,
                        Err(e) => {
                            assert!(e.is_transient(), "unexpected error {e}");
                            attempts += 1;
                            assert!(attempts <= 4, "transient fault did not heal");
                        }
                    }
                }
                failures.push(attempts);
            }
            failures
        };
        let a = run();
        assert!(a.iter().any(|&n| n > 0), "no faults fired at 40%");
        assert_eq!(a, run(), "fault schedule must replay bit-identically");
    }

    #[test]
    fn suspended_injectors_neither_fire_nor_advance_the_op_stream() {
        use faultkit::{FaultPlan, FaultSpec};
        let plan =
            FaultPlan::new(FaultSpec { transient_per_mille: Some(500), ..FaultSpec::empty(23) });
        // Reference: the fault pattern over 50 ops with no suspension.
        let pattern = |maintenance_ops: usize| {
            let mut ssd = SsdDevice::new("s", 1 << 20);
            ssd.set_fault_injector(plan.injector(0));
            // Maintenance traffic (e.g. checkpointing) under suspension must
            // not consume fault decisions.
            ssd.suspend_faults(true);
            for i in 0..maintenance_ops {
                ssd.write_region(format!("m{i}"), vec![0u8; 8]).unwrap();
            }
            ssd.suspend_faults(false);
            let mut faults = Vec::new();
            for i in 0..50 {
                let mut n = 0;
                while ssd.write_region(format!("r{i}"), vec![1u8; 8]).is_err() {
                    n += 1;
                }
                faults.push(n);
            }
            faults
        };
        let clean = pattern(0);
        assert!(clean.iter().any(|&n| n > 0));
        assert_eq!(pattern(7), clean, "suspended ops must not shift the fault schedule");
    }

    proptest! {
        /// Any sequence of whole-region writes followed by reads returns the
        /// most recently written data for every region.
        #[test]
        fn last_write_wins(
            writes in proptest::collection::vec((0u8..4, proptest::collection::vec(any::<u8>(), 0..64)), 1..40)
        ) {
            let mut ssd = SsdDevice::new("ssd", 1 << 20);
            let mut expected: std::collections::BTreeMap<u8, Vec<u8>> = Default::default();
            for (region, data) in writes {
                ssd.write_region(format!("r{region}"), data.clone()).unwrap();
                expected.insert(region, data);
            }
            for (region, data) in expected {
                prop_assert_eq!(ssd.read_region(&format!("r{region}")).unwrap(), data);
            }
        }
    }
}
