//! System cost model for the GFLOPS/$ efficiency study (paper Fig. 15).

use crate::machine::GpuSpec;
use serde::{Deserialize, Serialize};

/// Component price list and system-cost computation.
///
/// Prices follow Section VII-I: ~$45,000 for the server (CPU, RAM, PCIe
/// expansion chassis), ~$2,400 per SmartSSD, ~$400 for a plain SSD of the
/// same capacity, and the GPU price from its [`GpuSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Server cost (CPU, memory, chassis, PCIe expansion), USD.
    pub server_usd: f64,
    /// Price of one SmartSSD (CSD), USD.
    pub smartssd_usd: f64,
    /// Price of one plain NVMe SSD of the same capacity, USD.
    pub plain_ssd_usd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { server_usd: 45_000.0, smartssd_usd: 2_400.0, plain_ssd_usd: 400.0 }
    }
}

impl CostModel {
    /// Total system cost for a baseline system with `num_ssds` plain SSDs.
    pub fn baseline_system_usd(&self, gpu: &GpuSpec, num_ssds: usize) -> f64 {
        self.server_usd + gpu.price_usd + self.plain_ssd_usd * num_ssds as f64
    }

    /// Total system cost for a Smart-Infinity system with `num_csds` SmartSSDs.
    pub fn smart_infinity_system_usd(&self, gpu: &GpuSpec, num_csds: usize) -> f64 {
        self.server_usd + gpu.price_usd + self.smartssd_usd * num_csds as f64
    }

    /// Cost efficiency in GFLOPS per dollar given an achieved training
    /// throughput (FLOP/s) and a total system cost.
    pub fn gflops_per_dollar(achieved_flops_per_sec: f64, system_usd: f64) -> f64 {
        assert!(system_usd > 0.0, "system cost must be positive");
        achieved_flops_per_sec / 1e9 / system_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smartssd_premium_is_six_times_the_plain_ssd() {
        let c = CostModel::default();
        assert!((c.smartssd_usd / c.plain_ssd_usd - 6.0).abs() < 1e-9);
    }

    #[test]
    fn system_costs_grow_linearly_with_devices() {
        let c = CostModel::default();
        let gpu = GpuSpec::a5000();
        let one = c.smart_infinity_system_usd(&gpu, 1);
        let ten = c.smart_infinity_system_usd(&gpu, 10);
        assert!((ten - one - 9.0 * c.smartssd_usd).abs() < 1e-9);
        assert!(c.baseline_system_usd(&gpu, 4) < c.smart_infinity_system_usd(&gpu, 4));
    }

    #[test]
    fn gflops_per_dollar_is_throughput_over_cost() {
        let v = CostModel::gflops_per_dollar(50e12, 50_000.0);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_panics() {
        CostModel::gflops_per_dollar(1e12, 0.0);
    }
}
