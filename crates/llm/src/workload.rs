//! Per-iteration byte and FLOP accounting for one training workload.

use crate::model::ModelConfig;
use optim::OptimizerKind;
use serde::{Deserialize, Serialize};

/// A training workload: a model plus the batch shape.
///
/// This is the object from which every traffic number in the paper's Table I
/// is derived. All byte quantities use the paper's convention: `M` denotes
/// the FP16 model size (2 bytes per parameter), gradients travel in FP32
/// (`2M`) and Adam's optimizer states occupy `6M` (FP32 master copy,
/// momentum and variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    model: ModelConfig,
    batch_size: usize,
    seq_len: usize,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if the batch size or sequence length is zero, or if the
    /// sequence length exceeds the model's maximum.
    pub fn new(model: ModelConfig, batch_size: usize, seq_len: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(seq_len > 0, "sequence length must be positive");
        assert!(
            seq_len <= model.max_seq_len(),
            "sequence length {seq_len} exceeds the model maximum {}",
            model.max_seq_len()
        );
        Self { model, batch_size, seq_len }
    }

    /// The paper's default batch shape (batch size 4, full context).
    pub fn paper_default(model: ModelConfig) -> Self {
        let seq = model.max_seq_len();
        Self::new(model, 4, seq)
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Tokens processed per iteration.
    pub fn tokens_per_iteration(&self) -> usize {
        self.batch_size * self.seq_len
    }

    /// FP16 model size in bytes (the paper's `M`).
    pub fn model_bytes_fp16(&self) -> u64 {
        2 * self.model.num_params()
    }

    /// FP32 gradient size in bytes (`2M`): ZeRO-Infinity's offload engine
    /// handles gradients in 32 bits.
    pub fn gradient_bytes(&self) -> u64 {
        4 * self.model.num_params()
    }

    /// Optimizer state bytes (`6M` for Adam, `4M` for SGD/AdaGrad).
    pub fn optimizer_state_bytes(&self, kind: OptimizerKind) -> u64 {
        kind.state_bytes_per_param() as u64 * self.model.num_params()
    }

    /// Activation checkpoint bytes stored in host memory per iteration
    /// (one activation tensor per layer boundary: batch × seq × hidden, FP16).
    pub fn activation_bytes(&self) -> u64 {
        2 * (self.batch_size * self.seq_len * self.model.hidden_size()) as u64
            * self.model.num_layers() as u64
    }

    /// Forward-pass FLOPs for one iteration.
    pub fn forward_flops(&self) -> f64 {
        self.model.flops_per_token_forward(self.seq_len) * self.tokens_per_iteration() as f64
    }

    /// Backward-pass FLOPs for one iteration (≈ 2× forward).
    pub fn backward_flops(&self) -> f64 {
        2.0 * self.forward_flops()
    }

    /// Total training FLOPs for one iteration.
    pub fn training_flops(&self) -> f64 {
        self.forward_flops() + self.backward_flops()
    }

    /// Per-block FP16 parameter bytes, in the block order used by the offload
    /// engines (layer-wise, embeddings folded into the first block).
    pub fn block_bytes_fp16(&self) -> Vec<u64> {
        self.model.block_param_counts().iter().map(|p| 2 * p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn byte_accounting_uses_the_papers_m_units() {
        let w = Workload::new(ModelConfig::gpt2_0_34b(), 4, 1024);
        let p = w.model().num_params();
        assert_eq!(w.model_bytes_fp16(), 2 * p);
        assert_eq!(w.gradient_bytes(), 4 * p);
        assert_eq!(w.optimizer_state_bytes(OptimizerKind::Adam), 12 * p);
        assert_eq!(w.optimizer_state_bytes(OptimizerKind::SgdMomentum), 8 * p);
        assert_eq!(w.optimizer_state_bytes(OptimizerKind::AdaGrad), 8 * p);
    }

    #[test]
    fn flops_split_one_third_forward_two_thirds_backward() {
        let w = Workload::paper_default(ModelConfig::gpt2_4b());
        assert_eq!(w.batch_size(), 4);
        assert_eq!(w.seq_len(), 1024);
        assert_eq!(w.tokens_per_iteration(), 4096);
        assert!((w.backward_flops() / w.forward_flops() - 2.0).abs() < 1e-12);
        assert!((w.training_flops() / w.forward_flops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn block_bytes_sum_to_model_bytes() {
        let w = Workload::paper_default(ModelConfig::bert_4b());
        let blocks = w.block_bytes_fp16();
        assert_eq!(blocks.iter().sum::<u64>(), w.model_bytes_fp16());
        assert_eq!(blocks.len(), w.model().num_layers());
    }

    #[test]
    fn activations_scale_with_batch_and_depth() {
        let small = Workload::new(ModelConfig::gpt2_0_34b(), 1, 512);
        let big = Workload::new(ModelConfig::gpt2_0_34b(), 4, 512);
        assert_eq!(big.activation_bytes(), 4 * small.activation_bytes());
    }

    #[test]
    #[should_panic(expected = "exceeds the model maximum")]
    fn too_long_sequence_panics() {
        Workload::new(ModelConfig::bert_0_34b(), 4, 4096);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        Workload::new(ModelConfig::gpt2_0_34b(), 0, 128);
    }
}
