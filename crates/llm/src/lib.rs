//! # llm — transformer model zoo, machine specs and workload accounting
//!
//! The performance of storage-offloaded training is almost entirely
//! determined by a handful of scalar quantities: how many parameters the
//! model has (traffic ∝ #params), how many FLOPs one iteration costs (GPU
//! time), and the speeds and prices of the devices involved. This crate
//! provides those numbers for the models and machines the paper evaluates:
//!
//! * [`ModelConfig`] — GPT-2, BERT, BLOOM and ViT configurations with exact
//!   parameter-count and FLOP formulas, including constructors that hit the
//!   paper's headline sizes (4.0B, 8.4B, …, 33.0B).
//! * [`GpuSpec`] / [`CpuSpec`] — the A5000 / A100 / A4000 GPUs and the host
//!   CPU (AVX-optimised DeepSpeed update kernel) used in the evaluation.
//! * [`Workload`] — per-iteration byte and FLOP accounting in the paper's
//!   "M" units (M = FP16 model bytes), reproducing Table I.
//! * [`CostModel`] — the component price list behind the GFLOPS/$ study
//!   (Fig. 15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod machine;
mod model;
mod workload;

pub use cost::CostModel;
pub use machine::{CpuSpec, GpuSpec, SsdSpec};
pub use model::{ModelConfig, ModelFamily};
pub use workload::Workload;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_models_have_expected_sizes() {
        // The named constructors must land within 5% of their nominal size.
        for (model, nominal_b) in [
            (ModelConfig::gpt2_4b(), 4.0),
            (ModelConfig::gpt2_8_4b(), 8.4),
            (ModelConfig::gpt2_33b(), 33.0),
            (ModelConfig::bert_4b(), 4.0),
            (ModelConfig::bert_8_3b(), 8.3),
            (ModelConfig::bloom_7_1b(), 7.1),
        ] {
            let billions = model.num_params() as f64 / 1e9;
            let rel = (billions - nominal_b).abs() / nominal_b;
            assert!(rel < 0.05, "{}: {billions:.2}B vs nominal {nominal_b}B", model.name());
        }
    }

    #[test]
    fn workload_traffic_matches_table_one() {
        let model = ModelConfig::gpt2_4b();
        let w = Workload::new(model, 4, 1024);
        // Optimizer states (Adam): 6M; gradients: 2M, in units of M = 2 bytes/param.
        let m = w.model_bytes_fp16() as f64;
        assert!(
            (w.optimizer_state_bytes(optim::OptimizerKind::Adam) as f64 / m - 6.0).abs() < 1e-9
        );
        assert!((w.gradient_bytes() as f64 / m - 2.0).abs() < 1e-9);
    }
}
