//! GPU, CPU and SSD device specifications used by the performance model.

use serde::{Deserialize, Serialize};

/// A GPU specification: sustained training throughput and price.
///
/// `effective_flops` already folds in a realistic model-FLOPs utilisation
/// (MFU ~40–45% of the tensor-core peak), which is what determines the
/// forward/backward durations in the timed engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name ("A5000", "A100", ...).
    pub name: String,
    /// Peak FP16 tensor throughput in FLOP/s.
    pub peak_fp16_flops: f64,
    /// Sustained training throughput in FLOP/s (peak × MFU).
    pub effective_flops: f64,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Street price in USD (used by the GFLOPS/$ study).
    pub price_usd: f64,
}

impl GpuSpec {
    /// NVIDIA RTX A5000 (24 GB) — the paper's default GPU.
    pub fn a5000() -> Self {
        Self {
            name: "A5000".to_string(),
            peak_fp16_flops: 111.1e12,
            effective_flops: 50.0e12,
            memory_bytes: 24 * (1 << 30),
            price_usd: 2000.0,
        }
    }

    /// NVIDIA A100 40 GB — the higher-end GPU of Section VII-E.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            peak_fp16_flops: 312.0e12,
            effective_flops: 140.0e12,
            memory_bytes: 40 * (1 << 30),
            price_usd: 7000.0,
        }
    }

    /// NVIDIA RTX A4000 (16 GB, single slot) — used in the congested
    /// multi-GPU topology of Section VIII-A.
    pub fn a4000() -> Self {
        Self {
            name: "A4000".to_string(),
            peak_fp16_flops: 76.7e12,
            effective_flops: 34.0e12,
            memory_bytes: 16 * (1 << 30),
            price_usd: 1100.0,
        }
    }
}

/// Host CPU characteristics relevant to the baseline update path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Sustained throughput of the AVX-optimised CPU Adam kernel, in bytes of
    /// optimizer state processed per second (DeepSpeed's CPU-Adam streams
    /// parameter + momentum + variance through the vector units).
    pub update_bytes_per_sec: f64,
    /// Host memory capacity in bytes.
    pub memory_bytes: u64,
}

impl CpuSpec {
    /// Dual-socket Xeon Gold 6342 with 1 TB of DDR4 (Table II).
    pub fn xeon_gold_6342() -> Self {
        Self {
            name: "Xeon Gold 6342 x2".to_string(),
            update_bytes_per_sec: 6.0e9,
            memory_bytes: 1024 * (1 << 30),
        }
    }
}

/// NVMe SSD performance characteristics (shared with the `ssd` crate's
/// bandwidth model; duplicated here only as a *specification*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Marketing name.
    pub name: String,
    /// Sequential read bandwidth in bytes/second.
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes/second.
    pub write_bytes_per_sec: f64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Street price in USD.
    pub price_usd: f64,
}

impl SsdSpec {
    /// The 4 TB NVMe SSD inside a SmartSSD (also used stand-alone as the
    /// RAID0 baseline device). Bandwidths follow Fig. 14's SSD read/write bars.
    pub fn smartssd_nvme() -> Self {
        Self {
            name: "SmartSSD NVMe 4TB".to_string(),
            read_bytes_per_sec: 3.3e9,
            write_bytes_per_sec: 2.6e9,
            capacity_bytes: 4_000_000_000_000,
            price_usd: 400.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_specs_are_ordered_by_capability() {
        let a4000 = GpuSpec::a4000();
        let a5000 = GpuSpec::a5000();
        let a100 = GpuSpec::a100();
        assert!(a4000.effective_flops < a5000.effective_flops);
        assert!(a5000.effective_flops < a100.effective_flops);
        assert!(a5000.price_usd < a100.price_usd);
        assert!(a4000.memory_bytes < a5000.memory_bytes);
        assert!(a100.effective_flops < a100.peak_fp16_flops);
    }

    #[test]
    fn cpu_and_ssd_specs_are_sane() {
        let cpu = CpuSpec::xeon_gold_6342();
        assert!(cpu.update_bytes_per_sec > 1e9);
        assert!(cpu.memory_bytes >= 512 * (1 << 30));
        let ssd = SsdSpec::smartssd_nvme();
        assert!(ssd.read_bytes_per_sec > ssd.write_bytes_per_sec);
        assert_eq!(ssd.capacity_bytes, 4_000_000_000_000);
    }
}
