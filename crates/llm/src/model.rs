//! Transformer model configurations and parameter/FLOP accounting.

use serde::{Deserialize, Serialize};

/// The model family (they only differ in vocabulary/sequence defaults and in
/// how the paper labels them; the parameter-count formula is shared because
/// "modern LLM models are all based on Transformers and only differ in some
/// model design parameters", paper Section VII-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Decoder-only language model (GPT-2 family).
    Gpt2,
    /// Encoder-only language model (BERT family).
    Bert,
    /// Decoder-only multilingual model with a large vocabulary (BLOOM family).
    Bloom,
    /// Vision transformer (ViT family); negligible vocabulary, patch embedding instead.
    Vit,
}

/// A transformer configuration: enough structure to compute parameter counts,
/// per-token FLOPs and layer-wise blocks, which is all the offloading engines
/// need (they never materialise the multi-billion-parameter weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    name: String,
    family: ModelFamily,
    num_layers: usize,
    hidden_size: usize,
    num_heads: usize,
    vocab_size: usize,
    max_seq_len: usize,
}

impl ModelConfig {
    /// Creates a configuration from explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the hidden size is not divisible by
    /// the number of heads.
    pub fn new(
        name: impl Into<String>,
        family: ModelFamily,
        num_layers: usize,
        hidden_size: usize,
        num_heads: usize,
        vocab_size: usize,
        max_seq_len: usize,
    ) -> Self {
        assert!(num_layers > 0 && hidden_size > 0 && num_heads > 0, "dimensions must be positive");
        assert!(
            hidden_size % num_heads == 0,
            "hidden size {hidden_size} must be divisible by {num_heads} heads"
        );
        Self {
            name: name.into(),
            family,
            num_layers,
            hidden_size,
            num_heads,
            vocab_size,
            max_seq_len,
        }
    }

    // ----- GPT-2 family (decoder-only, GPT-2 vocabulary) ------------------

    fn gpt2(name: &str, layers: usize, hidden: usize) -> Self {
        Self::new(name, ModelFamily::Gpt2, layers, hidden, hidden / 64, 50_257, 1024)
    }

    /// GPT-2 0.34B (GPT-2 medium, used in the fine-tuning study).
    pub fn gpt2_0_34b() -> Self {
        Self::gpt2("GPT2-0.34B", 24, 1024)
    }
    /// GPT-2 0.77B (GPT-2 large, fine-tuning study).
    pub fn gpt2_0_77b() -> Self {
        Self::gpt2("GPT2-0.77B", 36, 1280)
    }
    /// GPT-2 1.16B (congested-topology study, Fig. 17).
    pub fn gpt2_1_16b() -> Self {
        Self::gpt2("GPT2-1.16B", 24, 1920)
    }
    /// GPT-2 1.6B (GPT-2 XL, fine-tuning study).
    pub fn gpt2_1_6b() -> Self {
        Self::gpt2("GPT2-1.6B", 48, 1600)
    }
    /// GPT-2 1.7B (accelerator-throughput study, Fig. 14).
    pub fn gpt2_1_7b() -> Self {
        Self::gpt2("GPT2-1.7B", 24, 2368)
    }
    /// GPT-2 2.5B (motivation study, Fig. 3a).
    pub fn gpt2_2_5b() -> Self {
        Self::gpt2("GPT2-2.5B", 54, 1920)
    }
    /// GPT-2 4.0B (default speedup experiments, Fig. 9/11).
    pub fn gpt2_4b() -> Self {
        Self::gpt2("GPT2-4.0B", 50, 2560)
    }
    /// GPT-2 8.3B (motivation study, Fig. 3a).
    pub fn gpt2_8_3b() -> Self {
        Self::gpt2("GPT2-8.3B", 72, 3072)
    }
    /// GPT-2 8.4B (speedup experiments, Fig. 9).
    pub fn gpt2_8_4b() -> Self {
        Self::gpt2("GPT2-8.4B", 73, 3072)
    }
    /// GPT-2 16.6B (larger-model scalability, Fig. 10).
    pub fn gpt2_16_6b() -> Self {
        Self::gpt2("GPT2-16.6B", 93, 3840)
    }
    /// GPT-2 20.5B (motivation study, Fig. 3a).
    pub fn gpt2_20_5b() -> Self {
        Self::gpt2("GPT2-20.5B", 100, 4096)
    }
    /// GPT-2 24.8B (larger-model scalability, Fig. 10).
    pub fn gpt2_24_8b() -> Self {
        Self::gpt2("GPT2-24.8B", 122, 4096)
    }
    /// GPT-2 33.0B (larger-model scalability, Fig. 10).
    pub fn gpt2_33b() -> Self {
        Self::gpt2("GPT2-33.0B", 118, 4800)
    }

    // ----- BERT family (encoder-only, WordPiece vocabulary) ---------------

    fn bert(name: &str, layers: usize, hidden: usize) -> Self {
        Self::new(name, ModelFamily::Bert, layers, hidden, hidden / 64, 30_522, 512)
    }

    /// BERT 0.34B (BERT-large / Megatron BERT-345M, fine-tuning study).
    pub fn bert_0_34b() -> Self {
        Self::bert("BERT-0.34B", 24, 1024)
    }
    /// BERT 4.0B (speedup experiments, Fig. 9).
    pub fn bert_4b() -> Self {
        Self::bert("BERT-4.0B", 50, 2560)
    }
    /// BERT 8.3B (speedup experiments, Fig. 9).
    pub fn bert_8_3b() -> Self {
        Self::bert("BERT-8.3B", 72, 3072)
    }

    // ----- BLOOM family (decoder-only, 250k multilingual vocabulary) ------

    fn bloom(name: &str, layers: usize, hidden: usize) -> Self {
        Self::new(name, ModelFamily::Bloom, layers, hidden, hidden / 128, 250_880, 2048)
    }

    /// BLOOM 3B (other-model study, Fig. 13).
    pub fn bloom_3b() -> Self {
        Self::bloom("BLOOM-3B", 30, 2560)
    }
    /// BLOOM 7.1B (other-model study, Fig. 13).
    pub fn bloom_7_1b() -> Self {
        Self::bloom("BLOOM-7.1B", 30, 4096)
    }

    // ----- ViT family (vision transformer, patch embedding) ---------------

    fn vit(name: &str, layers: usize, hidden: usize) -> Self {
        // "Vocabulary" models the patch-embedding projection (3*16*16 = 768 inputs).
        Self::new(name, ModelFamily::Vit, layers, hidden, hidden / 64, 768, 257)
    }

    /// ViT 0.30B (ViT-Large scale, Fig. 13).
    pub fn vit_0_30b() -> Self {
        Self::vit("ViT-0.30B", 24, 1024)
    }
    /// ViT 0.63B (ViT-Huge scale, Fig. 13).
    pub fn vit_0_63b() -> Self {
        Self::vit("ViT-0.63B", 32, 1280)
    }

    /// A GPT-2-family configuration scaled to approximately `target_params`
    /// parameters (used for sweeps over arbitrary sizes).
    pub fn gpt2_scaled(target_params: f64) -> Self {
        assert!(target_params > 1e6, "target must be at least one million parameters");
        // Fix the aspect ratio layers = hidden / 32 (Megatron-style) and solve
        // 12 * L * H^2 ~= target  =>  H = (target * 32 / 12)^(1/3).
        let hidden_f = (target_params * 32.0 / 12.0).powf(1.0 / 3.0);
        let hidden = ((hidden_f / 64.0).round() as usize).max(2) * 64;
        let layers = ((target_params - 50_257.0 * hidden as f64)
            / (12.0 * (hidden * hidden) as f64 + 13.0 * hidden as f64))
            .round()
            .max(1.0) as usize;
        let billions = target_params / 1e9;
        Self::gpt2(&format!("GPT2-{billions:.1}B"), layers, hidden)
    }

    /// Human-readable configuration name (e.g. `"GPT2-4.0B"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model family.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// Number of transformer layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Hidden (embedding) dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Vocabulary size (patch-projection inputs for ViT).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Maximum sequence length the model is configured for.
    pub fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    /// Parameters in one transformer layer: 12·H² weights (QKV + output
    /// projection + two 4H MLP matrices) plus 13·H biases and layer norms.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden_size as u64;
        12 * h * h + 13 * h
    }

    /// Parameters in the embedding (token + position) and final layer norm.
    pub fn embedding_params(&self) -> u64 {
        let h = self.hidden_size as u64;
        (self.vocab_size as u64) * h + (self.max_seq_len as u64) * h + 2 * h
    }

    /// Total parameter count.
    pub fn num_params(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64 + self.embedding_params()
    }

    /// Forward FLOPs for one token: ~2 FLOPs per parameter in the dense
    /// layers plus the attention score/context computation.
    pub fn flops_per_token_forward(&self, seq_len: usize) -> f64 {
        let dense = 2.0 * (self.params_per_layer() * self.num_layers as u64) as f64;
        let attention = 4.0 * self.num_layers as f64 * seq_len as f64 * self.hidden_size as f64;
        let embedding = 2.0 * self.hidden_size as f64 * self.vocab_size as f64;
        dense + attention + embedding
    }

    /// Training FLOPs for one token (forward + backward ≈ 3× forward).
    pub fn flops_per_token_training(&self, seq_len: usize) -> f64 {
        3.0 * self.flops_per_token_forward(seq_len)
    }

    /// Splits the model into per-layer blocks (the unit the offload engines
    /// move between GPU, host memory and storage). The embedding parameters
    /// are folded into the first block.
    pub fn block_param_counts(&self) -> Vec<u64> {
        let mut blocks = vec![self.params_per_layer(); self.num_layers];
        blocks[0] += self.embedding_params();
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs_match_their_nominal_sizes() {
        let cases: Vec<(ModelConfig, f64)> = vec![
            (ModelConfig::gpt2_0_34b(), 0.355),
            (ModelConfig::gpt2_0_77b(), 0.77),
            (ModelConfig::gpt2_1_16b(), 1.16),
            (ModelConfig::gpt2_1_6b(), 1.6),
            (ModelConfig::gpt2_1_7b(), 1.7),
            (ModelConfig::gpt2_2_5b(), 2.5),
            (ModelConfig::gpt2_4b(), 4.0),
            (ModelConfig::gpt2_8_3b(), 8.3),
            (ModelConfig::gpt2_8_4b(), 8.4),
            (ModelConfig::gpt2_16_6b(), 16.6),
            (ModelConfig::gpt2_20_5b(), 20.5),
            (ModelConfig::gpt2_24_8b(), 24.8),
            (ModelConfig::gpt2_33b(), 33.0),
            (ModelConfig::bert_0_34b(), 0.34),
            (ModelConfig::bert_4b(), 4.0),
            (ModelConfig::bert_8_3b(), 8.3),
            (ModelConfig::bloom_3b(), 3.0),
            (ModelConfig::bloom_7_1b(), 7.1),
            (ModelConfig::vit_0_30b(), 0.30),
            (ModelConfig::vit_0_63b(), 0.63),
        ];
        for (cfg, nominal) in cases {
            let billions = cfg.num_params() as f64 / 1e9;
            let rel = (billions - nominal).abs() / nominal;
            assert!(
                rel < 0.06,
                "{}: {billions:.3}B vs {nominal}B ({:.1}%)",
                cfg.name(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn scaled_constructor_hits_arbitrary_targets() {
        for target in [0.5e9, 2.0e9, 6.0e9, 12.0e9, 40.0e9] {
            let cfg = ModelConfig::gpt2_scaled(target);
            let rel = (cfg.num_params() as f64 - target).abs() / target;
            assert!(rel < 0.10, "target {target}: got {} ({:.1}%)", cfg.num_params(), rel * 100.0);
        }
    }

    #[test]
    fn blocks_sum_to_total_params() {
        let cfg = ModelConfig::gpt2_4b();
        let blocks = cfg.block_param_counts();
        assert_eq!(blocks.len(), cfg.num_layers());
        assert_eq!(blocks.iter().sum::<u64>(), cfg.num_params());
        assert!(blocks[0] > blocks[1]); // embedding folded into the first block
    }

    #[test]
    fn flops_scale_with_model_and_sequence() {
        let small = ModelConfig::gpt2_0_34b();
        let large = ModelConfig::gpt2_4b();
        assert!(large.flops_per_token_forward(1024) > 5.0 * small.flops_per_token_forward(1024));
        assert!(small.flops_per_token_forward(2048) > small.flops_per_token_forward(512));
        assert!(
            (small.flops_per_token_training(1024) / small.flops_per_token_forward(1024) - 3.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn accessors_expose_configuration() {
        let cfg = ModelConfig::bloom_3b();
        assert_eq!(cfg.family(), ModelFamily::Bloom);
        assert_eq!(cfg.num_layers(), 30);
        assert_eq!(cfg.hidden_size(), 2560);
        assert_eq!(cfg.num_heads(), 20);
        assert_eq!(cfg.vocab_size(), 250_880);
        assert_eq!(cfg.max_seq_len(), 2048);
        assert_eq!(cfg.name(), "BLOOM-3B");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn hidden_not_divisible_by_heads_panics() {
        ModelConfig::new("bad", ModelFamily::Gpt2, 2, 100, 3, 1000, 128);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_layers_panics() {
        ModelConfig::new("bad", ModelFamily::Gpt2, 0, 64, 1, 1000, 128);
    }
}
