//! Offline stand-in for the crates.io `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` without
//! `syn`/`quote` by walking the raw token stream. Both derives generate impls
//! of the traits in the companion `serde` shim, using serde-compatible
//! shapes: structs become objects, newtype structs are transparent, enums use
//! external tagging. The generated `Deserialize` reads the `serde::Value`
//! tree produced by the `serde_json` shim's parser, so every derived type
//! round-trips through JSON text.
//!
//! Items the parser does not understand (generic types, unions, enums with
//! discriminants) silently get no impl, which surfaces as a regular trait
//! error only if something actually needs to (de)serialize them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the JSON-writing `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate_impl(input) {
        Some(code) => code.parse().unwrap_or_default(),
        None => TokenStream::new(),
    }
}

/// Derives the JSON-reading `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match generate_deserialize_impl(input) {
        Some(code) => code.parse().unwrap_or_default(),
        None => TokenStream::new(),
    }
}

enum Variant {
    Unit(String),
    Named(String, Vec<String>),
    Tuple(String, usize),
}

fn generate_impl(input: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let keyword = ident_at(&tokens, i)?;
    i += 1;
    let name = ident_at(&tokens, i)?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return None; // generic types are out of scope for the shim
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Some(named_struct_impl(&name, &fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Some(tuple_struct_impl(&name, arity))
            }
            _ => None,
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return None,
            };
            let variants = parse_variants(body)?;
            if variants.is_empty() {
                return None;
            }
            Some(enum_impl(&name, &variants))
        }
        _ => None,
    }
}

fn generate_deserialize_impl(input: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let keyword = ident_at(&tokens, i)?;
    i += 1;
    let name = ident_at(&tokens, i)?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return None; // generic types are out of scope for the shim
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Some(named_struct_de_impl(&name, &fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Some(tuple_struct_de_impl(&name, arity))
            }
            _ => None,
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return None,
            };
            let variants = parse_variants(body)?;
            if variants.is_empty() {
                return None;
            }
            Some(enum_de_impl(&name, &variants))
        }
        _ => None,
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            (Some(TokenTree::Ident(id)), next) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(next, Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances past a type, stopping after the `,` (if any) that terminates it.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i64;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Option<Vec<String>> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = ident_at(&tokens, i)?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return None,
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    Some(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Option<Vec<Variant>> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = ident_at(&tokens, i)?;
        i += 1;
        let variant = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Variant::Named(name, parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Variant::Tuple(name, count_tuple_fields(g.stream()))
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            _ => return None, // discriminants etc. are out of scope
        }
    }
    Some(variants)
}

fn impl_header(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
}

fn write_fields(target: &mut String, fields: &[String], accessor: &str) {
    target.push_str("out.push('{');\n");
    for (idx, field) in fields.iter().enumerate() {
        let comma = if idx == 0 { "" } else { "," };
        target.push_str(&format!(
            "out.push_str(\"{comma}\\\"{field}\\\":\");\n\
             ::serde::Serialize::write_json({accessor}{field}, out);\n"
        ));
    }
    target.push_str("out.push('}');");
}

fn named_struct_impl(name: &str, fields: &[String]) -> String {
    let mut body = String::new();
    write_fields(&mut body, fields, "&self.");
    impl_header(name, &body)
}

fn tuple_struct_impl(name: &str, arity: usize) -> String {
    let mut body = String::new();
    match arity {
        0 => body.push_str("out.push_str(\"null\");"),
        1 => body.push_str("::serde::Serialize::write_json(&self.0, out);"),
        n => {
            body.push_str("out.push('[');\n");
            for idx in 0..n {
                if idx > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!("::serde::Serialize::write_json(&self.{idx}, out);\n"));
            }
            body.push_str("out.push(']');");
        }
    }
    impl_header(name, &body)
}

fn de_impl_header(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn read_json(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}"
    )
}

fn read_fields(target: &mut String, ty_label: &str, fields: &[String], constructor: &str) {
    let allowed: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
    target.push_str(&format!(
        "::serde::de::deny_unknown(obj, &[{}], \"{ty_label}\")?;\n",
        allowed.join(", ")
    ));
    target.push_str(&format!("::std::result::Result::Ok({constructor} {{\n"));
    for field in fields {
        target.push_str(&format!(
            "{field}: ::serde::de::field(obj, \"{field}\", \"{ty_label}\")?,\n"
        ));
    }
    target.push_str("})");
}

fn named_struct_de_impl(name: &str, fields: &[String]) -> String {
    let mut body = format!("let obj = ::serde::de::object(value, \"{name}\")?;\n");
    read_fields(&mut body, name, fields, name);
    de_impl_header(name, &body)
}

fn tuple_struct_de_impl(name: &str, arity: usize) -> String {
    let mut body = String::new();
    match arity {
        0 => body.push_str(&format!(
            "::serde::de::no_payload(::std::option::Option::Some(value), \"{name}\")?;\n\
             ::std::result::Result::Ok({name})"
        )),
        1 => body.push_str(&format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::read_json(value)?))"
        )),
        n => {
            body.push_str(&format!(
                "let items = ::serde::de::array_n(value, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}("
            ));
            for idx in 0..n {
                body.push_str(&format!("::serde::Deserialize::read_json(&items[{idx}])?, "));
            }
            body.push_str("))");
        }
    }
    de_impl_header(name, &body)
}

fn enum_de_impl(name: &str, variants: &[Variant]) -> String {
    let variant_names: Vec<String> = variants
        .iter()
        .map(|v| match v {
            Variant::Unit(n) | Variant::Named(n, _) | Variant::Tuple(n, _) => format!("\"{n}\""),
        })
        .collect();
    let mut body =
        format!("let (tag, data) = ::serde::de::variant(value, \"{name}\")?;\nmatch tag {{\n");
    for variant in variants {
        match variant {
            Variant::Unit(v) => {
                body.push_str(&format!(
                    "\"{v}\" => {{\n::serde::de::no_payload(data, \"{name}::{v}\")?;\n\
                     ::std::result::Result::Ok({name}::{v})\n}}\n"
                ));
            }
            Variant::Named(v, fields) => {
                let label = format!("{name}::{v}");
                body.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let data = ::serde::de::payload(data, \"{label}\")?;\n\
                     let obj = ::serde::de::object(data, \"{label}\")?;\n"
                ));
                read_fields(&mut body, &label, fields, &label);
                body.push_str("\n}\n");
            }
            Variant::Tuple(v, arity) => {
                let label = format!("{name}::{v}");
                body.push_str(&format!(
                    "\"{v}\" => {{\nlet data = ::serde::de::payload(data, \"{label}\")?;\n"
                ));
                if *arity == 1 {
                    body.push_str(&format!(
                        "::std::result::Result::Ok({label}(\
                         ::serde::Deserialize::read_json(data)?))\n}}\n"
                    ));
                } else {
                    body.push_str(&format!(
                        "let items = ::serde::de::array_n(data, {arity}, \"{label}\")?;\n\
                         ::std::result::Result::Ok({label}("
                    ));
                    for idx in 0..*arity {
                        body.push_str(&format!(
                            "::serde::Deserialize::read_json(&items[{idx}])?, "
                        ));
                    }
                    body.push_str("))\n}\n");
                }
            }
        }
    }
    body.push_str(&format!(
        "other => ::std::result::Result::Err(\
         ::serde::de::unknown_variant(other, &[{}], \"{name}\")),\n}}",
        variant_names.join(", ")
    ));
    de_impl_header(name, &body)
}

fn enum_impl(name: &str, variants: &[Variant]) -> String {
    let mut body = String::from("match self {\n");
    for variant in variants {
        match variant {
            Variant::Unit(v) => {
                body.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"));
            }
            Variant::Named(v, fields) => {
                let bindings = fields.join(", ");
                body.push_str(&format!(
                    "{name}::{v} {{ {bindings} }} => {{\nout.push_str(\"{{\\\"{v}\\\":\");\n"
                ));
                write_fields(&mut body, fields, "");
                body.push_str("\nout.push('}');\n}\n");
            }
            Variant::Tuple(v, arity) => {
                let bindings: Vec<String> = (0..*arity).map(|k| format!("__v{k}")).collect();
                body.push_str(&format!(
                    "{name}::{v}({}) => {{\nout.push_str(\"{{\\\"{v}\\\":\");\n",
                    bindings.join(", ")
                ));
                if *arity == 1 {
                    body.push_str("::serde::Serialize::write_json(__v0, out);\n");
                } else {
                    body.push_str("out.push('[');\n");
                    for (k, b) in bindings.iter().enumerate() {
                        if k > 0 {
                            body.push_str("out.push(',');\n");
                        }
                        body.push_str(&format!("::serde::Serialize::write_json({b}, out);\n"));
                    }
                    body.push_str("out.push(']');\n");
                }
                body.push_str("out.push('}');\n}\n");
            }
        }
    }
    body.push('}');
    impl_header(name, &body)
}
