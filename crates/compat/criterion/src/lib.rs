//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros and the
//! `Criterion` / `BenchmarkGroup` / `Bencher` API surface the `bench` crate
//! uses, so `cargo bench` compiles and runs without network access. Instead
//! of criterion's statistical machinery, each benchmark runs a short fixed
//! number of timed iterations and prints the median; good enough to spot
//! order-of-magnitude regressions, not a replacement for real criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\ngroup {}", name.into());
        BenchmarkGroup { _criterion: self, sample_size: 3 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 3, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion requires >= 10; the shim happily takes small counts
        // but caps what it actually runs to keep `cargo bench` short.
        self.sample_size = n.clamp(1, 5);
        self
    }

    /// Records the per-iteration volume; the shim prints derived throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, f);
        self
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier like `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { name: name.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Per-iteration data volume, used by real criterion for throughput reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up iteration, then the timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    bencher.samples.sort_unstable();
    match bencher.samples.get(bencher.samples.len() / 2) {
        Some(median) => println!("  {name:<50} {median:>12.3?}/iter"),
        None => println!("  {name:<50} (no samples)"),
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` cargo passes `--test`; the shim
            // treats every invocation the same and just runs the benchmarks.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchmarks_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Bytes(8));
            g.bench_function("inc", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert!(ran >= 2, "warm-up plus samples must run the closure");
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
    }
}
