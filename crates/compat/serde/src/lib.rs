//! Offline stand-in for the crates.io `serde` crate.
//!
//! The workspace must build without network access, so this crate provides
//! the subset of serde the repository relies on: a [`Serialize`] trait that
//! renders JSON directly, `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! re-exported from the companion `serde_derive` shim, and impls for the
//! primitive / container types that appear in derived structs. The derive
//! for `Deserialize` is a no-op marker (nothing in the repo deserializes);
//! the derive for `Serialize` generates a real [`Serialize`] impl with
//! serde-compatible external tagging for enums.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive macro emits `::serde::Serialize` paths; alias this crate under
// that name so the derives also work from inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as JSON.
///
/// This intentionally skips real serde's serializer abstraction: every user
/// in this workspace ultimately wants JSON text (see the `figures` binary),
/// so the trait writes JSON straight into a string buffer.
pub trait Serialize {
    /// Appends the JSON representation of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

macro_rules! serialize_display_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! serialize_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Infinity literals; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

/// Writes `s` as a JSON string literal, escaping as required by RFC 8259.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        let mut out = String::new();
        42u64.write_json(&mut out);
        out.push(',');
        (-1.5f64).write_json(&mut out);
        out.push(',');
        f32::NAN.write_json(&mut out);
        out.push(',');
        true.write_json(&mut out);
        out.push(',');
        "a\"b\n".write_json(&mut out);
        assert_eq!(out, r#"42,-1.5,null,true,"a\"b\n""#);
    }

    #[test]
    fn containers_render_as_json() {
        let mut out = String::new();
        vec![1u32, 2, 3].write_json(&mut out);
        out.push(',');
        Option::<u32>::None.write_json(&mut out);
        out.push(',');
        Some("x".to_string()).write_json(&mut out);
        assert_eq!(out, r#"[1,2,3],null,"x""#);
    }

    #[derive(Serialize)]
    struct Row {
        label: String,
        value: f64,
        tags: Vec<u32>,
    }

    #[derive(Serialize)]
    enum Kind {
        Plain,
        Weighted { factor: f64 },
        Pair(u8, u8),
    }

    #[test]
    fn derived_struct_and_enum_render_as_json() {
        let mut out = String::new();
        Row { label: "r".into(), value: 0.5, tags: vec![7] }.write_json(&mut out);
        assert_eq!(out, r#"{"label":"r","value":0.5,"tags":[7]}"#);

        let mut out = String::new();
        Kind::Plain.write_json(&mut out);
        out.push(',');
        Kind::Weighted { factor: 2.0 }.write_json(&mut out);
        out.push(',');
        Kind::Pair(1, 2).write_json(&mut out);
        assert_eq!(out, r#""Plain",{"Weighted":{"factor":2}},{"Pair":[1,2]}"#);
    }
}
