//! Offline stand-in for the crates.io `serde` crate.
//!
//! The workspace must build without network access, so this crate provides
//! the subset of serde the repository relies on: a [`Serialize`] trait that
//! renders JSON directly, a [`Deserialize`] trait that reads a parsed JSON
//! [`Value`] tree back into Rust types, `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` re-exported from the companion `serde_derive`
//! shim, and impls for the primitive / container types that appear in
//! derived structs. Both derives generate real impls with serde-compatible
//! shapes (external tagging for enums, transparent newtypes); the JSON
//! *parser* lives in the companion `serde_json` shim, which produces the
//! [`Value`] tree consumed here.
//!
//! Two deliberate divergences from real serde, both in favour of the
//! spec-file use case this workspace deserializes for:
//!
//! * Derived struct impls **reject unknown fields** (real serde ignores them
//!   unless `deny_unknown_fields` is set), so a typo in a hand-written spec
//!   surfaces as an error naming the stray field instead of being silently
//!   dropped.
//! * Numbers keep their source text ([`Number`]), so `u64`/`i64` values
//!   outside the exact-`f64` range round-trip losslessly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive macro emits `::serde::Serialize` paths; alias this crate under
// that name so the derives also work from inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as JSON.
///
/// This intentionally skips real serde's serializer abstraction: every user
/// in this workspace ultimately wants JSON text (see the `figures` binary),
/// so the trait writes JSON straight into a string buffer.
pub trait Serialize {
    /// Appends the JSON representation of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

macro_rules! serialize_display_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! serialize_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Infinity literals; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

// ---------------------------------------------------------------------------
// Deserialization: the parsed-JSON value tree and the `Deserialize` trait
// ---------------------------------------------------------------------------

/// A JSON number, kept as its source text so integers outside the exact-`f64`
/// range (e.g. large `u64` seeds) survive a round trip losslessly.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(String);

impl Number {
    /// Wraps an already-validated JSON number literal.
    ///
    /// The text must match the JSON number grammar; the parser in the
    /// `serde_json` shim guarantees this for parsed documents.
    pub fn from_literal(text: impl Into<String>) -> Self {
        Number(text.into())
    }

    /// The source text of the number.
    pub fn as_literal(&self) -> &str {
        &self.0
    }

    /// The number as an `f64` (always succeeds for JSON numbers, with the
    /// usual rounding for values outside the exact range).
    pub fn as_f64(&self) -> f64 {
        self.0.parse().unwrap_or(f64::NAN)
    }

    /// The number as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.parse().ok()
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        self.0.parse().ok()
    }
}

/// A parsed JSON document: the output of the `serde_json` shim's parser and
/// the input of [`Deserialize`].
///
/// Objects preserve key order as a plain pair list — spec files are small, so
/// linear key lookup beats pulling in a map type, and serialization order is
/// kept stable for readable diffs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

impl Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.write_json(out),
            Value::Number(n) => out.push_str(n.as_literal()),
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => items.write_json(out),
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Types that can reconstruct themselves from a parsed JSON [`Value`].
///
/// The shim equivalent of serde's `Deserialize`; `#[derive(Deserialize)]`
/// generates an impl with the same JSON shape the `Serialize` derive writes,
/// so derived types round-trip through `serde_json::to_string` /
/// `serde_json::from_str`.
pub trait Deserialize: Sized {
    /// Reads a value of this type out of `value`.
    fn read_json(value: &Value) -> Result<Self, de::Error>;
}

/// Deserialization errors and the helper functions the derive macro targets.
pub mod de {
    use super::{Deserialize, Value};
    use std::fmt;

    /// A deserialization error: what failed, at which field/variant path.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// An error with the given message.
        pub fn custom(message: impl Into<String>) -> Self {
            Error { message: message.into() }
        }

        /// "expected X, found Y" for a mistyped value.
        pub fn expected(what: &str, found: &Value, ty: &str) -> Self {
            Error::custom(format!("{ty}: expected {what}, found {}", found.type_name()))
        }

        /// Prefixes the error with the field it occurred under.
        #[must_use]
        pub fn in_field(self, field: &str) -> Self {
            Error::custom(format!("{field}: {}", self.message))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Views `value` as an object's pair list (derive helper for structs).
    pub fn object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match value {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error::expected("an object", other, ty)),
        }
    }

    /// Reads one struct field. A missing key deserializes like an explicit
    /// `null` — `Option` fields may simply be omitted — but reports
    /// "missing field" if the field's type rejects null.
    pub fn field<T: Deserialize>(
        pairs: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match pairs.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::read_json(v).map_err(|e| e.in_field(&format!("{ty}.{name}"))),
            None => T::read_json(&Value::Null)
                .map_err(|_| Error::custom(format!("{ty}: missing field `{name}`"))),
        }
    }

    /// Rejects keys outside `allowed` — a typo in a hand-written spec names
    /// the stray field instead of being silently ignored.
    pub fn deny_unknown(
        pairs: &[(String, Value)],
        allowed: &[&str],
        ty: &str,
    ) -> Result<(), Error> {
        for (key, _) in pairs {
            if !allowed.iter().any(|a| a == key) {
                return Err(Error::custom(format!(
                    "{ty}: unknown field `{key}` (expected one of: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Splits an externally-tagged enum value into `(variant, payload)`:
    /// a bare string is a unit variant, a single-key object carries the
    /// variant's data (derive helper for enums).
    pub fn variant<'v>(value: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
        match value {
            Value::String(name) => Ok((name, None)),
            Value::Object(pairs) if pairs.len() == 1 => Ok((&pairs[0].0, Some(&pairs[0].1))),
            other => Err(Error::expected("a variant name or single-variant object", other, ty)),
        }
    }

    /// Asserts a unit variant carries no payload.
    pub fn no_payload(payload: Option<&Value>, variant: &str) -> Result<(), Error> {
        match payload {
            None | Some(Value::Null) => Ok(()),
            Some(other) => Err(Error::expected("no data", other, variant)),
        }
    }

    /// Unwraps the payload of a data-carrying variant.
    pub fn payload<'v>(payload: Option<&'v Value>, variant: &str) -> Result<&'v Value, Error> {
        payload.ok_or_else(|| Error::custom(format!("{variant}: variant is missing its data")))
    }

    /// Views a tuple-variant payload as an array of exactly `n` elements.
    pub fn array_n<'v>(value: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], Error> {
        match value {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => {
                Err(Error::custom(format!("{ty}: expected {n} elements, found {}", items.len())))
            }
            other => Err(Error::expected("an array", other, ty)),
        }
    }

    /// "unknown variant" error listing the expected variant names.
    pub fn unknown_variant(found: &str, expected: &[&str], ty: &str) -> Error {
        Error::custom(format!(
            "{ty}: unknown variant `{found}` (expected one of: {})",
            expected.join(", ")
        ))
    }
}

macro_rules! deserialize_int {
    ($($ty:ty => $via:ident),*) => {$(
        impl Deserialize for $ty {
            fn read_json(value: &Value) -> Result<Self, de::Error> {
                let n = match value {
                    Value::Number(n) => n,
                    other => return Err(de::Error::expected("an integer", other, stringify!($ty))),
                };
                n.$via()
                    .and_then(|wide| <$ty>::try_from(wide).ok())
                    .ok_or_else(|| de::Error::custom(format!(
                        concat!("expected a ", stringify!($ty), ", found {}"),
                        n.as_literal()
                    )))
            }
        }
    )*};
}
deserialize_int!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
                 i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64);

macro_rules! deserialize_float {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn read_json(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $ty),
                    // Deliberately NOT accepting null (although the serializer
                    // writes non-finite floats as null): `de::field` maps a
                    // *missing* key to null, so accepting it here would turn
                    // "missing required field" into a silent NaN.
                    other => Err(de::Error::expected("a number", other, stringify!($ty))),
                }
            }
        }
    )*};
}
deserialize_float!(f32, f64);

impl Deserialize for bool {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::expected("a boolean", other, "bool")),
        }
    }
}

impl Deserialize for String {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::expected("a string", other, "String")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::read_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::read_json(v).map_err(|e| e.in_field(&format!("[{i}]"))))
                .collect(),
            other => Err(de::Error::expected("an array", other, "Vec")),
        }
    }
}

impl Deserialize for Value {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

/// Mirrors the Display-keyed `Serialize` impl: keys are parsed back from
/// their string form.
impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        let pairs = de::object(value, "BTreeMap")?;
        pairs
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| de::Error::custom(format!("BTreeMap: invalid key `{k}`")))?;
                let value = V::read_json(v).map_err(|e| e.in_field(k))?;
                Ok((key, value))
            })
            .collect()
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident . $idx:tt),+; $len:literal)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn read_json(value: &Value) -> Result<Self, de::Error> {
                let items = de::array_n(value, $len, "tuple")?;
                Ok(($($name::read_json(&items[$idx])
                    .map_err(|e| e.in_field(&format!("[{}]", $idx)))?,)+))
            }
        }
    )+};
}
deserialize_tuple!((A.0; 1), (A.0, B.1; 2), (A.0, B.1, C.2; 3), (A.0, B.1, C.2, D.3; 4));

/// Writes `s` as a JSON string literal, escaping as required by RFC 8259.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        let mut out = String::new();
        42u64.write_json(&mut out);
        out.push(',');
        (-1.5f64).write_json(&mut out);
        out.push(',');
        f32::NAN.write_json(&mut out);
        out.push(',');
        true.write_json(&mut out);
        out.push(',');
        "a\"b\n".write_json(&mut out);
        assert_eq!(out, r#"42,-1.5,null,true,"a\"b\n""#);
    }

    #[test]
    fn containers_render_as_json() {
        let mut out = String::new();
        vec![1u32, 2, 3].write_json(&mut out);
        out.push(',');
        Option::<u32>::None.write_json(&mut out);
        out.push(',');
        Some("x".to_string()).write_json(&mut out);
        assert_eq!(out, r#"[1,2,3],null,"x""#);
    }

    #[derive(Serialize)]
    struct Row {
        label: String,
        value: f64,
        tags: Vec<u32>,
    }

    #[derive(Serialize)]
    enum Kind {
        Plain,
        Weighted { factor: f64 },
        Pair(u8, u8),
    }

    #[test]
    fn derived_struct_and_enum_render_as_json() {
        let mut out = String::new();
        Row { label: "r".into(), value: 0.5, tags: vec![7] }.write_json(&mut out);
        assert_eq!(out, r#"{"label":"r","value":0.5,"tags":[7]}"#);

        let mut out = String::new();
        Kind::Plain.write_json(&mut out);
        out.push(',');
        Kind::Weighted { factor: 2.0 }.write_json(&mut out);
        out.push(',');
        Kind::Pair(1, 2).write_json(&mut out);
        assert_eq!(out, r#""Plain",{"Weighted":{"factor":2}},{"Pair":[1,2]}"#);
    }
}
