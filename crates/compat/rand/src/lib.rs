//! Offline stand-in for the crates.io `rand` crate.
//!
//! The workspace must build without network access, so the handful of `rand`
//! APIs the simulation actually uses are reimplemented here with the same
//! module paths and signatures: [`RngCore`] / [`Rng`] / [`SeedableRng`],
//! `gen_range` over half-open ranges, [`seq::SliceRandom::shuffle`] and
//! [`distributions::Distribution`]. Streams are deterministic per seed but do
//! not match upstream `rand` bit-for-bit; nothing in this repository depends
//! on the exact stream, only on determinism and reasonable statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions over random sources (`rand::distributions`).
pub mod distributions {
    use super::Rng;

    /// A distribution that can produce values of type `T` from any RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform range sampling (`rand::distributions::uniform`).
    pub mod uniform {
        use crate::RngCore;
        use std::ops::Range;

        /// A range that supports drawing a single uniform sample.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
        }

        macro_rules! int_sample_range {
            ($($ty:ty),*) => {$(
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $ty {
                        assert!(self.start < self.end, "cannot sample from an empty range");
                        let span = (self.end as u128).wrapping_sub(self.start as u128);
                        // Modulo bias is negligible for the spans used here and
                        // irrelevant to the deterministic simulations.
                        self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
                    }
                }
            )*};
        }
        int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
                let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit
            }
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleRange;
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = (0.25f64..0.75).sample_single(&mut rng);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is the identity");
    }
}
