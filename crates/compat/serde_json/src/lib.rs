//! Offline stand-in for the crates.io `serde_json` crate.
//!
//! Renders any [`serde::Serialize`] value (from the companion `serde` shim,
//! whose trait writes JSON directly) to a compact or pretty JSON string.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialization error. The shim's serializer is infallible, so this exists
/// only to keep `serde_json`-shaped signatures.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&to_string(value)?))
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let chars: Vec<char> = compact.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                // Keep empty containers on one line.
                if let Some(&close) = chars.get(i + 1) {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(c);
                        out.push(close);
                        i += 2;
                        continue;
                    }
                }
                indent += 1;
                out.push(c);
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
        i += 1;
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let compact = super::to_string(&vec![1u32, 2]).unwrap();
        assert_eq!(compact, "[1,2]");
        let pretty = super::pretty(r#"{"a":[1,2],"b":"x{,}","c":{}}"#);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": \"x{,}\",\n  \"c\": {}\n}"
        );
    }
}
