//! Offline stand-in for the crates.io `serde_json` crate.
//!
//! Renders any [`serde::Serialize`] value (from the companion `serde` shim,
//! whose trait writes JSON directly) to a compact or pretty JSON string, and
//! parses JSON text back into the shim's [`Value`] tree / any
//! [`serde::Deserialize`] type ([`from_str`], [`from_value`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// A serialization or deserialization error. The shim's serializer is
/// infallible; parse errors carry the offending position, deserialization
/// errors the field path.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&to_string(value)?))
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let chars: Vec<char> = compact.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                // Keep empty containers on one line.
                if let Some(&close) = chars.get(i + 1) {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(c);
                        out.push(close);
                        i += 2;
                        continue;
                    }
                }
                indent += 1;
                out.push(c);
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
        i += 1;
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a JSON document into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    Ok(T::read_json(&parse(text)?)?)
}

/// Deserializes an already-parsed [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::read_json(value)?)
}

/// Parses a JSON document into a [`Value`] tree (RFC 8259 subset: no
/// surrogate-escape pairing beyond the BMP combination rules below).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
    depth: usize,
}

/// Containers deeper than this fail instead of risking a stack overflow.
const MAX_DEPTH: usize = 128;

impl<'t> Parser<'t> {
    fn err(&self, message: impl fmt::Display) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("JSON parse error at line {line}, column {col}: {message}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("containers nested deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so byte runs between structural
                // characters are valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: must pair with a following \uXXXX low one.
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                } else {
                    char::from_u32(unit).ok_or_else(|| self.err("invalid unicode escape"))?
                }
            }
            other => return Err(self.err(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated unicode escape"))?;
        // Exactly four hex digits: `from_str_radix` alone would also accept
        // a leading `+`, which RFC 8259 does not.
        let mut unit = 0u32;
        for &b in digits {
            let digit =
                (b as char).to_digit(16).ok_or_else(|| self.err("invalid unicode escape"))?;
            unit = unit * 16 + digit;
        }
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            self.digits();
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number literals are ASCII");
        Ok(Value::Number(serde::Number::from_literal(text)))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Knobs {
        label: String,
        ratio: Option<f64>,
        seeds: Vec<u64>,
        kind: Kind,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted { factor: f64 },
        Pair(u8, u8),
        Tagged(String),
    }

    #[test]
    fn derived_types_roundtrip_through_text() {
        for knobs in [
            Knobs {
                label: "a \"quoted\" label\n".into(),
                ratio: Some(0.01),
                seeds: vec![0, u64::MAX],
                kind: Kind::Weighted { factor: -1.5e-9 },
            },
            Knobs { label: String::new(), ratio: None, seeds: vec![], kind: Kind::Plain },
            Knobs { label: "p".into(), ratio: Some(1.0), seeds: vec![7], kind: Kind::Pair(1, 2) },
            Knobs { label: "t".into(), ratio: None, seeds: vec![], kind: Kind::Tagged("x".into()) },
        ] {
            let text = to_string(&knobs).unwrap();
            let back: Knobs = from_str(&text).unwrap();
            assert_eq!(back, knobs, "{text}");
            // Pretty output parses to the same value.
            let back: Knobs = from_str(&to_string_pretty(&knobs).unwrap()).unwrap();
            assert_eq!(back, knobs);
        }
    }

    #[test]
    fn missing_option_fields_default_to_none() {
        let parsed: Knobs = from_str(r#"{"label":"x","seeds":[1,2],"kind":"Plain"}"#).unwrap();
        assert_eq!(parsed.ratio, None);
        assert_eq!(parsed.seeds, vec![1, 2]);
    }

    #[test]
    fn helpful_errors_name_the_problem() {
        let typo = from_str::<Knobs>(r#"{"label":"x","seeds":[],"kind":"Plain","ratioo":1}"#);
        let message = typo.unwrap_err().to_string();
        assert!(message.contains("ratioo"), "{message}");
        let missing = from_str::<Knobs>(r#"{"seeds":[],"kind":"Plain"}"#);
        assert!(missing.unwrap_err().to_string().contains("missing field `label`"));
        // A missing *float* field is a missing-field error too, not a NaN.
        let missing_float = from_str::<Knobs>(r#"{"label":"x","seeds":[],"kind":{"Weighted":{}}}"#);
        assert!(
            missing_float.unwrap_err().to_string().contains("missing field `factor`"),
            "missing required floats must not deserialize silently"
        );
        let bad_variant = from_str::<Knobs>(r#"{"label":"x","seeds":[],"kind":"Plan"}"#);
        let message = bad_variant.unwrap_err().to_string();
        assert!(message.contains("Plan") && message.contains("Plain"), "{message}");
        let parse = from_str::<Knobs>("{\"label\": }");
        assert!(parse.unwrap_err().to_string().contains("line 1"), "position is reported");
    }

    #[test]
    fn parser_accepts_the_grammar_and_rejects_garbage() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" [1, -2.5e3, \"\\u0041\\ud83d\\ude00\"] ").unwrap(), {
            Value::Array(vec![
                Value::Number(serde::Number::from_literal("1")),
                Value::Number(serde::Number::from_literal("-2.5e3")),
                Value::String("A😀".into()),
            ])
        });
        for bad in [
            "",
            "01",
            "1.",
            "+1",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "\"\\q\"",
            "tru",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            r#""\u+041""#,
            r#""\u004""#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Deep nesting fails cleanly instead of overflowing the stack.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).unwrap_err().to_string().contains("nested"));
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        let seeds: Vec<u64> = vec![u64::MAX, u64::MAX - 1, 1 << 60];
        let text = to_string(&seeds).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, seeds);
        // f64 shortest representation also survives.
        let xs = [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX];
        let back: Vec<f64> = from_str(&to_string(&xs.to_vec()).unwrap()).unwrap();
        assert_eq!(back, xs.to_vec());
    }

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let compact = super::to_string(&vec![1u32, 2]).unwrap();
        assert_eq!(compact, "[1,2]");
        let pretty = super::pretty(r#"{"a":[1,2],"b":"x{,}","c":{}}"#);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": \"x{,}\",\n  \"c\": {}\n}"
        );
    }
}
