//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!`, range / vec / btree_map / tuple / `any`
//! strategies and [`strategy::Just`]. Cases are drawn from a deterministic
//! per-test RNG. Unlike real proptest there is **no shrinking** and no
//! persistence of failing cases: a failure reports the sampled inputs via the
//! assertion message only. That trade-off keeps the shim tiny while the
//! properties themselves stay exactly as written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: configuration, case errors and the deterministic RNG.
pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
        /// Abort the property after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64, max_global_rejects: 4096 }
        }
    }

    /// Outcome of one property-test case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and is not counted.
        Reject,
        /// The property failed with the given message.
        Fail(String),
    }

    /// Deterministic RNG seeding each property from its test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for the named test. Deterministic across runs.
        pub fn for_test(name: &str) -> Self {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            Self { state: hasher.finish() | 1 }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: full 64-bit period, excellent equidistribution.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::distributions::uniform::SampleRange;
    use rand::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value. (The shim has no shrink trees.)
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample_value(&self, rng: &mut TestRng) -> $ty {
                    self.clone().sample_single(rng)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from an empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
                }
            }
        )*};
    }
    range_inclusive_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample_value(rng), self.1.sample_value(rng))
        }
    }

    /// Uniform choice among same-typed strategies (backs [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    #[derive(Debug, Clone)]
    pub struct OneOf<S: Strategy>(Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;

        fn sample_value(&self, rng: &mut TestRng) -> S::Value {
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].sample_value(rng)
        }
    }

    /// Builds a [`OneOf`] from a non-empty list of arms.
    pub fn one_of<S: Strategy>(arms: Vec<S>) -> OneOf<S> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf(arms)
    }
}

/// The `any::<T>()` entry point and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for vectors with sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "cannot sample from an empty size range");
        size.start + (rng.next_u64() as usize) % (size.end - size.start)
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Strategy for ordered maps with sampled size.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K: Strategy, V: Strategy> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A map with up to `size` entries (duplicate sampled keys collapse, as in
    /// real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| (self.key.sample_value(rng), self.value.sample_value(rng))).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy of both boolean values.
    pub const ANY: BoolAny = BoolAny;
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_add(__config.max_global_rejects),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!("property {} failed: {}", stringify!($name), __msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case without counting it against `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges, vecs, tuples, maps and oneof all stay within bounds.
        #[test]
        fn strategies_stay_in_bounds(
            x in 3usize..10,
            f in -1.0f32..1.0,
            bits in 0u16..=0xFFFF,
            v in crate::collection::vec(any::<u8>(), 0..5),
            pair in (0u8..4, 1usize..3),
            m in crate::collection::btree_map(0u32..10, -1.0f32..1.0, 0..4),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = bits;
            prop_assert!(v.len() < 5);
            prop_assert!(pair.0 < 4 && (1..3).contains(&pair.1));
            prop_assert!(m.len() < 4);
            prop_assert!(choice == 1 || choice == 2);
            let _ = b;
            prop_assume!(x != 5); // exercises the Reject path without exhausting it
            prop_assert!(x != 5);
            prop_assert_eq!(x, x);
        }
    }
}
