//! Offline stand-in for the crates.io `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] with the `seed_from_u64` constructor the workspace
//! uses. Internally this is an actual ChaCha round function with 8 rounds over
//! a seed-expanded state, so the statistical quality matches what callers
//! (Gaussian samplers, shuffles, synthetic datasets) expect; the exact stream
//! is stable per seed but not bit-compatible with upstream `rand_chacha`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Deterministic ChaCha-based generator (8 rounds).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter lives in words 12/13.
        let (counter, carry) = self.state[12].overflowing_add(1);
        self.state[12] = counter;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into the 256-bit key with SplitMix64.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = next();
            s[4 + 2 * i] = word as u32;
            s[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        let mut rng = Self { state: s, buffer: [0; 16], index: 16 };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let mean = ones as f64 / 1000.0;
        assert!((mean - 32.0).abs() < 1.0, "mean popcount {mean}");
    }
}
